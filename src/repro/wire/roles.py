"""The MHRP protocol roles — one implementation for every backend.

This module is the single source of truth for per-message protocol
behaviour: registration dispatch and reliable retransmission (Section 3),
agent advertisement/discovery (Section 3), the cache agent (Sections 2,
4.3), the home agent (Sections 2, 3, 5.1, 5.2), the foreign agent
(Sections 2, 4.4, 5.1, 5.2, 5.3) and the mobile host's notification
sequence (Sections 1–3, 6).

Each role runs unchanged on two node substrates:

- the simulator's :class:`~repro.ip.node.IPNode` (via
  :class:`SimRolePort` — timers become simulator :class:`Timer`\\ s,
  traces go to the :class:`Tracer`, telemetry to ``sim.telemetry``,
  neighbour verification to the simulated ARP service);
- the sans-io :class:`~repro.wire.engine.NodeEngine` (via
  :class:`EngineRolePort` — timers become :class:`TimerOp` requests,
  traces become :class:`EngineEvent`\\ s, neighbour verification uses an
  ICMP echo probe because there is no ARP on the wire backends).

The split is deliberate: everything that *decides* lives here; the two
ports only translate the handful of surfaces where the substrates
genuinely differ.  APIs the substrates share (``send``, ``send_icmp``,
``send_broadcast``, ``register_protocol``, ``on_icmp``, ``interfaces``,
``routing_table``, ``transmit_on_link``, ``forward_injected``, ...) are
called directly on the node.

The simulator-facing classes in :mod:`repro.core` are thin adapters over
these roles; the engine classes in :mod:`repro.wire.engine` subclass
them directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.core.encapsulation import MHRPPayload, decapsulate, encapsulate, retunnel
from repro.core.header import DEFAULT_MAX_PREVIOUS_SOURCES
from repro.core.persistence import LocationDatabase, LocationStore
from repro.core.registration import (
    ACK,
    FA_CONNECT,
    FA_DISCONNECT,
    HA_REGISTER,
    REG_MAX_RETRIES,
    REG_RETRY_INTERVAL,
    RegistrationMessage,
    StaleControlFilter,
    next_seq,
)
from repro.errors import RegistrationError
from repro.ip.address import IPAddress
from repro.ip.icmp import (
    EchoMessage,
    ICMPError,
    LocationUpdate,
    RouterAdvertisement,
    RouterSolicitation,
    TYPE_ECHO_REPLY,
    TYPE_LOCATION_UPDATE,
    TYPE_ROUTER_SOLICITATION,
)
from repro.ip.node import CONSUMED
from repro.ip.packet import IPPacket
from repro.ip.protocols import ICMP as PROTO_ICMP
from repro.ip.protocols import MHRP as PROTO_MHRP
from repro.ip.protocols import MOBILE_CONTROL
from repro.link.frame import HWAddress
from repro.wire.logic import (
    AT_HOME,
    AWAY,
    DEPARTURE_GRACE,
    DISCONNECTED,
    DISCONNECTED_ADDRESS,
    HOME_DROP_DISCONNECTED,
    HOME_PASS,
    HOME_RECOVER,
    decide_home_tunneled_arrival,
    forwarding_pointer_target,
    is_control_traffic,
    may_send_update,
    mh_reported_location,
    retunnel_target,
    should_recover_visitor,
    stale_chain,
)

#: Default advertisement period in seconds (RFC 1256 allows 3..1800;
#: mobility wants it snappy).
DEFAULT_ADVERT_PERIOD = 2.0
#: Advertised lifetime: a silent agent is presumed gone after this long.
DEFAULT_ADVERT_LIFETIME = 6.0

#: Default cache capacity (entries); the cache is finite by design and
#: any replacement policy is allowed (Section 2) — this one is LRU.
DEFAULT_CACHE_CAPACITY = 256

#: Minimum spacing between location updates to one destination
#: (Section 4.3 requires *some* rate limit, like the ARP request limit).
DEFAULT_UPDATE_MIN_INTERVAL = 1.0

#: How long after an ARP-style presence probe the Section 5.2 local-query
#: variant looks for an answer (the simulated ARP retry schedule gives up
#: just before this).
QUERY_VERIFY_DELAY = 4.0


# ----------------------------------------------------------------------
# Backend ports
# ----------------------------------------------------------------------

class SimRolePort:
    """Role-facing surface of a simulator :class:`~repro.ip.node.IPNode`.

    One port per node (cached on the node), so role timer keys share a
    single per-node namespace exactly like the engine's ``set_timer``.
    """

    __slots__ = ("node", "_timers", "_callbacks")

    _ATTR = "_mhrp_role_port"

    def __init__(self, node) -> None:
        self.node = node
        self._timers: Dict[str, object] = {}
        self._callbacks: Dict[str, Callable[[], None]] = {}

    @classmethod
    def of(cls, node) -> "SimRolePort":
        port = getattr(node, cls._ATTR, None)
        if port is None:
            port = cls(node)
            setattr(node, cls._ATTR, port)
        return port

    # -- time / randomness --------------------------------------------
    @property
    def now(self) -> float:
        return self.node.sim.now

    @property
    def rng(self):
        return self.node.sim.rng

    # -- observability ------------------------------------------------
    def trace(self, category: str, **detail) -> None:
        self.node.sim.trace(category, self.node.name, **detail)

    def drop(self, packet: IPPacket, reason: str) -> None:
        self.node.dataplane.drop(packet, reason)

    def send_error(self, error: ICMPError) -> None:
        self.node._send_error(error)

    def bump(self, counter: str) -> None:
        counters = self.node.dataplane.counters
        setattr(counters, counter, getattr(counters, counter) + 1)

    def health_cache_lookup(self, hit: bool) -> None:
        telemetry = self.node.sim.telemetry
        if telemetry is not None:
            telemetry.cache_lookup(self.node.name, hit)

    def health_tunnel_delivery(self, mobile_host: str, n_previous_sources: int) -> None:
        sim = self.node.sim
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.tunnel_delivery(
                sim.now, self.node.name, mobile_host, n_previous_sources
            )

    def health_moved(self) -> None:
        sim = self.node.sim
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.mh_moved(sim.now, self.node.name)

    def health_registration(self, agent: IPAddress, latency: float) -> None:
        sim = self.node.sim
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.registration_complete(sim.now, self.node.name, agent, latency)

    # -- timers --------------------------------------------------------
    # Keyed one-shot timers with engine ``timer_fired`` semantics: the
    # callback is popped before it runs, so a handler re-arming its own
    # key behaves identically on both substrates.  Callbacks must be
    # bound methods or partials of bound methods (snapshot/fork requires
    # every scheduled callable to survive a deepcopy of the graph).
    def set_timer(self, key: str, delay: float, callback: Callable[[], None]) -> None:
        self._callbacks[key] = callback
        timer = self._timers.get(key)
        if timer is None:
            timer = self.node.sim.timer(partial(self._fire, key), label=key)
            self._timers[key] = timer
        timer.start(delay)

    def cancel_timer(self, key: str) -> None:
        self._callbacks.pop(key, None)
        timer = self._timers.get(key)
        if timer is not None:
            timer.cancel()

    def _fire(self, key: str) -> None:
        callback = self._callbacks.pop(key, None)
        if callback is not None:
            callback()

    # -- wiring --------------------------------------------------------
    def add_hooks(self, outbound, transit, name: str) -> None:
        self.node.dataplane.register("outbound", outbound, name=name)
        self.node.dataplane.register("transit", transit, name=name)

    def install(self, role_key: str, role) -> None:
        self.node.extensions.append(role)

    def defer_start(self, fn: Callable[[], None]) -> None:
        fn()

    # -- link-layer address claims (simulated ARP) ---------------------
    def claim_address(self, iface_name: str, address: IPAddress) -> None:
        arp = self.node.arp[iface_name]
        arp.add_proxy(address)
        arp.announce(address)  # gratuitous ARP binding address -> our hw

    def release_address(self, iface_name: str, address: IPAddress) -> None:
        self.node.arp[iface_name].remove_proxy(address)

    def announce_address(self, iface_name: str, address: IPAddress) -> None:
        self.node.arp[iface_name].announce(address)

    def learn_neighbor(self, iface_name: str, address: IPAddress, hw_value: int) -> None:
        if hw_value:
            self.node.arp[iface_name].learn(address, HWAddress(hw_value))

    # -- Section 5.2 presence verification ------------------------------
    def neighbor_known(self, iface_name: str, address: IPAddress) -> bool:
        return self.node.arp[iface_name].lookup(address) is not None

    def probe_neighbor(self, iface_name: str, address: IPAddress, my_address: IPAddress) -> None:
        probe = IPPacket(
            src=my_address,
            dst=address,
            protocol=PROTO_MHRP,  # never actually parsed; the ARP matters
        )
        self.node.arp[iface_name].resolve(address, probe)


class EngineRolePort:
    """Role-facing surface of a sans-io :class:`NodeEngine`.

    Address-claim methods are no-ops (there is no ARP on the wire
    backends; drivers resolve addresses to endpoints directly), and
    Section 5.2 presence verification uses an ICMP echo probe instead:
    the candidate visitor auto-answers echo requests, and the reply
    lands in a per-node heard-neighbour set this port maintains.
    """

    __slots__ = ("node", "_heard_neighbors", "_probe_listener_installed", "_probe_seq")

    _ATTR = "_mhrp_role_port"

    def __init__(self, node) -> None:
        self.node = node
        self._heard_neighbors: set = set()
        self._probe_listener_installed = False
        self._probe_seq = 0
        # Presence knowledge is as volatile as an ARP cache: a crash
        # forgets it.
        node.reboot_hooks.append(self._heard_neighbors.clear)

    @classmethod
    def of(cls, node) -> "EngineRolePort":
        port = getattr(node, cls._ATTR, None)
        if port is None:
            port = cls(node)
            setattr(node, cls._ATTR, port)
        return port

    # -- time / randomness --------------------------------------------
    @property
    def now(self) -> float:
        return self.node.now

    @property
    def rng(self):
        return self.node.rng

    # -- observability ------------------------------------------------
    def trace(self, category: str, **detail) -> None:
        self.node.trace(category, **detail)

    def drop(self, packet: IPPacket, reason: str) -> None:
        self.node.drop(packet, reason)

    def send_error(self, error: ICMPError) -> None:
        self.node.send_error(error)

    def bump(self, counter: str) -> None:
        self.node.counters[counter] += 1

    def health_cache_lookup(self, hit: bool) -> None:
        self.node.health("cache_lookup", hit=hit)

    def health_tunnel_delivery(self, mobile_host: str, n_previous_sources: int) -> None:
        self.node.health(
            "tunnel_delivery",
            mobile_host=mobile_host,
            n_previous_sources=n_previous_sources,
        )

    def health_moved(self) -> None:
        self.node.health("mh_moved")

    def health_registration(self, agent: IPAddress, latency: float) -> None:
        self.node.health("registration_complete", agent=str(agent), latency=latency)

    # -- timers --------------------------------------------------------
    def set_timer(self, key: str, delay: float, callback: Callable[[], None]) -> None:
        self.node.set_timer(key, delay, callback)

    def cancel_timer(self, key: str) -> None:
        self.node.cancel_timer(key)

    # -- wiring --------------------------------------------------------
    def add_hooks(self, outbound, transit, name: str) -> None:
        self.node.outbound_hooks.append(outbound)
        self.node.transit_hooks.append(transit)

    def install(self, role_key: str, role) -> None:
        self.node.roles[role_key] = role

    def defer_start(self, fn: Callable[[], None]) -> None:
        self.node.start_hooks.append(fn)

    # -- link-layer address claims: no ARP on the wire backends ---------
    def claim_address(self, iface_name: str, address: IPAddress) -> None:
        pass

    def release_address(self, iface_name: str, address: IPAddress) -> None:
        pass

    def announce_address(self, iface_name: str, address: IPAddress) -> None:
        pass

    def learn_neighbor(self, iface_name: str, address: IPAddress, hw_value: int) -> None:
        pass

    # -- Section 5.2 presence verification ------------------------------
    def neighbor_known(self, iface_name: str, address: IPAddress) -> bool:
        return address in self._heard_neighbors

    def probe_neighbor(self, iface_name: str, address: IPAddress, my_address: IPAddress) -> None:
        if not self._probe_listener_installed:
            self.node.on_icmp(TYPE_ECHO_REPLY, self._on_probe_reply)
            self._probe_listener_installed = True
        self._probe_seq += 1
        request = EchoMessage.request(
            identifier=sum(ord(c) for c in self.node.name) & 0xFFFF,
            sequence=self._probe_seq,
        )
        probe = IPPacket(
            src=my_address, dst=address, protocol=PROTO_ICMP, payload=request
        )
        self.node._stamp(probe)
        self.node.transmit_on_link(iface_name, address, probe)

    def _on_probe_reply(self, packet: IPPacket, message) -> None:
        self._heard_neighbors.add(packet.src)


# ----------------------------------------------------------------------
# Registration dispatch + reliable retransmission (Section 3)
# ----------------------------------------------------------------------

class ControlDispatcher:
    """Per-node demultiplexer for :data:`MOBILE_CONTROL` packets.

    Works unchanged on both substrates: protocol registration, ``send``
    and ``primary_address`` are shared node APIs.
    """

    _ATTR = "_mhrp_control_dispatcher"

    def __init__(self, node) -> None:
        self.node = node
        self._handlers: Dict[str, Callable[[IPPacket, RegistrationMessage], None]] = {}
        self._ack_waiters: Dict[int, Callable[[RegistrationMessage], None]] = {}
        node.register_protocol(MOBILE_CONTROL, self._handle)

    @classmethod
    def for_node(cls, node) -> "ControlDispatcher":
        """The node's dispatcher, created on first use."""
        dispatcher = getattr(node, cls._ATTR, None)
        if dispatcher is None:
            dispatcher = cls(node)
            setattr(node, cls._ATTR, dispatcher)
        return dispatcher

    def on(self, kind: str, handler: Callable[[IPPacket, RegistrationMessage], None]) -> None:
        if kind in self._handlers:
            raise RegistrationError(
                f"{self.node.name}: control kind {kind!r} already handled"
            )
        self._handlers[kind] = handler

    def expect_ack(self, seq: int, callback: Callable[[RegistrationMessage], None]) -> None:
        self._ack_waiters[seq] = callback

    def cancel_ack(self, seq: int) -> None:
        self._ack_waiters.pop(seq, None)

    def _handle(self, packet: IPPacket, iface: object) -> None:
        message = packet.payload
        if not isinstance(message, RegistrationMessage):
            return
        if message.kind == ACK:
            waiter = self._ack_waiters.pop(message.seq, None)
            if waiter is not None:
                waiter(message)
            return
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(packet, message)

    def send_ack(
        self,
        to: IPAddress,
        request: RegistrationMessage,
        agent: Optional[IPAddress] = None,
        ok: bool = True,
    ) -> None:
        """Acknowledge ``request`` back to ``to``."""
        ack = RegistrationMessage(
            kind=ACK,
            seq=request.seq,
            mobile_host=request.mobile_host,
            agent=agent if agent is not None else IPAddress.zero(),
            ok=ok,
        )
        self.node.send(IPPacket(
            src=self.node.primary_address,
            dst=to,
            protocol=MOBILE_CONTROL,
            payload=ack,
        ))


class Registrar:
    """Retransmits registrations until acknowledged or given up.

    Registrations cross wireless links and possibly half the
    internetwork, so each message is retried every
    :data:`REG_RETRY_INTERVAL` seconds, up to :data:`REG_MAX_RETRIES`
    attempts, keyed by the message's sequence number.
    """

    def __init__(self, port, node) -> None:
        self.port = port
        self.node = node
        self.dispatcher = ControlDispatcher.for_node(node)
        self._pending: Dict[int, dict] = {}

    def send(
        self,
        destination: IPAddress,
        message: RegistrationMessage,
        on_ack: Optional[Callable[[RegistrationMessage], None]] = None,
        on_fail: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``message`` to ``destination`` reliably."""
        seq = message.seq
        self._pending[seq] = {
            "destination": destination,
            "message": message,
            "on_ack": on_ack,
            "on_fail": on_fail,
            "attempts": 0,
        }
        self.dispatcher.expect_ack(seq, partial(self._acked, seq))
        self._transmit(seq)
        self.port.set_timer(
            f"reg-retry-{seq}", REG_RETRY_INTERVAL, partial(self._retry, seq)
        )

    def _transmit(self, seq: int) -> None:
        entry = self._pending[seq]
        self.port.trace(
            "mhrp.register",
            event="send",
            kind=entry["message"].kind,
            to=str(entry["destination"]),
            attempt=entry["attempts"],
        )
        self.node.send(IPPacket(
            src=self.node.primary_address,
            dst=entry["destination"],
            protocol=MOBILE_CONTROL,
            payload=entry["message"],
        ))

    def _retry(self, seq: int) -> None:
        entry = self._pending.get(seq)
        if entry is None:
            return
        entry["attempts"] += 1
        if entry["attempts"] > REG_MAX_RETRIES:
            self._pending.pop(seq, None)
            self.dispatcher.cancel_ack(seq)
            self.port.trace(
                "mhrp.register",
                event="gave-up",
                kind=entry["message"].kind,
                to=str(entry["destination"]),
            )
            if entry["on_fail"] is not None:
                entry["on_fail"]()
            return
        self._transmit(seq)
        self.port.set_timer(
            f"reg-retry-{seq}", REG_RETRY_INTERVAL, partial(self._retry, seq)
        )

    def _acked(self, seq: int, ack: RegistrationMessage) -> None:
        entry = self._pending.pop(seq, None)
        if entry is None:
            return
        self.port.cancel_timer(f"reg-retry-{seq}")
        if entry["on_ack"] is not None:
            entry["on_ack"](ack)

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Sequence numbers still awaiting an acknowledgement."""
        return {"pending": sorted(self._pending)}


class ReliableRegistrar(Registrar):
    """The simulator-facing registrar: same behaviour, port derived from
    the node (kept as the public :mod:`repro.core.registration` API)."""

    def __init__(self, node) -> None:
        super().__init__(SimRolePort.of(node), node)


# ----------------------------------------------------------------------
# Agent advertisement (Section 3)
# ----------------------------------------------------------------------

@dataclass(slots=True)
class AgentAdvertisementInfo:
    """What a mobile host learned from one advertisement.

    A value record: holders replace it wholesale, never mutate fields,
    so session snapshots share it instead of duplicating it."""

    agent: IPAddress
    is_home_agent: bool
    is_foreign_agent: bool
    boot_id: int
    heard_at: float
    lifetime: float = DEFAULT_ADVERT_LIFETIME

    def __deepcopy__(self, memo: dict) -> "AgentAdvertisementInfo":
        return self


class Advertiser:
    """Periodically broadcasts agent advertisements on one interface."""

    def __init__(
        self,
        port,
        node,
        iface_name: str,
        is_home_agent: bool,
        is_foreign_agent: bool,
        period: float = DEFAULT_ADVERT_PERIOD,
        lifetime: float = DEFAULT_ADVERT_LIFETIME,
        advertised_address=None,
    ) -> None:
        self.port = port
        self.node = node
        self.iface_name = iface_name
        #: Address put into the advertisement; defaults to the interface
        #: address.  A replicated home agent group advertises its shared
        #: *service* address instead, whichever replica is active.
        self.advertised_address = advertised_address
        self.is_home_agent = is_home_agent
        self.is_foreign_agent = is_foreign_agent
        self.period = period
        self.lifetime = lifetime
        self.boot_id = port.rng.randrange(1, 2**31)
        self._timer_key = f"advert-{iface_name}"
        self.running = False
        # Answer solicitations immediately rather than waiting a period.
        node.on_icmp(TYPE_ROUTER_SOLICITATION, self._on_solicitation)

    def start(self) -> None:
        """Begin periodic advertising (first advert goes out immediately)."""
        if self.running:
            return
        self.running = True
        self._advertise()

    def stop(self) -> None:
        self.running = False
        self.port.cancel_timer(self._timer_key)

    def restart_with_new_boot_id(self) -> None:
        """Called after a reboot so mobile hosts notice and re-register."""
        self.boot_id = self.port.rng.randrange(1, 2**31)
        self.running = False
        self.start()

    def _advertise(self) -> None:
        if not self.running or not self.node.up:
            return
        self._broadcast()
        # Small jitter decorrelates advertisers that started together.
        jitter = self.port.rng.uniform(0, self.period * 0.05)
        self.port.set_timer(self._timer_key, self.period + jitter, self._advertise)

    def _on_solicitation(self, packet: IPPacket, message: object) -> None:
        if self.running and self.node.up:
            self._broadcast()

    def _broadcast(self) -> None:
        iface = self.node.interfaces[self.iface_name]
        advert = RouterAdvertisement(
            router_address=self.advertised_address or iface.ip_address,
            lifetime=self.lifetime,
            is_home_agent=self.is_home_agent,
            is_foreign_agent=self.is_foreign_agent,
            boot_id=self.boot_id,
        )
        # The low byte also rides in the reserved code field, mirroring
        # how an extension-less RFC 1256 implementation would smuggle it.
        advert.code = self.boot_id & 0xFF
        self.node.send_broadcast(self.iface_name, PROTO_ICMP, advert)

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"boot_id": self.boot_id, "running": self.running}

    def load_state(self, state: dict) -> None:
        self.boot_id = int(state["boot_id"])
        self.running = bool(state["running"])


class AgentAdvertiser(Advertiser):
    """The simulator-facing advertiser: same behaviour, port derived
    from the node (kept as the public :mod:`repro.core.discovery` API)."""

    def __init__(
        self,
        node,
        iface_name: str,
        is_home_agent: bool,
        is_foreign_agent: bool,
        period: float = DEFAULT_ADVERT_PERIOD,
        lifetime: float = DEFAULT_ADVERT_LIFETIME,
        advertised_address=None,
    ) -> None:
        super().__init__(
            SimRolePort.of(node),
            node,
            iface_name,
            is_home_agent=is_home_agent,
            is_foreign_agent=is_foreign_agent,
            period=period,
            lifetime=lifetime,
            advertised_address=advertised_address,
        )


# ----------------------------------------------------------------------
# Location caching structures + updates (Sections 2, 4.3)
# ----------------------------------------------------------------------

@dataclass(slots=True)
class CacheEntry:
    """A value record (see :class:`AgentAdvertisementInfo`): replaced,
    never mutated, so snapshots share it."""

    foreign_agent: IPAddress
    cached_at: float

    def __deepcopy__(self, memo: dict) -> "CacheEntry":
        return self


class LocationCache:
    """A finite LRU cache of mobile-host locations."""

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[IPAddress, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, mobile_host: IPAddress) -> Optional[IPAddress]:
        entry = self._entries.get(mobile_host)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(mobile_host)
        self.hits += 1
        return entry.foreign_agent

    def put(self, mobile_host: IPAddress, foreign_agent: IPAddress, now: float = 0.0) -> None:
        if mobile_host in self._entries:
            self._entries.move_to_end(mobile_host)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[mobile_host] = CacheEntry(
            foreign_agent=IPAddress(foreign_agent), cached_at=now
        )

    def delete(self, mobile_host: IPAddress) -> bool:
        return self._entries.pop(mobile_host, None) is not None

    def peek(self, mobile_host: IPAddress) -> Optional[IPAddress]:
        """Like :meth:`get` but with no LRU/stat side effects (for tests)."""
        entry = self._entries.get(mobile_host)
        return entry.foreign_agent if entry else None

    def __contains__(self, mobile_host: IPAddress) -> bool:
        return mobile_host in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[IPAddress, IPAddress]:
        return {mh: e.foreign_agent for mh, e in self._entries.items()}

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able cache contents (LRU order preserved) + statistics."""
        return {
            "capacity": self.capacity,
            "entries": {
                str(mh): {"foreign_agent": str(e.foreign_agent), "cached_at": e.cached_at}
                for mh, e in self._entries.items()
            },
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def load_state(self, state: dict) -> None:
        """Restore contents and statistics from :meth:`state_dict`.

        Entry iteration order in the dict *is* the LRU order (oldest
        first), matching how :meth:`state_dict` emits it.
        """
        self.capacity = int(state["capacity"])
        self._entries = OrderedDict(
            (
                IPAddress(mh),
                CacheEntry(
                    foreign_agent=IPAddress(rec["foreign_agent"]),
                    cached_at=rec["cached_at"],
                ),
            )
            for mh, rec in state["entries"].items()
        )
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])


class UpdateRateLimiter:
    """Per-destination rate limit on location update messages.

    Section 4.3: "any host or router that sends location update messages
    must provide some mechanism for limiting the rate at which it sends
    these messages to any single IP address", with LRU replacement of the
    tracking entries — mirrored here.
    """

    def __init__(
        self,
        min_interval: float = DEFAULT_UPDATE_MIN_INTERVAL,
        capacity: int = 1024,
    ) -> None:
        self.min_interval = min_interval
        self.capacity = capacity
        self._last_sent: "OrderedDict[IPAddress, float]" = OrderedDict()
        self.suppressed = 0

    def allow(self, destination: IPAddress, now: float) -> bool:
        """Whether an update to ``destination`` may be sent at ``now``."""
        last = self._last_sent.get(destination)
        if last is not None and now - last < self.min_interval:
            self.suppressed += 1
            return False
        if destination in self._last_sent:
            self._last_sent.move_to_end(destination)
        elif len(self._last_sent) >= self.capacity:
            self._last_sent.popitem(last=False)
        self._last_sent[destination] = now
        return True

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able limiter state (LRU order preserved)."""
        return {
            "min_interval": self.min_interval,
            "capacity": self.capacity,
            "last_sent": {str(dst): t for dst, t in self._last_sent.items()},
            "suppressed": self.suppressed,
        }

    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` (dict order = LRU order)."""
        self.min_interval = state["min_interval"]
        self.capacity = int(state["capacity"])
        self._last_sent = OrderedDict(
            (IPAddress(dst), t) for dst, t in state["last_sent"].items()
        )
        self.suppressed = int(state["suppressed"])


def send_location_update(
    port,
    node,
    destination: IPAddress,
    mobile_host: IPAddress,
    foreign_agent: IPAddress,
    limiter: Optional[UpdateRateLimiter] = None,
    purge: bool = False,
) -> bool:
    """Send one location update message, honouring the rate limit.

    Returns whether the update was actually sent.  Updates are never sent
    to ourselves, to the zero address, or to the mobile host itself.
    """
    if not may_send_update(destination, mobile_host, node.has_address(destination)):
        return False
    if limiter is not None and not limiter.allow(destination, port.now):
        return False
    message = LocationUpdate(
        mobile_host=mobile_host, foreign_agent=foreign_agent, purge=purge
    )
    port.trace(
        "mhrp.update",
        event="sent",
        to=str(destination),
        mobile_host=str(mobile_host),
        foreign_agent=str(foreign_agent),
        purge=purge,
    )
    node.send_icmp(destination, message)
    return True


# ----------------------------------------------------------------------
# The cache-agent role (Sections 2, 4.3)
# ----------------------------------------------------------------------

class CacheAgentRole:
    """The cache-agent role, attachable to any host or router.

    Registers itself as ``outbound`` and ``transit`` stage hooks:

    - On *outbound* packets (this node is the original sender): a cache
      hit builds a sender-style MHRP header (empty previous-source list,
      8 bytes — Section 4.2).
    - On *transit* packets (this node is a router): a cache hit builds an
      agent-style header (the original source moves onto the list,
      12 bytes).
    - Inbound location updates install or delete entries; with
      ``examine_forwarded`` a router also snoops updates it forwards.
    """

    ROLE_KEY = "cache_agent"
    HOOK_NAME = "CacheAgent"

    def __init__(
        self,
        port,
        node,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        examine_forwarded: bool = False,
        enabled: bool = True,
    ) -> None:
        self.port = port
        self.node = node
        self.cache = LocationCache(capacity)
        self.examine_forwarded = examine_forwarded
        self.enabled = enabled
        self.tunnels_built = 0
        port.install(self.ROLE_KEY, self)
        port.add_hooks(self.outbound_hook, self.transit_hook, self.HOOK_NAME)
        node.on_icmp(TYPE_LOCATION_UPDATE, self._on_location_update)
        # The cache is soft state in RAM: a reboot loses it (consistency
        # is then re-established lazily by the Section 5.1 machinery).
        node.reboot_hooks.append(self.cache.clear)

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able role state for the session snapshot/diff contract."""
        return {
            "cache": self.cache.state_dict(),
            "enabled": self.enabled,
            "examine_forwarded": self.examine_forwarded,
            "tunnels_built": self.tunnels_built,
        }

    def load_state(self, state: dict) -> None:
        """Restore role state from :meth:`state_dict`."""
        self.cache.load_state(state["cache"])
        self.enabled = bool(state["enabled"])
        self.examine_forwarded = bool(state["examine_forwarded"])
        self.tunnels_built = int(state["tunnels_built"])

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def learn(self, mobile_host: IPAddress, foreign_agent: IPAddress) -> None:
        """Install a location (used by updates and by agents directly)."""
        if foreign_agent.is_zero:
            self.cache.delete(mobile_host)
            return
        self.cache.put(mobile_host, foreign_agent, now=self.port.now)

    def _on_location_update(self, packet: IPPacket, message) -> None:
        if not isinstance(message, LocationUpdate) or not self.enabled:
            return
        self.port.trace(
            "mhrp.update",
            event="received",
            mobile_host=str(message.mobile_host),
            foreign_agent=str(message.foreign_agent),
            purge=message.purge,
        )
        if message.clears_entry:
            self.cache.delete(message.mobile_host)
        else:
            self.learn(message.mobile_host, message.foreign_agent)

    # ------------------------------------------------------------------
    # Dataplane stage hooks
    # ------------------------------------------------------------------
    def outbound_hook(self, packet: IPPacket):
        if not self.enabled or is_control_traffic(packet.protocol, packet.payload):
            return None  # never tunnel the control traffic itself
        foreign_agent = self.cache.get(packet.dst)
        self.port.health_cache_lookup(foreign_agent is not None)
        if foreign_agent is None:
            return None
        if self.node.has_address(foreign_agent):
            # The cache points at *this* node (e.g. we were the foreign
            # agent and the visitor left): handing the packet to the
            # MHRP handler is the agents' job, not the cache's.
            return None
        self.tunnels_built += 1
        self.port.bump("diverted")
        self.port.trace(
            "mhrp.tunnel",
            event="sender-encapsulate",
            mobile_host=str(packet.dst),
            foreign_agent=str(foreign_agent),
            uid=packet.uid,
        )
        return encapsulate(packet, foreign_agent, agent_address=None)

    def transit_hook(self, packet: IPPacket, in_iface):
        if not self.enabled:
            return None
        if (
            self.examine_forwarded
            and packet.protocol == PROTO_ICMP
            and isinstance(packet.payload, LocationUpdate)
        ):
            message = packet.payload
            if message.clears_entry:
                self.cache.delete(message.mobile_host)
            else:
                self.learn(message.mobile_host, message.foreign_agent)
            return None  # keep forwarding the update itself
        if is_control_traffic(packet.protocol, packet.payload):
            return None  # the control traffic itself is never tunneled
        foreign_agent = self.cache.get(packet.dst)
        self.port.health_cache_lookup(foreign_agent is not None)
        if foreign_agent is None or self.node.has_address(foreign_agent):
            return None
        self.tunnels_built += 1
        self.port.bump("diverted")
        self.port.trace(
            "mhrp.tunnel",
            event="agent-encapsulate",
            mobile_host=str(packet.dst),
            foreign_agent=str(foreign_agent),
            uid=packet.uid,
        )
        agent_address = self.node.primary_address
        return encapsulate(packet, foreign_agent, agent_address=agent_address)


# ----------------------------------------------------------------------
# The home-agent role (Sections 2, 3, 5.1, 5.2)
# ----------------------------------------------------------------------

class HomeAgentRole:
    """The home-agent role for one home network.

    Keeps the location database, intercepts packets for away hosts on
    the home network, tunnels them to the current foreign agent, and
    fixes up packets tunneled back by stale agents (Section 5.1) or
    rebooted ones (Section 5.2).
    """

    ROLE_KEY = "home_agent"
    HOOK_NAME = "HomeAgent"

    def __init__(
        self,
        port,
        node,
        home_iface_name: str,
        store: Optional[LocationStore] = None,
        max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
        update_limiter: Optional[UpdateRateLimiter] = None,
    ) -> None:
        if home_iface_name not in node.interfaces:
            raise RegistrationError(
                f"{node.name} has no interface {home_iface_name!r}"
            )
        self.port = port
        self.node = node
        self.home_iface_name = home_iface_name
        self.database = LocationDatabase(store)
        self._store = store
        self.max_previous_sources = max_previous_sources
        self.limiter = update_limiter or UpdateRateLimiter()
        self.advertiser: Optional[Advertiser] = None
        self._dispatcher: Optional[ControlDispatcher] = None
        #: Callbacks invoked as ``f(mobile_host, foreign_agent)`` whenever
        #: a registration changes the database; the host-route variant
        #: (Section 3) subscribes here.
        self.location_listeners: list = []
        #: Rejects registrations older than the newest processed per
        #: host — a delayed ``ha-register`` retransmission must not
        #: revert the database to a previous foreign agent.
        self.stale_filter = StaleControlFilter()
        # Stats for the benches.
        self.packets_intercepted = 0
        self.packets_retunneled = 0
        self.recoveries = 0

    def _wire(self, advertise: bool = True) -> None:
        """Wire the role into its node (hooks, dispatcher, advertiser)."""
        node = self.node
        self.port.install(self.ROLE_KEY, self)
        self.port.add_hooks(self.outbound_hook, self.transit_hook, self.HOOK_NAME)
        dispatcher = ControlDispatcher.for_node(node)
        dispatcher.on(HA_REGISTER, self._on_register)
        self._dispatcher = dispatcher
        if advertise:
            self.advertiser = Advertiser(
                self.port, node, self.home_iface_name,
                is_home_agent=True, is_foreign_agent=False,
            )
            self.port.defer_start(self.advertiser.start)
        node.reboot_hooks.append(self._on_node_reboot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> IPAddress:
        """The agent's own address (head of tunnels it builds)."""
        return self.node.interfaces[self.home_iface_name].ip_address

    @property
    def home_network(self):
        return self.node.interfaces[self.home_iface_name].network

    # ------------------------------------------------------------------
    # Registration (Section 3)
    # ------------------------------------------------------------------
    def _on_register(self, packet: IPPacket, message: RegistrationMessage) -> None:
        mobile_host = message.mobile_host
        if not self.home_network.contains(mobile_host):
            # Not one of ours: refuse, so a misconfigured host finds out.
            self._dispatcher.send_ack(packet.src, message, ok=False)
            return
        if self.stale_filter.is_stale(message):
            # A late retransmission of an older registration: reverting
            # the database would re-point tunnels at a previous foreign
            # agent.  Negative-ack so the sender stops retrying.
            self.port.trace(
                "mhrp.register",
                event="stale-ignored",
                kind=message.kind,
                mobile_host=str(mobile_host),
                seq=message.seq,
            )
            self._dispatcher.send_ack(mobile_host, message, ok=False)
            return
        foreign_agent = message.agent
        self.port.trace(
            "mhrp.register",
            event="ha-register",
            mobile_host=str(mobile_host),
            foreign_agent=str(foreign_agent),
        )
        self.database.record(mobile_host, foreign_agent)
        for listener in list(self.location_listeners):
            listener(mobile_host, foreign_agent)
        if foreign_agent.is_zero:
            self._stop_interception(mobile_host)
        else:
            self._start_interception(mobile_host)
        # The ack to an away host is itself intercepted below and tunneled
        # to the (just recorded) foreign agent.
        self._dispatcher.send_ack(mobile_host, message, agent=self.address)

    def _start_interception(self, mobile_host: IPAddress) -> None:
        """Claim the mobile host's address on the home LAN (Section 2)."""
        self.port.claim_address(self.home_iface_name, mobile_host)

    def _stop_interception(self, mobile_host: IPAddress) -> None:
        self.port.release_address(self.home_iface_name, mobile_host)
        # The returning host broadcasts its own gratuitous ARP to reclaim
        # the address (Section 2); nothing more for us to do.

    # ------------------------------------------------------------------
    # Interception hooks (outbound/transit stage hooks)
    # ------------------------------------------------------------------
    def outbound_hook(self, packet: IPPacket):
        return self._maybe_intercept(packet)

    def transit_hook(self, packet: IPPacket, in_iface):
        return self._maybe_intercept(packet)

    def _maybe_intercept(self, packet: IPPacket):
        mobile_host = packet.dst
        if not self.database.is_away(mobile_host):
            return None
        if packet.protocol == PROTO_MHRP:
            return self._tunneled_arrival(packet)
        return self._intercept_plain(packet)

    def _intercept_plain(self, packet: IPPacket):
        """A normal packet for an away host: tunnel it (Section 6.1)."""
        mobile_host = packet.dst
        foreign_agent = self.database.foreign_agent_of(mobile_host)
        assert foreign_agent is not None  # guarded by is_away above
        if foreign_agent == DISCONNECTED_ADDRESS:
            # Planned disconnection: the host told us it is unreachable.
            # Route the discard through the drop path so the packet gets
            # a counted, attributed terminal (conservation invariant).
            self.port.drop(packet, "mh-disconnected")
            self.port.send_error(ICMPError.unreachable(packet))
            return CONSUMED
        self.packets_intercepted += 1
        self.port.bump("tunneled")
        original_sender = packet.src
        self.port.trace(
            "mhrp.tunnel",
            event="home-intercept",
            mobile_host=str(mobile_host),
            foreign_agent=str(foreign_agent),
            uid=packet.uid,
        )
        tunneled = encapsulate(packet, foreign_agent, agent_address=self.address)
        # Tell the sender where the host is, so its own cache agent (if
        # any) tunnels future packets directly.
        send_location_update(
            self.port, self.node, original_sender, mobile_host, foreign_agent,
            self.limiter,
        )
        return tunneled

    # ------------------------------------------------------------------
    # Packets tunneled back to the home network (Sections 5.1, 5.2)
    # ------------------------------------------------------------------
    def _tunneled_arrival(self, packet: IPPacket):
        payload = packet.payload
        if not isinstance(payload, MHRPPayload):
            return None
        header = payload.header
        mobile_host = header.mobile_host
        decision = decide_home_tunneled_arrival(
            self.database.foreign_agent_of(mobile_host),
            header.previous_sources,
            packet.src,
        )
        if decision.action == HOME_PASS:
            # Raced with a return home; let normal forwarding deliver the
            # still-encapsulated packet to the host itself (Section 6.3).
            return None
        if decision.action == HOME_DROP_DISCONNECTED:
            # Planned disconnection: purge the stale caches and report
            # the host unreachable to the original sender.
            for address in decision.stale:
                send_location_update(
                    self.port, self.node, address, mobile_host, decision.report,
                    self.limiter, purge=True,
                )
            self.port.drop(packet, "mh-disconnected")
            self.port.send_error(ICMPError.unreachable(packet))
            return CONSUMED
        current_fa = decision.report
        if decision.action == HOME_RECOVER:
            # Section 5.2: the "stale" agent *is* the current one — it
            # rebooted and forgot the host.  Update everyone (the foreign
            # agent re-learns its own visitor from the update) and discard
            # the packet; end-to-end retransmission recovers the data.
            self.recoveries += 1
            self.port.trace(
                "mhrp.tunnel",
                event="fa-recovery",
                mobile_host=str(mobile_host),
                foreign_agent=str(current_fa),
                uid=packet.uid,
            )
            for address in decision.stale:
                send_location_update(
                    self.port, self.node, address, mobile_host, current_fa,
                    self.limiter,
                )
            self.port.drop(packet, "mhrp-recovery")
            return CONSUMED
        for address in decision.stale:
            send_location_update(
                self.port, self.node, address, mobile_host, current_fa,
                self.limiter,
            )
        result = retunnel(
            packet,
            new_destination=current_fa,
            my_address=self.address,
            max_previous_sources=self.max_previous_sources,
        )
        if result.loop_detected:
            # A loop that runs through the home agent itself; dissolve it
            # (Section 5.3) and drop the packet.
            self._dissolve_loop(list(decision.stale), mobile_host, uid=packet.uid)
            self.port.drop(packet, "mhrp-loop-dissolved")
            return CONSUMED
        for address in result.flushed:
            send_location_update(
                self.port, self.node, address, mobile_host, current_fa,
                self.limiter,
            )
        self.packets_retunneled += 1
        self.port.bump("tunneled")
        self.port.trace(
            "mhrp.tunnel",
            event="home-retunnel",
            mobile_host=str(mobile_host),
            foreign_agent=str(current_fa),
            uid=packet.uid,
        )
        return packet

    def _dissolve_loop(
        self,
        members: List[IPAddress],
        mobile_host: IPAddress,
        uid: Optional[int] = None,
    ) -> None:
        self.port.trace(
            "mhrp.loop",
            event="dissolve",
            mobile_host=str(mobile_host),
            members=[str(a) for a in members],
            uid=uid,
        )
        for address in members:
            send_location_update(
                self.port, self.node, address, mobile_host, IPAddress.zero(),
                limiter=None, purge=True,
            )

    # ------------------------------------------------------------------
    # Reboot recovery (Section 2: database on disk)
    # ------------------------------------------------------------------
    def _on_node_reboot(self) -> None:
        # Sequence memory is RAM-resident, unlike the database.
        self.stale_filter.reset()
        if self._store is not None:
            self.database.reload()
        else:
            self.database.clear_memory()
        # Re-establish interception for everything the disk remembers.
        for mobile_host in self.database.away_hosts():
            self._start_interception(mobile_host)
        if self.advertiser is not None:
            self.advertiser.restart_with_new_boot_id()

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able role state for the session snapshot/diff contract."""
        return {
            "database": self.database.state_dict(),
            "stale_filter": self.stale_filter.state_dict(),
            "limiter": self.limiter.state_dict(),
            "packets_intercepted": self.packets_intercepted,
            "packets_retunneled": self.packets_retunneled,
            "recoveries": self.recoveries,
        }

    def load_state(self, state: dict) -> None:
        """Restore role state from :meth:`state_dict` (interception proxy
        entries are not rebuilt here; they live in the ARP service and
        are restored by its own contract)."""
        self.database.load_state(state["database"])
        self.stale_filter.load_state(state["stale_filter"])
        self.limiter.load_state(state["limiter"])
        self.packets_intercepted = int(state["packets_intercepted"])
        self.packets_retunneled = int(state["packets_retunneled"])
        self.recoveries = int(state["recoveries"])


# ----------------------------------------------------------------------
# The foreign-agent role (Sections 2, 4.4, 5.1, 5.2, 5.3)
# ----------------------------------------------------------------------

@dataclass(slots=True)
class VisitorRecord:
    """One entry in the visitor list — a value record (see
    :class:`AgentAdvertisementInfo`): replaced, never mutated, so
    snapshots share it."""

    mobile_host: IPAddress
    hw_value: int
    registered_at: float

    def __deepcopy__(self, memo: dict) -> "VisitorRecord":
        return self


class ForeignAgentRole:
    """The foreign-agent role for one local network.

    Args:
        port, node: backend port + the node providing the service.
        local_iface_name: the interface visitors attach through.
        cache_agent: the node's cache agent, used for forwarding pointers
            (Section 2); ``None`` disables them.
        keep_forwarding_pointers: cache the new foreign agent when a
            visitor moves away (optional per the paper; E6 measures it).
        believe_home_agent: Section 5.2 gives the rebooted agent a
            choice — re-add a visitor on the home agent's word (True), or
            first verify with a local query (False).
    """

    ROLE_KEY = "foreign_agent"
    HOOK_NAME = "ForeignAgent"

    def __init__(
        self,
        port,
        node,
        local_iface_name: str,
        cache_agent: Optional[CacheAgentRole] = None,
        keep_forwarding_pointers: bool = True,
        believe_home_agent: bool = True,
        advertise: bool = True,
        max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
        update_limiter: Optional[UpdateRateLimiter] = None,
    ) -> None:
        if local_iface_name not in node.interfaces:
            raise RegistrationError(f"{node.name} has no interface {local_iface_name!r}")
        self.port = port
        self.node = node
        self.local_iface_name = local_iface_name
        self.cache_agent = cache_agent
        self.keep_forwarding_pointers = keep_forwarding_pointers
        self.believe_home_agent = believe_home_agent
        self.max_previous_sources = max_previous_sources
        self.limiter = update_limiter or UpdateRateLimiter()
        self.visitors: Dict[IPAddress, VisitorRecord] = {}
        #: Hosts that explicitly disconnected recently, with the time.
        #: A location update claiming such a host is *here* is stale
        #: information racing with the handoff (the home agent tunneled
        #: and advertised before it processed the new registration) and
        #: must not resurrect the visitor entry.
        self.recent_departures: Dict[IPAddress, float] = {}
        #: Callbacks invoked as ``f(mobile_host, present)`` when a visitor
        #: is added (True) or removed (False); the host-route variant
        #: (Section 3) subscribes here.
        self.visitor_listeners: list = []
        #: Rejects connect/disconnect notifications older than the
        #: newest one processed per host (late retransmissions).
        self.stale_filter = StaleControlFilter()
        self.advertiser: Optional[Advertiser] = None
        self._dispatcher: Optional[ControlDispatcher] = None
        self._advertise = advertise
        # Stats for the benches.
        self.delivered_to_visitors = 0
        self.retunneled_forward = 0
        self.retunneled_home = 0
        self.loops_detected = 0
        self.recoveries = 0

    def _wire(self) -> None:
        """Wire the role into its node (hooks, MHRP handler, dispatcher,
        location-update listener, advertiser)."""
        node = self.node
        self.port.install(self.ROLE_KEY, self)
        self.port.add_hooks(self.outbound_hook, self.transit_hook, self.HOOK_NAME)
        node.register_protocol(PROTO_MHRP, self._on_mhrp_packet)
        dispatcher = ControlDispatcher.for_node(node)
        dispatcher.on(FA_CONNECT, self._on_connect)
        dispatcher.on(FA_DISCONNECT, self._on_disconnect)
        self._dispatcher = dispatcher
        node.on_icmp(TYPE_LOCATION_UPDATE, self._on_location_update)
        if self._advertise:
            self.advertiser = Advertiser(
                self.port, node, self.local_iface_name,
                is_home_agent=False, is_foreign_agent=True,
            )
            self.port.defer_start(self.advertiser.start)
        node.reboot_hooks.append(self._on_node_reboot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> IPAddress:
        """The agent's own address — the tunnel endpoint mobile hosts
        register with their home agents."""
        return self.node.interfaces[self.local_iface_name].ip_address

    def is_serving(self, mobile_host: IPAddress) -> bool:
        return mobile_host in self.visitors

    # ------------------------------------------------------------------
    # Registration (Section 3)
    # ------------------------------------------------------------------
    def _on_connect(self, packet: IPPacket, message: RegistrationMessage) -> None:
        mobile_host = message.mobile_host
        if self._ignore_stale(message):
            return
        self.recent_departures.pop(mobile_host, None)
        self.visitors[mobile_host] = VisitorRecord(
            mobile_host=mobile_host,
            hw_value=message.hw_value,
            registered_at=self.port.now,
        )
        for listener in list(self.visitor_listeners):
            listener(mobile_host, True)
        if message.hw_value:
            # Section 2: "the physical network address may be saved from
            # the connection notification message".
            self.port.learn_neighbor(
                self.local_iface_name, mobile_host, message.hw_value
            )
        self.port.trace(
            "mhrp.register",
            event="fa-connect",
            mobile_host=str(mobile_host),
        )
        self._dispatcher.send_ack(mobile_host, message, agent=self.address)

    def _on_disconnect(self, packet: IPPacket, message: RegistrationMessage) -> None:
        mobile_host = message.mobile_host
        if self._ignore_stale(message):
            return
        if self.visitors.pop(mobile_host, None) is not None:
            for listener in list(self.visitor_listeners):
                listener(mobile_host, False)
        self.recent_departures[mobile_host] = self.port.now
        new_foreign_agent = message.agent
        pointer = forwarding_pointer_target(
            self.keep_forwarding_pointers,
            self.cache_agent is not None,
            new_foreign_agent,
            self.address,
        )
        if pointer is not None:
            # Section 2: the cache entry becomes a "forwarding pointer";
            # it is an ordinary cache entry from here on.
            self.cache_agent.learn(mobile_host, pointer)
        self.port.trace(
            "mhrp.register",
            event="fa-disconnect",
            mobile_host=str(mobile_host),
            new_foreign_agent=str(new_foreign_agent),
        )
        self._dispatcher.send_ack(mobile_host, message, agent=self.address)

    def _ignore_stale(self, message: RegistrationMessage) -> bool:
        """Drop a late retransmission of an *older* notification — a
        delayed ``fa-disconnect`` from move *k* must not de-register the
        visitor that move *k+1* just connected.  The negative ack stops
        the sender's retransmit timer without acting on the message."""
        if not self.stale_filter.is_stale(message):
            return False
        self.port.trace(
            "mhrp.register",
            event="stale-ignored",
            kind=message.kind,
            mobile_host=str(message.mobile_host),
            seq=message.seq,
        )
        self._dispatcher.send_ack(message.mobile_host, message, ok=False)
        return True

    # ------------------------------------------------------------------
    # Tunneled packets addressed to this agent (Sections 4.4, 5.1, 5.3)
    # ------------------------------------------------------------------
    def _on_mhrp_packet(self, packet: IPPacket, iface=None) -> None:
        payload = packet.payload
        if not isinstance(payload, MHRPPayload):
            # Route the discard through the drop path so it is counted
            # and attributed, not just traced.
            self.port.drop(packet, "malformed-mhrp")
            return
        header = payload.header
        mobile_host = header.mobile_host
        if mobile_host in self.visitors:
            self._deliver_to_visitor(packet, header.previous_sources)
            return
        self._retunnel_elsewhere(packet)

    def _deliver_to_visitor(self, packet: IPPacket, previous_sources) -> None:
        """Correct delivery: update stale caches, reconstruct, last hop."""
        mobile_host = packet.payload.header.mobile_host
        # Section 5.1: every address on the list is an out-of-date cache
        # (the IP source — the last tunnel head — already points here).
        for address in list(previous_sources):
            send_location_update(
                self.port, self.node, address, mobile_host, self.address,
                self.limiter,
            )
        self.port.health_tunnel_delivery(str(mobile_host), len(previous_sources))
        decapsulate(packet)
        self.delivered_to_visitors += 1
        self.port.trace(
            "mhrp.tunnel",
            event="fa-deliver",
            mobile_host=str(mobile_host),
            uid=packet.uid,
        )
        self.node.transmit_on_link(self.local_iface_name, mobile_host, packet)

    def _retunnel_elsewhere(self, packet: IPPacket) -> None:
        """The visitor left (Section 4.4): forward along, or send home."""
        header = packet.payload.header
        mobile_host = header.mobile_host
        cached: Optional[IPAddress] = None
        if self.cache_agent is not None:
            cached = self.cache_agent.cache.get(mobile_host)
        # No usable forwarding pointer: tunnel to the mobile host's home
        # address; the home agent intercepts it there.
        target, going_home = retunnel_target(cached, self.address, mobile_host)
        result = retunnel(
            packet,
            new_destination=target,
            my_address=self.address,
            max_previous_sources=self.max_previous_sources,
        )
        if result.loop_detected:
            self._dissolve_loop(packet)
            return
        for address in result.flushed:
            # Section 4.4 overflow: point every flushed cache at the
            # destination we are about to use ourselves.
            send_location_update(
                self.port, self.node, address, mobile_host, target, self.limiter
            )
        if going_home:
            self.retunneled_home += 1
        else:
            self.retunneled_forward += 1
        self.port.bump("tunneled")
        self.port.trace(
            "mhrp.tunnel",
            event="fa-retunnel",
            mobile_host=str(mobile_host),
            target=str(target),
            going_home=going_home,
            uid=packet.uid,
        )
        self.node.forward_injected(packet)

    def _dissolve_loop(self, packet: IPPacket) -> None:
        """Section 5.3: purge every cache on the list, then send the
        packet to the mobile host's home (keeping only the original
        sender on the list, which decapsulation needs)."""
        header = packet.payload.header
        mobile_host = header.mobile_host
        self.loops_detected += 1
        # The list names every head the packet passed through except the
        # most recent one, which sits in the IP source field — include it
        # so the *whole* loop is dissolved in one step.
        members = stale_chain(header.previous_sources, packet.src)
        self.port.trace(
            "mhrp.loop",
            event="dissolve",
            mobile_host=str(mobile_host),
            members=[str(a) for a in members],
            uid=packet.uid,
        )
        for address in members:
            send_location_update(
                self.port, self.node, address, mobile_host, IPAddress.zero(),
                limiter=None, purge=True,
            )
        if self.cache_agent is not None:
            self.cache_agent.cache.delete(mobile_host)
        # Keep the original sender (first entry) so the foreign agent or
        # mobile host can still reconstruct the original IP header.
        del header.previous_sources[1:]
        packet.src = self.address
        packet.dst = mobile_host
        self.node.forward_injected(packet)

    # ------------------------------------------------------------------
    # Local delivery shortcuts (outbound/transit stage hooks)
    # ------------------------------------------------------------------
    def outbound_hook(self, packet: IPPacket):
        return self._maybe_deliver_plain(packet)

    def transit_hook(self, packet: IPPacket, in_iface):
        return self._maybe_deliver_plain(packet)

    def _maybe_deliver_plain(self, packet: IPPacket):
        """A non-tunneled packet addressed to a visitor's home address
        (from a host on this network, or via a host-specific route) is
        transmitted locally — the foreign agent "recognize[s] that a
        packet that it is routing must be transmitted locally to a
        visiting mobile host" (Section 4.3)."""
        if packet.protocol == PROTO_MHRP:
            return None
        if packet.dst not in self.visitors:
            return None
        self.port.bump("diverted")
        self.port.trace(
            "mhrp.tunnel",
            event="fa-local-delivery",
            mobile_host=str(packet.dst),
            uid=packet.uid,
        )
        self.node.transmit_on_link(self.local_iface_name, packet.dst, packet)
        return CONSUMED

    # ------------------------------------------------------------------
    # State recovery (Section 5.2)
    # ------------------------------------------------------------------
    def _on_location_update(self, packet: IPPacket, message) -> None:
        if not isinstance(message, LocationUpdate):
            return
        mobile_host = message.mobile_host
        if not should_recover_visitor(
            message.clears_entry,
            message.foreign_agent,
            self.address,
            mobile_host in self.visitors,
            self.recent_departures.get(mobile_host),
            self.port.now,
            DEPARTURE_GRACE,
        ):
            # Among the refusals: the host told us it *left* more
            # recently than whatever this update is based on; re-adding
            # it would black-hole traffic until the handoff notifications
            # land everywhere.
            return
        if self.believe_home_agent:
            self._readd_visitor(mobile_host)
        else:
            self._verify_with_query(mobile_host)

    def _readd_visitor(self, mobile_host: IPAddress) -> None:
        self.recoveries += 1
        self.visitors[mobile_host] = VisitorRecord(
            mobile_host=mobile_host,
            hw_value=0,  # re-learned via ARP on the next delivery
            registered_at=self.port.now,
        )
        for listener in list(self.visitor_listeners):
            listener(mobile_host, True)
        self.port.trace(
            "mhrp.register",
            event="fa-recover-visitor",
            mobile_host=str(mobile_host),
        )

    def _verify_with_query(self, mobile_host: IPAddress) -> None:
        """Section 5.2's alternative: "send a 'query' message onto its
        local network to verify that the mobile host is actually
        connected" — a presence probe whose answer proves the host is on
        this segment (ARP on the simulator, an ICMP echo on the wire
        backends)."""
        if self.port.neighbor_known(self.local_iface_name, mobile_host):
            # Presence already proven: the host answered a query on this
            # segment recently; trust it.
            self._readd_visitor(mobile_host)
            return
        self.port.probe_neighbor(self.local_iface_name, mobile_host, self.address)
        # The probe gives up after its retry schedule; look again just
        # after.
        self.port.set_timer(
            f"fa-verify-{mobile_host}",
            QUERY_VERIFY_DELAY,
            partial(self._check_query_result, mobile_host),
        )

    def _check_query_result(self, mobile_host: IPAddress) -> None:
        if self.port.neighbor_known(self.local_iface_name, mobile_host):
            self._readd_visitor(mobile_host)

    # ------------------------------------------------------------------
    # Reboot (Section 5.2: the visitor list is volatile)
    # ------------------------------------------------------------------
    def _on_node_reboot(self) -> None:
        for mobile_host in list(self.visitors):
            for listener in list(self.visitor_listeners):
                listener(mobile_host, False)
        self.visitors.clear()
        # Departure memory is volatile too; after a reboot the Section
        # 5.2 recovery must be able to re-add anyone.
        self.recent_departures.clear()
        self.stale_filter.reset()
        if self.advertiser is not None:
            # "To speed the state recovery ... broadcast over its local
            # network a query for all mobile hosts to initiate
            # reconnection": a fresh boot id makes every visitor that
            # hears the next advertisement re-register.
            self.advertiser.restart_with_new_boot_id()

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able role state for the session snapshot/diff contract."""
        return {
            "visitors": {
                str(mh): {"hw": rec.hw_value, "registered_at": rec.registered_at}
                for mh, rec in sorted(
                    self.visitors.items(), key=lambda kv: kv[0].value
                )
            },
            "recent_departures": {
                str(mh): t
                for mh, t in sorted(
                    self.recent_departures.items(), key=lambda kv: kv[0].value
                )
            },
            "stale_filter": self.stale_filter.state_dict(),
            "limiter": self.limiter.state_dict(),
            "delivered_to_visitors": self.delivered_to_visitors,
            "retunneled_forward": self.retunneled_forward,
            "retunneled_home": self.retunneled_home,
            "loops_detected": self.loops_detected,
            "recoveries": self.recoveries,
        }

    def load_state(self, state: dict) -> None:
        """Restore role state from :meth:`state_dict` (visitor listeners
        are not re-notified; restoring is not a membership change)."""
        self.visitors = {
            IPAddress(mh): VisitorRecord(
                mobile_host=IPAddress(mh),
                hw_value=int(rec.get("hw", 0)),
                registered_at=rec["registered_at"],
            )
            for mh, rec in state["visitors"].items()
        }
        self.recent_departures = {
            IPAddress(mh): t for mh, t in state["recent_departures"].items()
        }
        self.stale_filter.load_state(state["stale_filter"])
        self.limiter.load_state(state["limiter"])
        self.delivered_to_visitors = int(state["delivered_to_visitors"])
        self.retunneled_forward = int(state["retunneled_forward"])
        self.retunneled_home = int(state["retunneled_home"])
        self.loops_detected = int(state["loops_detected"])
        self.recoveries = int(state["recoveries"])


# ----------------------------------------------------------------------
# The mobile-host role (Sections 1–3, 6) — a mixin over the node class
# ----------------------------------------------------------------------

class MobileHostRole:
    """The mobile host's network-level module as a mixin.

    Unlike the agent roles (which compose onto a node), the mobile host
    *is* its node — :class:`~repro.core.mobile_host.MobileHost` mixes
    this over :class:`~repro.ip.host.Host` and
    :class:`~repro.wire.engine.MobileHostEngine` over
    :class:`~repro.wire.engine.NodeEngine`.  The concrete class supplies
    construction, movement/attachment (physical on the simulator, driven
    by schedule commands on the engines) and three small overridables:
    ``_wifi_hw_value``, ``_solicit`` delivery, and ``_redeliver_local``.
    """

    WIFI = "wifi0"
    WATCHDOG_KEY = "mh-watchdog"

    def _init_mobile_state(self, port) -> None:
        """Initialize the protocol-state attributes shared by both
        substrates (the concrete ctor sets home addresses, the interface,
        the registrar and ``_next_seq`` itself)."""
        self.port = port
        self.state = DISCONNECTED
        self.current_foreign_agent: Optional[IPAddress] = None
        self.temp_address: Optional[IPAddress] = None
        self._fa_boot_ids: Dict[IPAddress, int] = {}
        self._registering_with: Optional[IPAddress] = None
        self.limiter = UpdateRateLimiter()
        # Advertisement-lifetime watchdog (Section 3's implicit-move
        # detection turned inward): while away, if the serving foreign
        # agent falls silent past its advertised lifetime, solicit; past
        # twice the lifetime, consider the connection gone.
        self._last_fa_heard = 0.0
        self._fa_lifetime = 0.0
        # Stats for the benches.
        self.moves = 0
        self.registrations = 0
        self.silence_disconnects = 0

    # -- substrate-specific hooks --------------------------------------
    def _wifi_hw_value(self) -> int:
        """Hardware address carried in connect notifications (Section 2);
        zero where the substrate has no link layer."""
        return 0

    def _redeliver_local(self, packet: IPPacket, iface) -> None:
        """Hand a decapsulated packet back to local protocol dispatch."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared movement plumbing
    # ------------------------------------------------------------------
    @property
    def at_home(self) -> bool:
        return self.state == AT_HOME

    def _record_move(self) -> None:
        self.moves += 1
        self.port.health_moved()

    def _solicit(self) -> None:
        """Multicast a solicitation instead of waiting for the period."""
        self.send_broadcast(self.WIFI, PROTO_ICMP, RouterSolicitation())

    def _disconnect_protocol(self) -> None:
        """Planned disconnection (Section 3): notify the home agent
        first, then the old foreign agent."""
        old_fa = self.current_foreign_agent
        if self.state != AT_HOME:
            self._register_with_home_agent(DISCONNECTED_ADDRESS)
        if old_fa is not None:
            self._notify_old_foreign_agent(old_fa, new_agent=IPAddress.zero())
        self.current_foreign_agent = None
        self.temp_address = None
        self.state = DISCONNECTED
        self.port.cancel_timer(self.WATCHDOG_KEY)

    # ------------------------------------------------------------------
    # Routing while away vs at home
    # ------------------------------------------------------------------
    def _set_away_routing(self, gateway: IPAddress) -> None:
        """Route everything via the foreign agent (or foreign gateway).

        The connected route for the home network must be withdrawn: the
        home prefix is *not* on-link while visiting a foreign network,
        and leaving the route in place would resolve home-network
        addresses (the home agent included) on the foreign medium.
        """
        self.routing_table.remove(self.home_network)
        self.set_gateway(gateway, self.WIFI)

    def _set_home_routing(self) -> None:
        self.routing_table.add_connected(self.home_network, self.WIFI)
        self.set_gateway(self.home_gateway, self.WIFI)

    # ------------------------------------------------------------------
    # Agent discovery reactions (Section 3)
    # ------------------------------------------------------------------
    def _on_agent_heard(self, info: AgentAdvertisementInfo) -> None:
        if info.agent == self.home_agent:
            # Hearing our own home agent on-link means we are on the home
            # network, whichever role bits this particular advertisement
            # carries (a combined router advertises both roles and may
            # emit them in separate messages).
            self._heard_home_agent(info)
            return
        if info.is_foreign_agent:
            self._heard_foreign_agent(info)

    def _heard_home_agent(self, info: AgentAdvertisementInfo) -> None:
        """We are (back) on the home network."""
        if self.state == AT_HOME:
            return
        old_fa = self.current_foreign_agent
        self.state = AT_HOME
        self.port.cancel_timer(self.WATCHDOG_KEY)
        self.current_foreign_agent = None
        self.temp_address = None
        self.iface.alias_addresses = set()
        self._set_home_routing()
        # Reclaim the home address on the home LAN (Section 2): other
        # hosts' ARP caches still bind it to the home agent.
        self.port.announce_address(self.WIFI, self.home_address)
        # "The mobile host registers a special foreign agent address of
        # zero with its home agent when reconnecting to its home network."
        self._register_with_home_agent(IPAddress.zero())
        if old_fa is not None:
            # Section 6.3: the old foreign agent deletes the visitor and
            # does NOT create a forwarding pointer (zero new agent).
            self._notify_old_foreign_agent(old_fa, new_agent=IPAddress.zero())

    def _heard_foreign_agent(self, info: AgentAdvertisementInfo) -> None:
        agent = info.agent
        previous_boot = self._fa_boot_ids.get(agent)
        self._fa_boot_ids[agent] = info.boot_id
        if agent == self.current_foreign_agent and self.state == AWAY:
            self._last_fa_heard = self.port.now
            self._fa_lifetime = info.lifetime
            if previous_boot is not None and previous_boot != info.boot_id:
                # Our agent rebooted and lost its visitor list
                # (Section 5.2): re-register proactively.
                self._connect_to_foreign_agent(agent, rebind_only=True)
            return
        if agent == self._registering_with:
            return  # registration already in flight
        self._connect_to_foreign_agent(agent)

    # ------------------------------------------------------------------
    # Registration sequence (Section 3 ordering)
    # ------------------------------------------------------------------
    def _connect_to_foreign_agent(self, agent: IPAddress, rebind_only: bool = False) -> None:
        old_fa = self.current_foreign_agent if not rebind_only else None
        was_home = self.state == AT_HOME
        self._registering_with = agent
        # Route our own traffic via the new agent immediately; the
        # registration itself (and everything after it) needs this.
        self._set_away_routing(agent)
        message = RegistrationMessage(
            kind=FA_CONNECT,
            seq=self._next_seq(),
            mobile_host=self.home_address,
            agent=agent,
            hw_value=self._wifi_hw_value(),
        )
        registration_started = self.port.now
        self.registrar.send(
            agent,
            message,
            on_ack=partial(
                self._fa_connect_acked, agent, old_fa, was_home, registration_started
            ),
            on_fail=self._fa_connect_failed,
        )

    def _fa_connect_acked(
        self,
        agent: IPAddress,
        old_fa: Optional[IPAddress],
        was_home: bool,
        registration_started: float,
        ack: RegistrationMessage,
    ) -> None:
        self._registering_with = None
        if not ack.ok:
            return
        self.state = AWAY
        self.current_foreign_agent = agent
        self.temp_address = None
        self.iface.alias_addresses = set()
        self.registrations += 1
        self.port.health_registration(agent, self.port.now - registration_started)
        self._last_fa_heard = self.port.now
        if self._fa_lifetime <= 0:
            self._fa_lifetime = DEFAULT_ADVERT_LIFETIME
        self.port.set_timer(
            self.WATCHDOG_KEY, self._fa_lifetime, self._check_agent_silence
        )
        # Step 2: the home agent.
        self._register_with_home_agent(agent)
        # Step 3: the old foreign agent (unless we came from home or
        # already disconnected explicitly).
        if old_fa is not None and old_fa != agent and not was_home:
            self._notify_old_foreign_agent(old_fa, new_agent=agent)

    def _fa_connect_failed(self) -> None:
        self._registering_with = None

    def _register_with_home_agent(self, foreign_agent: IPAddress) -> None:
        message = RegistrationMessage(
            kind=HA_REGISTER,
            seq=self._next_seq(),
            mobile_host=self.home_address,
            agent=foreign_agent,
        )
        self.registrar.send(self.home_agent, message)

    def _notify_old_foreign_agent(self, old_fa: IPAddress, new_agent: IPAddress) -> None:
        message = RegistrationMessage(
            kind=FA_DISCONNECT,
            seq=self._next_seq(),
            mobile_host=self.home_address,
            agent=new_agent,
        )
        self.registrar.send(old_fa, message)

    # ------------------------------------------------------------------
    # Foreign agent silence watchdog
    # ------------------------------------------------------------------
    def _check_agent_silence(self) -> None:
        if self.state != AWAY or self._fa_lifetime <= 0:
            return
        silent_for = self.port.now - self._last_fa_heard
        if silent_for >= 2 * self._fa_lifetime:
            # The agent is gone (crashed, or we drifted out of range
            # without hearing anyone new): the connection is dead.
            self.port.trace(
                "mhrp.register", event="mh-silence-disconnect",
                agent=str(self.current_foreign_agent),
            )
            self.silence_disconnects += 1
            self.current_foreign_agent = None
            self.state = DISCONNECTED
            return
        if silent_for >= self._fa_lifetime:
            # Past the advertised lifetime: ask before giving up.
            self._solicit()
        self.port.set_timer(
            self.WATCHDOG_KEY, self._fa_lifetime / 2, self._check_agent_silence
        )

    # ------------------------------------------------------------------
    # MHRP packets addressed to this host
    # ------------------------------------------------------------------
    def _on_mhrp_packet(self, packet: IPPacket, iface=None) -> None:
        """A tunneled packet reached the host itself.

        Two legitimate cases: the host is at home and a stale chain
        re-tunneled the packet to the home address (Section 6.3), or the
        host is its own foreign agent and this is a normal tunnel
        delivery (Section 2).  Either way the host updates the stale
        caches recorded in the packet and delivers the payload to itself.
        """
        payload = packet.payload
        if not isinstance(payload, MHRPPayload):
            return
        header = payload.header
        if header.mobile_host != self.home_address:
            return  # tunneled to us by mistake; nothing useful to do
        # Section 6.3: while at home (or disconnected) the reported
        # location is zero — "indicating that it is currently connected
        # to its home network and that S's cache entry ... should be
        # deleted".
        location = mh_reported_location(
            self.state, self.temp_address, self.current_foreign_agent
        )
        stale = stale_chain(header.previous_sources, packet.src)
        for address in stale:
            send_location_update(
                self.port, self, address, self.home_address, location, self.limiter
            )
        self.port.health_tunnel_delivery(
            str(header.mobile_host), len(header.previous_sources)
        )
        decapsulate(packet)
        self.port.trace(
            "mhrp.tunnel",
            event="mh-self-deliver",
            uid=packet.uid,
        )
        self._redeliver_local(packet, iface)

    # ------------------------------------------------------------------
    # Snapshot contract (PR 5) — also the cross-partition migration format
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able protocol state of the mobile host module.

        This is what travels when a host crosses a partition boundary in
        :mod:`repro.partition`: the destination partition materializes a
        visitor host and :meth:`load_state`\\ s this record before
        re-attaching it.  Pending registrar retransmissions are captured
        as their sequence numbers only — their timers belong to the old
        partition's event queue and are *not* migrated; the re-attach at
        the destination starts a fresh Section 3 notification sequence.
        """
        return {
            "state": self.state,
            "current_foreign_agent": (
                str(self.current_foreign_agent)
                if self.current_foreign_agent is not None else None
            ),
            "temp_address": (
                str(self.temp_address) if self.temp_address is not None else None
            ),
            "fa_boot_ids": {
                str(agent): boot_id
                for agent, boot_id in sorted(
                    self._fa_boot_ids.items(), key=lambda kv: str(kv[0])
                )
            },
            "last_fa_heard": self._last_fa_heard,
            "fa_lifetime": self._fa_lifetime,
            "moves": self.moves,
            "registrations": self.registrations,
            "silence_disconnects": self.silence_disconnects,
            "limiter": self.limiter.state_dict(),
            "registrar": self.registrar.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` protocol state onto this host.

        ``registrar`` pending entries are informational — retransmission
        timers are not recreated (see :meth:`state_dict`)."""
        self.state = state["state"]
        cfa = state["current_foreign_agent"]
        self.current_foreign_agent = IPAddress(cfa) if cfa is not None else None
        temp = state["temp_address"]
        self.temp_address = IPAddress(temp) if temp is not None else None
        self._fa_boot_ids = {
            IPAddress(agent): int(boot_id)
            for agent, boot_id in state["fa_boot_ids"].items()
        }
        self._registering_with = None
        self._last_fa_heard = float(state["last_fa_heard"])
        self._fa_lifetime = float(state["fa_lifetime"])
        self.moves = int(state["moves"])
        self.registrations = int(state["registrations"])
        self.silence_disconnects = int(state["silence_disconnects"])
        self.limiter.load_state(state["limiter"])
