"""Tests for geometric (range-driven) mobility."""

import pytest

from repro.netsim import Simulator
from repro.workloads import build_campus
from repro.workloads.geo import CellSite, GeoWalker, distance


@pytest.fixture
def geo_campus():
    """Two cells side by side with a gap beyond them.

    Cell 0 covers x in [0, 100] (center 50, r 50); cell 1 covers
    x in [80, 180] (center 130, r 50); nothing covers x > 180.
    """
    topo = build_campus(n_cells=2, n_mobile_hosts=1, advertise=True,
                        sim=Simulator(seed=17))
    sites = [
        CellSite(cell=topo.cells[0], position=(50.0, 0.0), radius=50.0),
        CellSite(cell=topo.cells[1], position=(130.0, 0.0), radius=50.0),
    ]
    return topo, sites


def make_walker(topo, sites, **kwargs):
    defaults = dict(bounds=(0.0, 0.0, 180.0, 0.0), speed=10.0, tick=1.0)
    defaults.update(kwargs)
    return GeoWalker(topo.mobile_hosts[0], sites, **defaults)


class TestGeometry:
    def test_distance(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_covers(self, geo_campus):
        topo, sites = geo_campus
        assert sites[0].covers((10.0, 0.0))
        assert not sites[0].covers((120.0, 0.0))

    def test_needs_sites(self, geo_campus):
        topo, sites = geo_campus
        with pytest.raises(ValueError):
            GeoWalker(topo.mobile_hosts[0], [], bounds=(0, 0, 1, 1))


class TestWalking:
    def test_walker_associates_with_covering_cell(self, geo_campus):
        topo, sites = geo_campus
        walker = make_walker(topo, sites, start=(10.0, 0.0), speed=0.0)
        walker.start()
        topo.sim.run(until=5.0)
        host = topo.mobile_hosts[0]
        assert walker.current_site is sites[0]
        assert host.current_foreign_agent == topo.cell_roles[0].foreign_agent.address

    def test_walk_across_boundary_hands_off(self, geo_campus):
        """A straight eastward walk crosses from cell 0 into cell 1."""
        topo, sites = geo_campus
        sim = topo.sim
        # Future random waypoints stay in cell 1's exclusive zone, so
        # after the crossing the walker never wanders back west.
        walker = make_walker(topo, sites, start=(10.0, 0.0),
                             bounds=(160.0, 0.0, 175.0, 0.0))
        walker.waypoint = (175.0, 0.0)
        walker.start()
        sim.run(until=40.0)
        host = topo.mobile_hosts[0]
        # Ended up in cell 1's exclusive zone.
        assert walker.current_site is sites[1]
        assert host.current_foreign_agent == topo.cell_roles[1].foreign_agent.address
        assert walker.handoffs >= 2

    def test_walking_out_of_coverage_detaches(self, geo_campus):
        topo, sites = geo_campus
        sim = topo.sim
        walker = make_walker(topo, sites, start=(130.0, 0.0),
                             bounds=(300.0, 0.0, 400.0, 0.0))
        walker.waypoint = (400.0, 0.0)
        walker.start()
        sim.run(until=60.0)
        assert walker.coverage_gaps >= 1
        assert not topo.mobile_hosts[0].iface.attached

    def test_traffic_follows_the_walk(self, geo_campus):
        """Pings land wherever the walker currently is."""
        topo, sites = geo_campus
        sim = topo.sim
        host = topo.mobile_hosts[0]
        correspondent = topo.correspondents[0]
        walker = make_walker(topo, sites, start=(10.0, 0.0),
                             bounds=(160.0, 0.0, 175.0, 0.0))
        walker.waypoint = (175.0, 0.0)
        walker.start()
        replies = []
        correspondent.on_icmp(0, lambda p, m: replies.append(m))
        for t in (5.0, 15.0, 30.0):
            sim.run(until=t)
            correspondent.ping(host.home_address)
        sim.run(until=45.0)
        assert len(replies) == 3

    def test_deterministic_walks(self, ):
        def run(seed):
            topo = build_campus(n_cells=2, n_mobile_hosts=1, advertise=True,
                                sim=Simulator(seed=seed))
            sites = [
                CellSite(cell=topo.cells[0], position=(50.0, 0.0), radius=50.0),
                CellSite(cell=topo.cells[1], position=(130.0, 0.0), radius=50.0),
            ]
            walker = make_walker(topo, sites)
            walker.start()
            topo.sim.run(until=120.0)
            return walker.handoffs, walker.position

        assert run(3) == run(3)
