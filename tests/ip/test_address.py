"""Unit tests for IP addresses and networks."""

import pytest

from repro.errors import AddressError
from repro.ip.address import IPAddress, IPNetwork


class TestIPAddressParsing:
    def test_parses_dotted_quad(self):
        assert IPAddress("192.168.1.1").value == 0xC0A80101

    def test_parses_int(self):
        assert str(IPAddress(0x0A000001)) == "10.0.0.1"

    def test_copy_constructor(self):
        a = IPAddress("1.2.3.4")
        assert IPAddress(a) == a

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.0.0.0"]
    )
    def test_rejects_malformed_strings(self, bad):
        with pytest.raises(AddressError):
            IPAddress(bad)

    @pytest.mark.parametrize("bad", [-1, 2**32])
    def test_rejects_out_of_range_ints(self, bad):
        with pytest.raises(AddressError):
            IPAddress(bad)

    def test_rejects_other_types(self):
        with pytest.raises(AddressError):
            IPAddress(1.5)  # type: ignore[arg-type]


class TestIPAddressBehaviour:
    def test_round_trips_through_string(self):
        for text in ("0.0.0.0", "255.255.255.255", "10.1.2.3"):
            assert str(IPAddress(text)) == text

    def test_bytes_round_trip(self):
        a = IPAddress("172.16.5.9")
        assert IPAddress.from_bytes(a.to_bytes()) == a
        assert len(a.to_bytes()) == 4

    def test_from_bytes_wrong_length(self):
        with pytest.raises(AddressError):
            IPAddress.from_bytes(b"\x01\x02\x03")

    def test_equality_with_string_and_int(self):
        a = IPAddress("10.0.0.1")
        assert a == "10.0.0.1"
        assert a == 0x0A000001
        assert a != "10.0.0.2"

    def test_ordering(self):
        assert IPAddress("10.0.0.1") < IPAddress("10.0.0.2")
        assert sorted([IPAddress("2.0.0.0"), IPAddress("1.0.0.0")])[0] == "1.0.0.0"

    def test_hashable_and_usable_as_dict_key(self):
        table = {IPAddress("10.0.0.1"): "x"}
        assert table[IPAddress("10.0.0.1")] == "x"

    def test_immutable(self):
        a = IPAddress("10.0.0.1")
        with pytest.raises(AttributeError):
            a._value = 5  # type: ignore[attr-defined]

    def test_zero_address(self):
        assert IPAddress.zero().is_zero
        assert not IPAddress("0.0.0.1").is_zero


class TestIPNetwork:
    def test_parses_cidr(self):
        net = IPNetwork("192.168.1.0/24")
        assert net.prefix_len == 24
        assert str(net.address) == "192.168.1.0"

    def test_separate_prefix_argument(self):
        net = IPNetwork("10.0.0.0", 8)
        assert str(net) == "10.0.0.0/8"

    def test_rejects_host_bits_set(self):
        with pytest.raises(AddressError):
            IPNetwork("192.168.1.1/24")

    def test_rejects_double_prefix(self):
        with pytest.raises(AddressError):
            IPNetwork("10.0.0.0/8", 8)

    @pytest.mark.parametrize("bad", [-1, 33])
    def test_rejects_bad_prefix_len(self, bad):
        with pytest.raises(AddressError):
            IPNetwork("10.0.0.0", bad)

    def test_rejects_malformed_prefix(self):
        with pytest.raises(AddressError):
            IPNetwork("10.0.0.0/abc")

    def test_missing_prefix(self):
        with pytest.raises(AddressError):
            IPNetwork("10.0.0.0")

    def test_contains(self):
        net = IPNetwork("10.1.0.0/16")
        assert net.contains("10.1.255.1")
        assert "10.1.0.7" in net
        assert "10.2.0.1" not in net

    def test_zero_prefix_contains_everything(self):
        net = IPNetwork(0, 0)
        assert "255.255.255.255" in net
        assert "0.0.0.0" in net

    def test_slash32_contains_only_itself(self):
        net = IPNetwork("10.0.0.5/32")
        assert "10.0.0.5" in net
        assert "10.0.0.6" not in net

    def test_netmask_and_broadcast(self):
        net = IPNetwork("192.168.4.0/22")
        assert str(net.netmask) == "255.255.252.0"
        assert str(net.broadcast) == "192.168.7.255"

    def test_host_indexing(self):
        net = IPNetwork("10.0.0.0/24")
        assert str(net.host(1)) == "10.0.0.1"
        assert str(net.host(254)) == "10.0.0.254"
        with pytest.raises(AddressError):
            net.host(0)
        with pytest.raises(AddressError):
            net.host(255)  # broadcast

    def test_hosts_iterator(self):
        hosts = [str(h) for h in IPNetwork("10.0.0.0/30").hosts()]
        # /30 covers .0-.3; the iterator skips the network (.0) and
        # broadcast (.3) endpoints per its range(1, n-1) bounds.
        assert hosts == ["10.0.0.1", "10.0.0.2", "10.0.0.3"][:2]

    def test_overlaps(self):
        assert IPNetwork("10.0.0.0/8").overlaps(IPNetwork("10.1.0.0/16"))
        assert IPNetwork("10.1.0.0/16").overlaps(IPNetwork("10.0.0.0/8"))
        assert not IPNetwork("10.0.0.0/16").overlaps(IPNetwork("10.1.0.0/16"))

    def test_equality_and_hash(self):
        assert IPNetwork("10.0.0.0/8") == IPNetwork("10.0.0.0", 8)
        assert IPNetwork("10.0.0.0/8") == "10.0.0.0/8"
        assert hash(IPNetwork("10.0.0.0/8")) == hash(IPNetwork("10.0.0.0", 8))
        assert IPNetwork("10.0.0.0/8") != IPNetwork("10.0.0.0/9")

    def test_immutable(self):
        net = IPNetwork("10.0.0.0/8")
        with pytest.raises(AttributeError):
            net._prefix_len = 9  # type: ignore[attr-defined]
