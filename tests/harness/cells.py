"""Tiny cell functions the harness tests sweep (importable by dotted
path from worker processes)."""

from __future__ import annotations

import time
from typing import Dict


def ok_cell(seed: int, x: int, factor: int = 2) -> Dict[str, object]:
    return {"value": x * factor + seed, "const": 1}


def flaky_cell(seed: int, x: int) -> Dict[str, object]:
    if x == 13:
        raise RuntimeError("unlucky cell")
    return {"value": x}


def slow_cell(seed: int, delay: float) -> Dict[str, object]:
    time.sleep(delay)
    return {"done": 1}


def bad_return_cell(seed: int, x: int):
    return [x]  # not a dict: the runner must flag it, not crash


def polling_cell(seed: int, duration: float) -> Dict[str, object]:
    """Busy-waits ``duration`` seconds, polling the cooperative deadline
    the way the partitioned engine does at its window boundaries."""
    from repro.harness import deadline

    start = time.monotonic()
    while time.monotonic() - start < duration:
        deadline.check()
        time.sleep(0.005)
    return {"done": 1}


def pool_spawning_cell(seed: int, duration: float) -> Dict[str, object]:
    """Runs its work inside a nested worker pool — the shape that made
    SIGALRM timeouts unsound — while polling the cooperative deadline
    in the parent between waits."""
    import multiprocessing
    from repro.harness import deadline

    ctx = multiprocessing.get_context("fork")
    start = time.monotonic()
    while time.monotonic() - start < duration:
        deadline.check()
        child = ctx.Process(target=time.sleep, args=(0.01,))
        child.start()
        child.join()
    return {"done": 1}
