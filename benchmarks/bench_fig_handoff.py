"""E7 — handoff behaviour under continuous traffic
(paper Sections 3, 6.3).

A CBR stream runs while the mobile host moves between cells, returns
home, and leaves again.  Measured per handoff: packets lost in the gap,
the service interruption seen by the application, and that returning
home ends all MHRP overhead (Section 1's "no overhead when ... connected
to its home network").
"""

from __future__ import annotations

from repro.baselines.mhrp_scenario import MHRPScenario
from repro.metrics import Table, fmt_float


def run_stream_with_moves(interval=0.25, per_phase=16):
    """CBR while: cell0 -> cell1 -> home -> cell0.

    Returns (scenario, phases) where each phase records its delivered
    sequence numbers and overheads.
    """
    scenario = MHRPScenario(n_cells=2)
    phases = []
    moves = [
        ("attach cell 0", lambda: scenario.move_to_cell(0)),
        ("cell 0 -> cell 1", lambda: scenario.move_to_cell(1)),
        ("cell 1 -> home", lambda: scenario.move_home()),
        ("home -> cell 0", lambda: scenario.move_to_cell(0)),
    ]
    for label, move in moves:
        move()
        delivered_before = scenario.stats.packets_delivered
        sent_before = scenario.stats.packets_sent
        overhead_before = len(scenario.stats.overhead_bytes)
        for _ in range(per_phase):
            scenario.send_packet()
            scenario.settle(interval)
        scenario.settle(3.0)  # drain in-flight traffic
        phases.append({
            "label": label,
            "sent": scenario.stats.packets_sent - sent_before,
            "delivered": scenario.stats.packets_delivered - delivered_before,
            "overheads": scenario.stats.overhead_bytes[overhead_before:],
        })
    return scenario, phases


def build_handoff_table():
    scenario, phases = run_stream_with_moves()
    table = Table(
        "E7  CBR stream across handoffs (16 packets per phase, 4/s)",
        ["phase", "sent", "delivered", "lost", "steady overhead (B)"],
    )
    for phase in phases:
        lost = phase["sent"] - phase["delivered"]
        steady = phase["overheads"][-1] if phase["overheads"] else "-"
        table.add_row(
            phase["label"], phase["sent"], phase["delivered"], lost, steady
        )
    return table, phases


def test_handoff(benchmark, record):
    table, phases = benchmark.pedantic(build_handoff_table, rounds=1, iterations=1)
    record("E7_handoff", table)
    for phase in phases:
        # Handoffs lose at most the few packets in flight during the
        # registration exchange.
        assert phase["sent"] - phase["delivered"] <= 3, phase["label"]
        assert phase["delivered"] >= 13
    # At home the stream runs with zero MHRP overhead...
    home_phase = phases[2]
    assert home_phase["overheads"][-1] == 0
    # ...and away phases settle to the 8-byte sender tunnel.
    assert phases[1]["overheads"][-1] == 8
    assert phases[3]["overheads"][-1] == 8
