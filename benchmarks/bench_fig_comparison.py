"""E11 — the full Section 7 comparison under one roaming workload.

One workload (12 probes across 2 handoffs) over all six protocols,
reporting every Section 7 currency at once: delivery, measured
overhead, path stretch, control cost, global state, and router
slow-path load.  T1/E1/E4 each measure one column in isolation; this
bench is the side-by-side the paper's comparison section narrates.
"""

from __future__ import annotations

from repro.baselines.columbia import ColumbiaScenario
from repro.baselines.ibm_lsrr import IBMLSRRScenario
from repro.baselines.matsushita import MatsushitaScenario
from repro.baselines.mhrp_scenario import MHRPScenario
from repro.baselines.sony_vip import SonyVIPScenario
from repro.baselines.sunshine_postel import SunshinePostelScenario
from repro.metrics import Table, fmt_float


def slow_path_total(scenario) -> int:
    routers = scenario.topo.all_routers()
    return sum(r.slow_path_packets for r in routers)


def run_workload(scenario, packets_per_stop=4, stops=(0, 1, 0)):
    for stop in stops:
        scenario.move_to_cell(stop)
        scenario.settle()
        if hasattr(scenario, "prime"):
            scenario.prime()
            scenario.settle(3.0)
        for _ in range(packets_per_stop):
            scenario.send_packet()
            scenario.settle(3.0)
    scenario.snapshot_state()
    return scenario.stats


def build_comparison():
    table = Table(
        "E11  Section 7 side-by-side: one roaming workload, six protocols",
        ["protocol", "delivered", "overhead B", "hops",
         "control msgs", "global state", "router slow-path"],
    )
    rows = {}
    for label, cls in [
        ("MHRP", MHRPScenario),
        ("Sunshine-Postel", SunshinePostelScenario),
        ("Columbia", ColumbiaScenario),
        ("Sony-VIP", SonyVIPScenario),
        ("Matsushita", MatsushitaScenario),
        ("IBM-LSRR", IBMLSRRScenario),
    ]:
        scenario = cls(n_cells=3)
        stats = run_workload(scenario)
        slow = slow_path_total(scenario)
        rows[label] = (stats, slow)
        table.add_row(
            label,
            f"{stats.packets_delivered}/{stats.packets_sent}",
            fmt_float(stats.mean_overhead, 1),
            fmt_float(stats.mean_hops, 2),
            stats.control_messages,
            stats.global_state,
            slow,
        )
    return table, rows


def test_section7_comparison(benchmark, record):
    table, rows = benchmark.pedantic(build_comparison, rounds=1, iterations=1)
    record("E11_comparison", table)
    mhrp, _ = rows["MHRP"]
    # Everyone delivers under this benign workload...
    for label, (stats, _) in rows.items():
        assert stats.delivery_ratio == 1.0, label
    # ...but MHRP pairs low overhead with the shortest steady path:
    assert mhrp.mean_overhead <= 12
    for label in ("Columbia", "Sony-VIP", "Matsushita"):
        other, _ = rows[label]
        assert mhrp.mean_overhead < other.mean_overhead or label == "Columbia"
        assert mhrp.mean_hops <= other.mean_hops
    # Only Sunshine-Postel carries global state.
    assert rows["Sunshine-Postel"][0].global_state >= 1
    assert all(
        stats.global_state == 0
        for label, (stats, _) in rows.items()
        if label != "Sunshine-Postel"
    )
    # Only the source-route protocols load the router slow path.
    assert rows["IBM-LSRR"][1] > 0
    assert rows["Sunshine-Postel"][1] > 0
    assert rows["MHRP"][1] == 0
