""":class:`ObsPlane` — the attachable observability instrument.

One object, three attachment points:

- **Simulator** (PR 5 instrument registry): ``sim.attach(ObsPlane())``
  subscribes the plane to the tracer (a bound method, so sessions stay
  forkable) and points ``sim.obs`` at it via the ``"obs"`` instrument
  role.  Hot paths guard with ``obs = sim.obs; if obs is not None:`` —
  the same zero-cost-when-detached discipline as ``sim.telemetry``.
- **Engine driver**: ``EngineDriver(topo, obs=plane)`` calls
  :meth:`consume_event` for every engine event and
  :meth:`time_stage` around its dispatch loop.
- **Live backend**: ``LiveRun(spec, obs=plane)`` does the same over
  real sockets, and additionally feeds the runtime metrics (event-loop
  lag, clock drift, timer-wheel depth, per-endpoint datagram counters)
  into :attr:`metrics`.

The plane owns a :class:`~repro.obs.spans.SpanRecorder` (the causal
DAG) and a :class:`~repro.obs.registry.MetricsRegistry` (runtime
stats); per-event instrument lookups are cached so the attached cost is
one dict hit plus the span bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder, normalized_dag, render_spans


class ObsPlane:
    """Causal span tracing + runtime metrics, attachable anywhere the
    MHRP roles run."""

    #: Simulator attach() points ``sim.obs`` here (see Simulator docs).
    instrument_role = "obs"

    def __init__(
        self,
        max_spans: int = 65536,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.spans = SpanRecorder(max_spans=max_spans)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._event_counters: Dict[str, object] = {}
        self._stage_timers: Dict[Tuple[str, str], object] = {}
        self._sims: list = []

    # ------------------------------------------------------------------
    # Simulator attachment (instrument contract)
    # ------------------------------------------------------------------
    def bind(self, sim, nodes=None) -> None:
        """Instrument contract: subscribe to the simulator's tracer.

        ``nodes`` is accepted for signature parity with the other
        instruments; the span vocabulary arrives via the tracer, so no
        per-node hookup is needed.
        """
        sim.tracer.subscribe(self._on_trace)
        self._sims.append(sim)

    def unbind(self, sim) -> None:
        sim.tracer.unsubscribe(self._on_trace)
        if sim in self._sims:
            self._sims.remove(sim)

    def _on_trace(self, entry) -> None:
        """Tracer listener (bound method: snapshot/fork safe)."""
        self._absorb(entry.time, entry.category, entry.node, entry.detail)

    # ------------------------------------------------------------------
    # Engine attachment (driver / live hooks)
    # ------------------------------------------------------------------
    def consume_event(self, time: float, event) -> None:
        """Engine-backend hook: one
        :class:`~repro.wire.engine.EngineEvent` at ``time``."""
        self._absorb(time, event.category, event.node, event.detail)

    # ------------------------------------------------------------------
    # Shared ingestion
    # ------------------------------------------------------------------
    def _absorb(self, time, category, node, detail) -> None:
        counter = self._event_counters.get(category)
        if counter is None:
            counter = self.metrics.counter(
                "obs_events_total", "events consumed by the obs plane",
                category=category,
            )
            self._event_counters[category] = counter
        counter.inc()
        self.spans.consume(time, category, node, detail)

    # ------------------------------------------------------------------
    # Hot-path stage timing
    # ------------------------------------------------------------------
    def time_stage(self, backend: str, stage: str, seconds: float) -> None:
        """Record one hot-path stage duration (wall seconds).

        Callers guard the surrounding ``perf_counter`` pair with an
        is-``None`` test on the plane itself, so a detached run never
        reads a clock.
        """
        timer = self._stage_timers.get((backend, stage))
        if timer is None:
            timer = self.metrics.histogram(
                "stage_seconds", "hot-path stage wall time",
                backend=backend, stage=stage,
            )
            self._stage_timers[(backend, stage)] = timer
        timer.record(seconds)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def dag(self, categories=None):
        """The normalized cross-backend span DAG (see
        :func:`repro.obs.spans.normalized_dag`)."""
        if categories is None:
            return normalized_dag(self.spans)
        return normalized_dag(self.spans, categories=categories)

    def summary(self) -> Dict[str, object]:
        return {
            "spans": self.spans.summary(),
            "metrics": self.metrics.snapshot(),
        }

    def render(self, title: str = "observability plane") -> str:
        spans = self.spans.summary()
        lines = [
            title,
            f"  spans: {spans['spans']} in {spans['traces']} traces "
            f"({spans['merged']} retransmits collapsed, "
            f"{spans['evicted_spans']} evicted)",
        ]
        for category, n in spans["by_category"].items():
            lines.append(f"    {category:16s} {n}")
        snapshot = self.metrics.snapshot()
        if snapshot["histograms"]:
            lines.append("  stage timing (us):")
            for key, summary in sorted(snapshot["histograms"].items()):
                if not key.startswith("stage_seconds"):
                    continue
                lines.append(
                    f"    {key[len('stage_seconds'):]:40s} "
                    f"n={summary['n']:<7d} p50={summary['p50'] * 1e6:8.1f} "
                    f"p95={summary['p95'] * 1e6:8.1f} "
                    f"max={summary['max'] * 1e6:8.1f}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObsPlane {len(self.spans)} spans, {len(self.metrics)} series>"
