"""MHRP running on the comparison star topology.

Not a baseline — this is the paper's protocol packaged behind the same
:class:`~repro.baselines.interface.Scenario` interface as the five
competitors, so the benches run one workload over all six.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.scenario_base import UDPProbeScenario
from repro.baselines.startopo import StarTopology
from repro.core.agent_router import AgentRouter
from repro.core.mobile_host import MobileHost
from repro.netsim.simulator import Simulator
from repro.scenario.world import build_world


class MHRPScenario(UDPProbeScenario):
    """The paper's protocol on the star topology."""

    protocol_name = "MHRP"

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        n_cells: int = 3,
        seed: int = 7,
        sender_caches: bool = True,
        **agent_kwargs,
    ) -> None:
        sim = sim or Simulator(seed=seed)
        super().__init__(sim, n_cells)
        world = build_world(
            sim,
            {
                "kind": "star",
                "n_cells": n_cells,
                "mhrp": True,
                "sender_caches": sender_caches,
                **agent_kwargs,
            },
        )
        self.world = world
        self.topo: StarTopology = world.topo
        self.home_roles: AgentRouter = world.home_roles
        self.cell_roles: List[AgentRouter] = world.cell_roles
        self.mobile: MobileHost = world.mobile_hosts[0]
        self._init_probe(
            world.correspondents[0], self.mobile, self.topo.mobile_home_address
        )
        self._control_tracker_base = 0
        sim.tracer.subscribe(self._count_control)

    # ------------------------------------------------------------------
    def _count_control(self, entry) -> None:
        # Registrations and location updates are MHRP's control plane.
        if entry.category in ("mhrp.register", "mhrp.update") and entry.detail.get(
            "event"
        ) in ("send", "sent"):
            self.note_control()

    # ------------------------------------------------------------------
    def move_to_cell(self, index: int) -> None:
        self.mobile.attach(self.topo.cells[index])

    def move_home(self) -> None:
        self.mobile.attach_home(self.topo.home_lan)

    # ------------------------------------------------------------------
    def snapshot_state(self) -> None:
        """Record per-node and global protocol state into the stats."""
        sizes = [len(self.home_roles.home_agent.database)]
        for roles in self.cell_roles:
            sizes.append(len(roles.foreign_agent.visitors))
            sizes.append(len(roles.cache_agent.cache))
        self.stats.max_node_state = max(
            self.stats.max_node_state, max(sizes) if sizes else 0
        )
        self.stats.global_state = 0  # MHRP has no global structure
