"""`python -m repro sweep` end to end (on the quick grids)."""

import pytest

from repro.harness.cli import main as sweep_main
from repro import __main__ as repro_main


class TestSweepCLI:
    def test_lists_experiments_without_args(self, capsys):
        assert sweep_main([]) == 0
        out = capsys.readouterr().out
        assert "loop-contraction" in out and "scalability" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert sweep_main(["no-such-sweep"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_sweep_runs_and_caches(self, tmp_path, capsys):
        args = ["loop-contraction", "--quick", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert sweep_main(args) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 cached" in first
        assert sweep_main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 cached (100% hit rate)" in second
        # The aggregated tables are identical run to run.
        assert first.split("\n\n")[0] == second.split("\n\n")[0]

    def test_baseline_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        base = ["scalability-state", "--quick"]
        assert sweep_main(base + ["--check-baseline"]) == 2  # nothing stored yet
        assert sweep_main(base + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert sweep_main(base + ["--check-baseline"]) == 0
        assert "baseline check passed" in capsys.readouterr().out


class TestModuleEntry:
    def test_usage_lists_sweep(self, capsys):
        assert repro_main.main([]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "quickstart" in out

    def test_help_matches_usage(self, capsys):
        assert repro_main.main(["--help"]) == 0
        assert "sweep" in capsys.readouterr().out

    def test_unknown_command_exits_2_via_stderr(self, capsys):
        assert repro_main.main(["frobnicate"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "unknown command 'frobnicate'" in captured.err
        assert "sweep" in captured.err  # usage follows on the same stream

    def test_sweep_dispatches(self, capsys):
        assert repro_main.main(["sweep"]) == 0
        assert "Registered experiments" in capsys.readouterr().out
