#!/usr/bin/env python3
"""Campus roaming: many mobile hosts wandering a campus under load.

The workload the paper's introduction motivates: a population of
notebooks roaming between wireless cells while stationary correspondents
keep traffic flowing to their *permanent* addresses.  Reports delivery,
routing overhead, and the home agent's workload.

Run with::

    python examples/campus_roaming.py [n_hosts] [n_cells] [seconds]
"""

from __future__ import annotations

import sys

from repro import Simulator, build_campus
from repro.metrics import Table, fmt_float
from repro.workloads import CBRStream, RandomWaypointMobility


def main(n_hosts: int = 8, n_cells: int = 4, duration: float = 120.0) -> None:
    topo = build_campus(
        n_cells=n_cells,
        n_mobile_hosts=n_hosts,
        n_correspondents=1,
        sim=Simulator(seed=2026),
        advertise=True,
    )
    sim = topo.sim
    correspondent = topo.correspondents[0]

    print(f"Campus: {n_cells} wireless cells, {n_hosts} mobile hosts, "
          f"running {duration:.0f} s of simulated time")

    # Every host roams randomly and receives a CBR stream on its
    # permanent home address the whole time.
    streams = []
    movers = []
    for index, host in enumerate(topo.mobile_hosts):
        host.attach(topo.cells[index % n_cells])
        mover = RandomWaypointMobility(
            host, topo.cells, mean_dwell=15.0, start_at=5.0 + index
        )
        mover.start()
        movers.append(mover)
        stream = CBRStream(
            sender=correspondent,
            receiver=host,
            dst_address=host.home_address,
            interval=1.0,
            port=40000 + index,
            start_at=10.0,
        )
        stream.start()
        streams.append(stream)

    sim.tracer.restrict({"mhrp.tunnel", "mhrp.update", "mhrp.register"})
    sim.run(until=duration)

    table = Table(
        "Per-host results",
        ["host", "moves", "sent", "delivered", "delivery %"],
    )
    total_sent = total_delivered = 0
    for host, mover, stream in zip(topo.mobile_hosts, movers, streams):
        total_sent += stream.sent
        total_delivered += stream.log.count
        table.add_row(
            host.name, mover.moves_made, stream.sent, stream.log.count,
            fmt_float(100 * stream.delivery_ratio, 1),
        )
    table.print()

    home_agent = topo.home_roles.home_agent
    print(f"\nAggregate delivery: {total_delivered}/{total_sent} "
          f"({100 * total_delivered / max(total_sent, 1):.1f}%) across "
          f"{sum(m.moves_made for m in movers)} handoffs")
    print(f"Home agent: {len(home_agent.database)} hosts in database, "
          f"{home_agent.packets_intercepted} packets intercepted, "
          f"{home_agent.packets_retunneled} re-tunneled")
    tunnels = sim.tracer.count("mhrp.tunnel")
    updates = sim.tracer.count("mhrp.update")
    print(f"Protocol activity: {tunnels} tunnel events, "
          f"{updates} location-update events")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]] + [float(a) for a in sys.argv[3:4]]
    main(*args)  # type: ignore[arg-type]
