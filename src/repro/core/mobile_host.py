"""The mobile host (paper Sections 1–3, 6).

A mobile host is an ordinary :class:`~repro.ip.host.Host` plus a thin
network-level module — the paper requires "no changes to mobile hosts
above the network level", and indeed the transport stacks and
applications on this class are exactly the ones stationary hosts use.

The host always uses its permanent *home* address.  Movement is modelled
as re-attaching its interface to a different medium; the host then hears
an agent advertisement and runs the Section 3 notification sequence:

1. notify the **new foreign agent** (connect),
2. notify the **home agent** (register the new foreign agent — or the
   zero address when the host is back home),
3. notify the **old foreign agent** (disconnect, carrying the new
   foreign agent's address so it may keep a forwarding pointer).

Returning home additionally broadcasts a gratuitous ARP to reclaim the
home address from the home agent (Section 2).

Two optional behaviours from the paper are implemented:

- **own foreign agent** (Section 2): when a foreign network has no
  foreign agent, the host can use a temporary address there purely as a
  tunnel endpoint while applications keep using the home address;
- **sender-side caching**: the host runs a cache agent for its own
  traffic to other mobile hosts.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.core.cache_agent import CacheAgent, UpdateRateLimiter, send_location_update
from repro.core.discovery import AgentAdvertisementInfo, AgentDiscovery
from repro.core.encapsulation import MHRPPayload, decapsulate
from repro.core.home_agent import DISCONNECTED_ADDRESS
from repro.core.registration import (
    FA_CONNECT,
    FA_DISCONNECT,
    HA_REGISTER,
    RegistrationMessage,
    ReliableRegistrar,
    next_seq,
)
from repro.errors import ProtocolError
from repro.ip.address import IPAddress, IPNetwork
from repro.ip.host import Host
from repro.ip.packet import IPPacket
from repro.ip.protocols import MHRP as PROTO_MHRP
from repro.link.interface import NetworkInterface
from repro.link.medium import Medium
from repro.netsim.simulator import Simulator

# Connection states (canonical definitions live with the shared logic).
from repro.wire.logic import (  # noqa: F401  (re-exported)
    AT_HOME,
    AWAY,
    AWAY_SELF_AGENT,
    DISCONNECTED,
    mh_reported_location,
    stale_chain,
)


class MobileHost(Host):
    """A host that may move between networks at any time.

    Args:
        sim: owning simulator.
        name: node name.
        home_address: the permanent address (used everywhere, always).
        home_network: the home IP network.
        home_agent: the home agent's address on the home network.
        home_gateway: the default router to use while at home; defaults
            to the home agent's address (the common co-located case) —
            pass the real router when the home agent is a separate
            support host (Section 2).
        use_sender_cache: run a cache agent for this host's own sends.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        home_address: IPAddress | str,
        home_network: IPNetwork | str,
        home_agent: IPAddress | str,
        home_gateway: IPAddress | str | None = None,
        use_sender_cache: bool = True,
    ) -> None:
        super().__init__(sim, name)
        self.home_address = IPAddress(home_address)
        self.home_network = (
            home_network if isinstance(home_network, IPNetwork) else IPNetwork(home_network)
        )
        self.home_agent = IPAddress(home_agent)
        self.home_gateway = IPAddress(home_gateway if home_gateway is not None else home_agent)
        self.iface: NetworkInterface = self.add_interface(
            "wifi0", self.home_address, self.home_network
        )
        self.state = DISCONNECTED
        self.current_foreign_agent: Optional[IPAddress] = None
        self.temp_address: Optional[IPAddress] = None
        self._fa_boot_ids: dict[IPAddress, int] = {}
        self._registering_with: Optional[IPAddress] = None
        self.limiter = UpdateRateLimiter()
        self.registrar = ReliableRegistrar(self)
        self.discovery = AgentDiscovery(self, self._on_agent_heard)
        self.cache_agent: Optional[CacheAgent] = (
            CacheAgent(self) if use_sender_cache else None
        )
        from repro.core.icmp_handling import TunnelErrorHandler

        self.error_handler = TunnelErrorHandler.attach(self, cache_agent=self.cache_agent)
        self.register_protocol(PROTO_MHRP, self._on_mhrp_packet)
        # Advertisement-lifetime watchdog (Section 3's implicit-move
        # detection turned inward): while away, if the serving foreign
        # agent falls silent past its advertised lifetime, solicit; past
        # twice the lifetime, consider the connection gone.
        self._last_fa_heard = 0.0
        self._fa_lifetime = 0.0
        self._watchdog = sim.timer(self._check_agent_silence, label=f"mh-watchdog-{name}")
        # Stats for the benches.
        self.moves = 0
        self.registrations = 0
        self.silence_disconnects = 0

    # ------------------------------------------------------------------
    # Movement API (driven by mobility models or directly by tests)
    # ------------------------------------------------------------------
    @property
    def at_home(self) -> bool:
        return self.state == AT_HOME

    def attach(self, medium: Medium, solicit: bool = True) -> None:
        """Physically attach to a network (implicitly leaving the old one).

        Registration happens when an agent advertisement is heard; pass
        ``solicit=True`` (the default) to ask for one immediately rather
        than waiting out the advertisement period (Section 3 allows both).
        """
        self.moves += 1
        telemetry = self.sim.telemetry
        if telemetry is not None:
            telemetry.mh_moved(self.sim.now, self.name)
        self.iface.attach_to(medium)
        if solicit:
            self.discovery.solicit("wifi0")

    def attach_home(self, medium: Medium, solicit: bool = True) -> None:
        """Attach directly to the home network."""
        self.attach(medium, solicit=solicit)

    def disconnect(self) -> None:
        """Planned disconnection (Section 3): notify the home agent first,
        then the old foreign agent, then detach."""
        old_fa = self.current_foreign_agent
        if self.state != AT_HOME:
            self._register_with_home_agent(DISCONNECTED_ADDRESS)
        if old_fa is not None:
            self._notify_old_foreign_agent(old_fa, new_agent=IPAddress.zero())
        self.current_foreign_agent = None
        self.temp_address = None
        self.state = DISCONNECTED
        self._watchdog.cancel()
        self.iface.detach()

    def connect_as_own_foreign_agent(
        self,
        medium: Medium,
        temp_address: IPAddress | str,
        gateway: IPAddress | str,
    ) -> None:
        """Attach to a foreign network with no foreign agent (Section 2).

        ``temp_address`` is used *only* as the tunnel endpoint registered
        with the home agent; applications continue to see the home
        address.  ``gateway`` is the foreign network's ordinary router.
        """
        old_fa = self.current_foreign_agent
        self.moves += 1
        telemetry = self.sim.telemetry
        if telemetry is not None:
            telemetry.mh_moved(self.sim.now, self.name)
        self.iface.attach_to(medium)
        temp = IPAddress(temp_address)
        self.iface.alias_addresses = {temp}
        self.temp_address = temp
        self.state = AWAY_SELF_AGENT
        self.current_foreign_agent = temp
        self._set_away_routing(IPAddress(gateway))
        self._register_with_home_agent(temp)
        if old_fa is not None and old_fa != temp:
            self._notify_old_foreign_agent(old_fa, new_agent=temp)

    # ------------------------------------------------------------------
    # Routing while away vs at home
    # ------------------------------------------------------------------
    def _set_away_routing(self, gateway: IPAddress) -> None:
        """Route everything via the foreign agent (or foreign gateway).

        The connected route for the home network must be withdrawn: the
        home prefix is *not* on-link while visiting a foreign network,
        and leaving the route in place would ARP for home-network
        addresses (the home agent included) on the foreign medium.
        """
        self.routing_table.remove(self.home_network)
        self.set_gateway(gateway)

    def _set_home_routing(self) -> None:
        self.routing_table.add_connected(self.home_network, "wifi0")
        self.set_gateway(self.home_gateway)

    # ------------------------------------------------------------------
    # Agent discovery reactions (Section 3)
    # ------------------------------------------------------------------
    def _on_agent_heard(self, info: AgentAdvertisementInfo) -> None:
        if info.agent == self.home_agent:
            # Hearing our own home agent on-link means we are on the home
            # network, whichever role bits this particular advertisement
            # carries (a combined router advertises both roles and may
            # emit them in separate messages).
            self._heard_home_agent(info)
            return
        if info.is_foreign_agent:
            self._heard_foreign_agent(info)

    def _heard_home_agent(self, info: AgentAdvertisementInfo) -> None:
        """We are (back) on the home network."""
        if self.state == AT_HOME:
            return
        old_fa = self.current_foreign_agent
        self.state = AT_HOME
        self._watchdog.cancel()
        self.current_foreign_agent = None
        self.temp_address = None
        self.iface.alias_addresses = set()
        self._set_home_routing()
        # Reclaim the home address on the home LAN (Section 2): other
        # hosts' ARP caches still bind it to the home agent.
        self.arp["wifi0"].announce(self.home_address)
        # "The mobile host registers a special foreign agent address of
        # zero with its home agent when reconnecting to its home network."
        self._register_with_home_agent(IPAddress.zero())
        if old_fa is not None:
            # Section 6.3: the old foreign agent deletes the visitor and
            # does NOT create a forwarding pointer (zero new agent).
            self._notify_old_foreign_agent(old_fa, new_agent=IPAddress.zero())

    def _heard_foreign_agent(self, info: AgentAdvertisementInfo) -> None:
        agent = info.agent
        previous_boot = self._fa_boot_ids.get(agent)
        self._fa_boot_ids[agent] = info.boot_id
        if agent == self.current_foreign_agent and self.state == AWAY:
            self._last_fa_heard = self.sim.now
            self._fa_lifetime = info.lifetime
            if previous_boot is not None and previous_boot != info.boot_id:
                # Our agent rebooted and lost its visitor list
                # (Section 5.2): re-register proactively.
                self._connect_to_foreign_agent(agent, rebind_only=True)
            return
        if agent == self._registering_with:
            return  # registration already in flight
        self._connect_to_foreign_agent(agent)

    # ------------------------------------------------------------------
    # Registration sequence (Section 3 ordering)
    # ------------------------------------------------------------------
    def _connect_to_foreign_agent(self, agent: IPAddress, rebind_only: bool = False) -> None:
        old_fa = self.current_foreign_agent if not rebind_only else None
        was_home = self.state == AT_HOME
        self._registering_with = agent
        # Route our own traffic via the new agent immediately; the
        # registration itself (and everything after it) needs this.
        self._set_away_routing(agent)
        message = RegistrationMessage(
            kind=FA_CONNECT,
            seq=next_seq(),
            mobile_host=self.home_address,
            agent=agent,
            hw_value=self.iface.hw_address.value,
        )
        registration_started = self.sim.now
        self.registrar.send(
            agent,
            message,
            on_ack=partial(
                self._fa_connect_acked, agent, old_fa, was_home, registration_started
            ),
            on_fail=self._fa_connect_failed,
        )

    def _fa_connect_acked(
        self,
        agent: IPAddress,
        old_fa: Optional[IPAddress],
        was_home: bool,
        registration_started: float,
        ack: RegistrationMessage,
    ) -> None:
        self._registering_with = None
        if not ack.ok:
            return
        self.state = AWAY
        self.current_foreign_agent = agent
        self.temp_address = None
        self.iface.alias_addresses = set()
        self.registrations += 1
        telemetry = self.sim.telemetry
        if telemetry is not None:
            telemetry.registration_complete(
                self.sim.now, self.name, agent,
                self.sim.now - registration_started,
            )
        self._last_fa_heard = self.sim.now
        if self._fa_lifetime <= 0:
            from repro.core.discovery import DEFAULT_ADVERT_LIFETIME

            self._fa_lifetime = DEFAULT_ADVERT_LIFETIME
        self._watchdog.start(self._fa_lifetime)
        # Step 2: the home agent.
        self._register_with_home_agent(agent)
        # Step 3: the old foreign agent (unless we came from home or
        # already disconnected explicitly).
        if old_fa is not None and old_fa != agent and not was_home:
            self._notify_old_foreign_agent(old_fa, new_agent=agent)

    def _fa_connect_failed(self) -> None:
        self._registering_with = None

    def _register_with_home_agent(self, foreign_agent: IPAddress) -> None:
        message = RegistrationMessage(
            kind=HA_REGISTER,
            seq=next_seq(),
            mobile_host=self.home_address,
            agent=foreign_agent,
        )
        self.registrar.send(self.home_agent, message)

    def _notify_old_foreign_agent(self, old_fa: IPAddress, new_agent: IPAddress) -> None:
        message = RegistrationMessage(
            kind=FA_DISCONNECT,
            seq=next_seq(),
            mobile_host=self.home_address,
            agent=new_agent,
        )
        self.registrar.send(old_fa, message)

    # ------------------------------------------------------------------
    # Foreign agent silence watchdog
    # ------------------------------------------------------------------
    def _check_agent_silence(self) -> None:
        if self.state != AWAY or self._fa_lifetime <= 0:
            return
        silent_for = self.sim.now - self._last_fa_heard
        if silent_for >= 2 * self._fa_lifetime:
            # The agent is gone (crashed, or we drifted out of range
            # without hearing anyone new): the connection is dead.
            self.sim.trace(
                "mhrp.register", self.name, event="mh-silence-disconnect",
                agent=str(self.current_foreign_agent),
            )
            self.silence_disconnects += 1
            self.current_foreign_agent = None
            self.state = DISCONNECTED
            return
        if silent_for >= self._fa_lifetime:
            # Past the advertised lifetime: ask before giving up.
            self.discovery.solicit("wifi0")
        self._watchdog.start(self._fa_lifetime / 2)

    # ------------------------------------------------------------------
    # MHRP packets addressed to this host
    # ------------------------------------------------------------------
    def _on_mhrp_packet(self, packet: IPPacket, iface: Optional[NetworkInterface]) -> None:
        """A tunneled packet reached the host itself.

        Two legitimate cases: the host is at home and a stale chain
        re-tunneled the packet to the home address (Section 6.3), or the
        host is its own foreign agent and this is a normal tunnel
        delivery (Section 2).  Either way the host updates the stale
        caches recorded in the packet and delivers the payload to itself.
        """
        payload = packet.payload
        if not isinstance(payload, MHRPPayload):
            return
        header = payload.header
        if header.mobile_host != self.home_address:
            return  # tunneled to us by mistake; nothing useful to do
        # Section 6.3: while at home (or disconnected) the reported
        # location is zero — "indicating that it is currently connected
        # to its home network and that S's cache entry ... should be
        # deleted".
        location = mh_reported_location(
            self.state, self.temp_address, self.current_foreign_agent
        )
        stale = stale_chain(header.previous_sources, packet.src)
        for address in stale:
            send_location_update(
                self, address, self.home_address, location, self.limiter
            )
        telemetry = self.sim.telemetry
        if telemetry is not None:
            telemetry.tunnel_delivery(
                self.sim.now, self.name, str(header.mobile_host),
                len(header.previous_sources),
            )
        decapsulate(packet)
        self.sim.trace(
            "mhrp.tunnel",
            self.name,
            event="mh-self-deliver",
            uid=packet.uid,
        )
        self.packet_received(packet, iface)

    def __repr__(self) -> str:
        where = {
            AT_HOME: "home",
            AWAY: f"away via {self.current_foreign_agent}",
            AWAY_SELF_AGENT: f"away self-agent {self.temp_address}",
            DISCONNECTED: "disconnected",
        }[self.state]
        return f"<MobileHost {self.name} {self.home_address} ({where})>"


class StationaryCorrespondent(Host):
    """A stationary host that *does* implement MHRP sender-side caching.

    The paper expects most Internet hosts to eventually run a cache agent
    for their own traffic (Section 2); this class is that deployment.
    Plain :class:`~repro.ip.host.Host` remains the never-modified host.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.cache_agent = CacheAgent(self)
        from repro.core.icmp_handling import TunnelErrorHandler

        self.error_handler = TunnelErrorHandler.attach(self, cache_agent=self.cache_agent)
