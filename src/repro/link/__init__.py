"""Link layer: hardware addresses, frames, interfaces, and media.

Media model broadcast domains the way the paper's mechanisms need them:
ARP only resolves within one medium, home agents intercept packets by
poisoning ARP caches on their home LAN, and mobile hosts attach to and
detach from wireless cells as they move.
"""

from repro.link.frame import ETHERTYPE_ARP, ETHERTYPE_IP, Frame, HWAddress
from repro.link.interface import NetworkInterface
from repro.link.medium import LAN, Medium, PointToPointLink, WirelessCell

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IP",
    "Frame",
    "HWAddress",
    "LAN",
    "Medium",
    "NetworkInterface",
    "PointToPointLink",
    "WirelessCell",
]
