"""Transport-layer segment formats (byte-accurate)."""

from __future__ import annotations

from dataclasses import dataclass

UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20

# TCP flag bits.
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_ACK = 0x10


@dataclass(frozen=True)
class UDPDatagram:
    """A UDP datagram (RFC 768): 8-byte header plus data.

    ``data`` is normally raw bytes; structured control payloads (e.g.
    RIP updates) may ride as objects implementing ``byte_length`` /
    ``to_bytes`` and are serialized transparently.
    """

    src_port: int
    dst_port: int
    data: object = b""

    @property
    def _data_length(self) -> int:
        inner = getattr(self.data, "byte_length", None)
        return inner if inner is not None else len(self.data)  # type: ignore[arg-type]

    @property
    def byte_length(self) -> int:
        return UDP_HEADER_LEN + self._data_length

    def to_bytes(self) -> bytes:
        header = bytearray(UDP_HEADER_LEN)
        header[0:2] = self.src_port.to_bytes(2, "big")
        header[2:4] = self.dst_port.to_bytes(2, "big")
        header[4:6] = self.byte_length.to_bytes(2, "big")
        body = (
            self.data.to_bytes() if hasattr(self.data, "to_bytes") and not isinstance(self.data, bytes)
            else self.data
        )
        return bytes(header) + body  # type: ignore[operator]

    def __repr__(self) -> str:
        return f"<UDP {self.src_port}->{self.dst_port} len={self._data_length}>"


@dataclass(frozen=True)
class TCPSegment:
    """A TCP segment (RFC 793) with the fields our simplified TCP uses."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    data: bytes = b""

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def seq_span(self) -> int:
        """Sequence space consumed: data bytes plus SYN/FIN phantom bytes."""
        return len(self.data) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def byte_length(self) -> int:
        return TCP_HEADER_LEN + len(self.data)

    def to_bytes(self) -> bytes:
        header = bytearray(TCP_HEADER_LEN)
        header[0:2] = self.src_port.to_bytes(2, "big")
        header[2:4] = self.dst_port.to_bytes(2, "big")
        header[4:8] = (self.seq & 0xFFFFFFFF).to_bytes(4, "big")
        header[8:12] = (self.ack & 0xFFFFFFFF).to_bytes(4, "big")
        header[12] = (TCP_HEADER_LEN // 4) << 4
        header[13] = self.flags
        header[14:16] = self.window.to_bytes(2, "big")
        return bytes(header) + self.data

    def __repr__(self) -> str:
        names = []
        if self.syn:
            names.append("SYN")
        if self.ack_flag:
            names.append("ACK")
        if self.fin:
            names.append("FIN")
        if self.rst:
            names.append("RST")
        flag_text = "|".join(names) or "-"
        return (
            f"<TCP {self.src_port}->{self.dst_port} {flag_text} "
            f"seq={self.seq} ack={self.ack} len={len(self.data)}>"
        )
