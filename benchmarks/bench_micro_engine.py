"""Micro-benchmarks of the substrate itself.

Not a paper experiment — these keep the simulator fast enough that the
protocol experiments stay cheap, and give contributors a regression
baseline: event throughput, packet serialization, the encapsulation
transforms, and routing-table lookups.
"""

from __future__ import annotations

from repro.core.encapsulation import decapsulate, encapsulate, retunnel
from repro.ip.address import IPAddress, IPNetwork
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.routing import RoutingTable
from repro.netsim import Simulator


def test_event_throughput(benchmark):
    """Schedule-and-run cost of the event engine (50k events)."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run_until_idle(max_events=60_000)
        return count[0]

    assert benchmark(run) == 50_000


def test_packet_serialization(benchmark):
    """Byte-accurate serialization of a tunneled packet."""
    packet = IPPacket(
        src="10.0.0.1", dst="10.2.0.10", protocol=6,
        payload=RawPayload(b"x" * 512),
    )
    encapsulate(packet, IPAddress("10.4.0.254"), agent_address=IPAddress("10.2.0.254"))

    def run():
        return packet.to_bytes()

    wire = benchmark(run)
    assert len(wire) == packet.total_length


def test_tunnel_transform_cycle(benchmark):
    """encapsulate -> retunnel -> decapsulate round trip."""

    def run():
        packet = IPPacket(
            src="10.0.0.1", dst="10.2.0.10", protocol=17,
            payload=RawPayload(b"payload"),
        )
        encapsulate(packet, IPAddress("10.4.0.254"),
                    agent_address=IPAddress("10.2.0.254"))
        retunnel(packet, IPAddress("10.5.0.254"),
                 my_address=IPAddress("10.4.0.254"))
        decapsulate(packet)
        return packet

    packet = benchmark(run)
    assert packet.dst == "10.2.0.10"


def test_routing_lookup(benchmark):
    """Longest-prefix match over a 200-prefix table."""
    table = RoutingTable()
    for i in range(200):
        table.add_next_hop(
            IPNetwork((10 << 24) | (i << 16), 16),
            IPAddress("192.168.0.1"), "eth0",
        )
    table.add_host_route(IPAddress("10.50.0.99"), IPAddress("192.168.0.2"), "eth0")
    probe = IPAddress("10.50.0.99")

    def run():
        return table.lookup(probe)

    route = benchmark(run)
    assert route.is_host_route
