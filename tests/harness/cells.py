"""Tiny cell functions the harness tests sweep (importable by dotted
path from worker processes)."""

from __future__ import annotations

import time
from typing import Dict


def ok_cell(seed: int, x: int, factor: int = 2) -> Dict[str, object]:
    return {"value": x * factor + seed, "const": 1}


def flaky_cell(seed: int, x: int) -> Dict[str, object]:
    if x == 13:
        raise RuntimeError("unlucky cell")
    return {"value": x}


def slow_cell(seed: int, delay: float) -> Dict[str, object]:
    time.sleep(delay)
    return {"done": 1}


def bad_return_cell(seed: int, x: int):
    return [x]  # not a dict: the runner must flag it, not crash
