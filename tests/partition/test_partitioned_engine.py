"""The conservative-synchronization engine: byte-identity and liveness.

The load-bearing property is that a *parallel* partitioned run (one OS
process per partition) is indistinguishable from the *serial* reference
(``workers=0``, same protocol in one process): identical per-partition
trace digests, health summaries, and final mobile-host state.  Both
pinned corpus scenarios check it, plus the zero-lookahead degenerate
case where the engine must fall back to a global barrier instead of
deadlocking.
"""

import pytest

from repro.partition import (
    derive_partition_seed,
    partition_faults_spec,
    partition_handoff_spec,
    run_partitioned,
)


def _zero_delay(spec):
    spec.hierarchy = dict(spec.hierarchy, hop_delay=0.0)
    return spec


class TestByteIdentity:
    @pytest.mark.parametrize(
        "spec_fn", [partition_handoff_spec, partition_faults_spec],
        ids=["handoff", "faults"],
    )
    def test_parallel_matches_serial(self, spec_fn):
        serial = run_partitioned(spec_fn(), workers=0)
        parallel = run_partitioned(spec_fn(), workers=spec_fn().partitions)
        assert parallel.fingerprint() == serial.fingerprint()
        assert parallel.events == serial.events
        assert serial.workers == 0 and parallel.workers == 4
        assert parallel.mode == "window"

    def test_serial_rerun_is_deterministic(self):
        first = run_partitioned(partition_handoff_spec(), workers=0)
        second = run_partitioned(partition_handoff_spec(), workers=0)
        assert first.fingerprint() == second.fingerprint()


class TestZeroDelayBarrier:
    def test_zero_lookahead_forces_barrier_and_terminates(self):
        serial = run_partitioned(_zero_delay(partition_handoff_spec()), workers=0)
        assert serial.lookahead == 0.0
        assert serial.mode == "barrier"
        # No deadlock, and the whole schedule still executed: every
        # partition ran its horizon out.
        assert all(r["now"] == pytest.approx(12.0) for r in serial.results)

    def test_zero_lookahead_still_byte_identical(self):
        serial = run_partitioned(_zero_delay(partition_handoff_spec()), workers=0)
        parallel = run_partitioned(_zero_delay(partition_handoff_spec()), workers=4)
        assert parallel.mode == "barrier"
        assert parallel.fingerprint() == serial.fingerprint()


class TestWindowProtocol:
    def test_lookahead_and_exchange_counters(self):
        result = run_partitioned(partition_handoff_spec(), workers=0)
        # depth-2 binary tree, hop_delay=0.01: nearest siblings are two
        # tree hops apart.
        assert result.lookahead == pytest.approx(0.02)
        assert result.windows > 0
        assert result.exports_delivered > 0
        # Cross-partition flow + migrations + pings all crossed borders.
        sent = sum(r["counters"]["packets_exported"] for r in result.results)
        assert sent > 0

    def test_merged_health_is_coherent(self):
        result = run_partitioned(partition_handoff_spec(), workers=0)
        merged = result.health_merged()
        per_partition = [r["health"] for r in result.results]
        for key in ("moves", "registrations", "packets_delivered"):
            assert merged[key] == sum(h[key] for h in per_partition)
        assert merged["moves"] > 0 and merged["packets_delivered"] > 0


class TestSeedDerivation:
    def test_partition_seeds_are_distinct_and_stable(self):
        seeds = [derive_partition_seed(42, i) for i in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [derive_partition_seed(42, i) for i in range(16)]
        assert derive_partition_seed(43, 0) != derive_partition_seed(42, 0)
