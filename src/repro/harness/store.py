"""Content-addressed result cache.

One JSON-lines file per experiment under ``benchmarks/results/cache/``,
each line a completed cell result keyed by the cell's content hash.
Re-running a sweep loads the file and only executes cells whose hash is
absent — dirty cells after a grid/seed/version change, or cells that
failed last time (failures are never cached).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional

#: Environment override for the cache location (used by CI and tests).
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"


def _default_cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    # src/repro/harness/store.py -> repository root, in the editable layout.
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "results" / "cache"
    return Path.cwd() / ".repro-sweep-cache"


class ResultStore:
    """JSON-lines store of cell results, keyed by content hash."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else _default_cache_dir()

    def path_for(self, experiment: str) -> Path:
        return self.root / f"{experiment}.jsonl"

    def load(self, experiment: str) -> Dict[str, dict]:
        """All cached records for an experiment (hash -> record).

        Corrupt or hash-less lines are skipped, not fatal: the worst
        outcome of a damaged cache is re-running some cells.
        """
        path = self.path_for(experiment)
        records: Dict[str, dict] = {}
        if not path.exists():
            return records
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                key = record.get("hash")
                if isinstance(key, str):
                    records[key] = record
        return records

    def save(self, experiment: str, records: Mapping[str, dict]) -> Path:
        """Atomically rewrite an experiment's cache file (lines sorted by
        hash, so the file is reproducible regardless of execution order).

        Key order *within* a record is preserved, not sorted: the metric
        order a cell function returned must survive the cache round-trip
        so cached sweeps render byte-identical tables to fresh ones.
        """
        path = self.path_for(experiment)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{experiment}.")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for key in sorted(records):
                    handle.write(json.dumps(records[key]) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, experiment: str) -> None:
        """Drop an experiment's cached results."""
        try:
            self.path_for(experiment).unlink()
        except FileNotFoundError:
            pass


def default_store() -> ResultStore:
    """The repository-local store under ``benchmarks/results/cache/``."""
    return ResultStore()
