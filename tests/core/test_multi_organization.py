"""Integration: two organizations, each with its own home agent.

Section 2: "Each organization manages its own home agent (or agents) to
support the routing of IP packets to the mobile hosts owned by that
organization" — and a single router can be home agent for its own
network *and* foreign agent for visitors (the combined deployment).

Topology: two organization networks joined by a backbone; each border
router runs home agent + foreign agent + cache agent.  Each org owns one
mobile host; the hosts swap networks and talk to each other.
"""

import pytest

from repro.core.agent_router import make_agent_router
from repro.core.mobile_host import MobileHost
from repro.ip import IPNetwork, Router
from repro.link import LAN
from repro.netsim import Simulator


@pytest.fixture
def two_orgs():
    sim = Simulator(seed=21)
    bb_net = IPNetwork("10.0.0.0/24")
    backbone = LAN(sim, "backbone")
    net_a = IPNetwork("10.1.0.0/24")
    lan_a = LAN(sim, "orgA")
    net_b = IPNetwork("10.2.0.0/24")
    lan_b = LAN(sim, "orgB")

    ra = Router(sim, "RA")
    ra.add_interface("bb", bb_net.host(1), bb_net, medium=backbone)
    ra.add_interface("lan", net_a.host(254), net_a, medium=lan_a)
    rb = Router(sim, "RB")
    rb.add_interface("bb", bb_net.host(2), bb_net, medium=backbone)
    rb.add_interface("lan", net_b.host(254), net_b, medium=lan_b)
    ra.routing_table.add_next_hop(net_b, bb_net.host(2), "bb")
    rb.routing_table.add_next_hop(net_a, bb_net.host(1), "bb")

    # Each border router is home agent AND foreign agent on its LAN.
    roles_a = make_agent_router(ra, home_iface="lan", foreign_iface="lan")
    roles_b = make_agent_router(rb, home_iface="lan", foreign_iface="lan")

    ma = MobileHost(sim, "MA", home_address=net_a.host(10),
                    home_network=net_a, home_agent=net_a.host(254))
    mb = MobileHost(sim, "MB", home_address=net_b.host(10),
                    home_network=net_b, home_agent=net_b.host(254))
    return dict(
        sim=sim, lan_a=lan_a, lan_b=lan_b, ra=ra, rb=rb,
        roles_a=roles_a, roles_b=roles_b, ma=ma, mb=mb,
        net_a=net_a, net_b=net_b,
    )


def ping_ok(env, src, dst_address, timeout=8.0):
    sim = env["sim"]
    replies = []
    handler = lambda p, m: replies.append(m)  # noqa: E731
    src.on_icmp(0, handler)
    src.ping(dst_address)
    sim.run(until=sim.now + timeout)
    src._icmp_listeners[0].remove(handler)
    return bool(replies)


class TestCombinedAgentRouters:
    def test_advertisement_carries_both_roles(self, two_orgs):
        """A combined router advertises as home agent and foreign agent
        at once; visitors and returning owners both recognize it."""
        env = two_orgs
        env["ma"].attach_home(env["lan_a"])
        env["sim"].run(until=5.0)
        assert env["ma"].at_home

    def test_hosts_swap_networks(self, two_orgs):
        env = two_orgs
        sim = env["sim"]
        env["ma"].attach(env["lan_b"])   # MA visits org B
        env["mb"].attach(env["lan_a"])   # MB visits org A
        sim.run(until=8.0)
        # Each host registered with the *other* org's router as FA...
        assert env["roles_b"].foreign_agent.is_serving(env["ma"].home_address)
        assert env["roles_a"].foreign_agent.is_serving(env["mb"].home_address)
        # ...and with its own org's router as HA.
        db_a = env["roles_a"].home_agent.database
        db_b = env["roles_b"].home_agent.database
        assert db_a.foreign_agent_of(env["ma"].home_address) == env["net_b"].host(254)
        assert db_b.foreign_agent_of(env["mb"].home_address) == env["net_a"].host(254)

    def test_swapped_hosts_reach_each_other(self, two_orgs):
        env = two_orgs
        env["ma"].attach(env["lan_b"])
        env["mb"].attach(env["lan_a"])
        env["sim"].run(until=8.0)
        assert ping_ok(env, env["ma"], env["mb"].home_address)
        assert ping_ok(env, env["mb"], env["ma"].home_address)

    def test_visitor_on_home_lan_of_peer(self, two_orgs):
        """MA visiting org B pings MB who is AT HOME on that same LAN:
        pure local traffic via the combined router."""
        env = two_orgs
        sim = env["sim"]
        env["ma"].attach(env["lan_b"])
        env["mb"].attach_home(env["lan_b"])
        sim.run(until=8.0)
        assert ping_ok(env, env["ma"], env["mb"].home_address)
        assert ping_ok(env, env["mb"], env["ma"].home_address)

    def test_home_agents_are_independent(self, two_orgs):
        """Org A's agent refuses registrations for org B's hosts."""
        env = two_orgs
        sim = env["sim"]
        from repro.core.registration import (
            HA_REGISTER,
            RegistrationMessage,
            ReliableRegistrar,
            next_seq,
        )

        env["mb"].attach(env["lan_a"])
        sim.run(until=5.0)
        acks = []
        message = RegistrationMessage(
            kind=HA_REGISTER, seq=next_seq(),
            mobile_host=env["mb"].home_address,       # org B's host...
            agent=env["net_a"].host(254),
        )
        ReliableRegistrar(env["mb"]).send(
            env["net_a"].host(254), message, on_ack=acks.append  # ...to org A's HA
        )
        sim.run(until=sim.now + 5.0)
        assert acks and not acks[0].ok
        assert env["mb"].home_address not in env["roles_a"].home_agent.database

    def test_both_roam_back_home(self, two_orgs):
        env = two_orgs
        sim = env["sim"]
        env["ma"].attach(env["lan_b"])
        env["mb"].attach(env["lan_a"])
        sim.run(until=8.0)
        env["ma"].attach_home(env["lan_a"])
        env["mb"].attach_home(env["lan_b"])
        sim.run(until=16.0)
        assert env["ma"].at_home and env["mb"].at_home
        assert not env["roles_b"].foreign_agent.is_serving(env["ma"].home_address)
        assert not env["roles_a"].foreign_agent.is_serving(env["mb"].home_address)
        assert ping_ok(env, env["ma"], env["mb"].home_address)
