"""One partition of a hierarchical world, ready to run in windows.

A :class:`PartitionRuntime` is the per-partition analogue of
:class:`~repro.scenario.session.Session`: it instantiates *one campus*
of a partitioned :class:`~repro.scenario.spec.ScenarioSpec` (schema v2,
``partitions``/``hierarchy`` set) into its own
:class:`~repro.netsim.simulator.Simulator`, installs the slice of the
spec's schedule this partition owns, and exposes the window/exchange
surface the engine in :mod:`repro.partition.engine` drives:

- :meth:`run_window` — execute events up to a synchronization barrier
  (:meth:`~repro.netsim.simulator.Simulator.run_before`);
- :meth:`drain_outbox` — cross-partition events produced while running
  (pickled packets, host migrations, forwarded moves, load-model
  updates), each stamped with its arrival time and an export sequence
  number so the engine can order deliveries deterministically;
- :meth:`inject` — deliveries from other partitions, scheduled onto the
  local queue at their arrival times.

Everything is deterministic per partition: the simulator seed, the load
model seed and every installed schedule derive from ``(spec.seed,
partition index)``, and the process-global ID counters are reset at
build — the serial orchestrator additionally scopes them per partition
so one process running all partitions interleaved produces exactly what
isolated worker processes produce.

Host migration (the PR 5 ``state_dict`` contract as wire format): the
home partition owns a host's schedule.  A move targeting a remote
campus exports a migration record — identity plus
:meth:`~repro.wire.roles.MobileHostRole.state_dict` — and deactivates
the local object; the destination materializes (or reuses) a *visitor*
:class:`~repro.core.mobile_host.MobileHost`, loads the state, and
attaches it to the target cell, which replays the paper's Section 3
move sequence (register with the new foreign agent, notify the home
agent and the previous foreign agent) across real gateway traffic.
Moves arriving while the host is away are chain-forwarded to the last
known location, like the paper's forwarding pointers.
"""

from __future__ import annotations

import hashlib
import pickle
from functools import partial
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.ip.address import IPAddress, IPNetwork
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import CONVERGENCE_PROBE as PROBE_PROTOCOL
from repro.netsim.simulator import Simulator
from repro.partition.gateway import BorderGateway
from repro.scenario.session import reset_global_counters
from repro.scenario.spec import PROBE_GAP, ScenarioSpec
from repro.wire.logic import DISCONNECTED
from repro.workloads.hierarchy import (
    HierarchyModel,
    RegistrationLoadModel,
    campus_address_base,
    campus_name_prefix,
)

#: Export payload kinds crossing partition boundaries.
EXPORT_KINDS = ("packet", "migrate", "control", "load")


def derive_partition_seed(seed: int, index: int) -> int:
    """Deterministic per-partition simulator seed."""
    return (seed * 1_000_003 + 7919 * (index + 1)) % (2**31)


def _discard_probe(packet, iface) -> None:
    """Convergence probes signal by delivery; the payload is discarded."""


class _FlowSender:
    """The sender half of a cross-partition CBR flow.

    Pacing and payload framing match
    :class:`~repro.workloads.traffic.CBRStream` exactly; only the
    receiver-side binding is split off (the receiver may live in — or
    migrate to — another partition)."""

    def __init__(
        self,
        sim,
        sender,
        dst_address: IPAddress,
        interval: float,
        port: int,
        start_at: float,
        count: int,
        payload_size: int = 64,
    ) -> None:
        self.sim = sim
        self.dst_address = dst_address
        self.interval = interval
        self.port = port
        self.start_at = start_at
        self.count = count
        self.payload_size = max(payload_size, 8)
        self.sent = 0
        self._sock = sender.udp.bind()

    def start(self) -> None:
        self.sim.schedule_at(self.start_at, self._tick, label="cbr-send")

    def _tick(self) -> None:
        if self.count is not None and self.sent >= self.count:
            return
        seq = self.sent
        self.sent += 1
        payload = seq.to_bytes(8, "big") + b"\x00" * (self.payload_size - 8)
        self._sock.send_to(payload, self.dst_address, self.port)
        if self.count is None or self.sent < self.count:
            self.sim.schedule(self.interval, self._tick, label="cbr-send")


class _FlowSink:
    """The receiver half: a counting UDP sink bound on a mobile host."""

    def __init__(self, mh, port: int) -> None:
        self.received = 0
        sock = mh.udp.bind(port)
        sock.on_receive = self._on_receive

    def _on_receive(self, data: bytes, src, src_port: int) -> None:
        self.received += 1


class PartitionRuntime:
    """One campus partition: simulator, world slice, owned schedule."""

    def __init__(
        self,
        spec: ScenarioSpec,
        model: Optional[HierarchyModel] = None,
        index: int = 0,
    ) -> None:
        from repro.workloads.topology import build_campus

        reset_global_counters()
        self.spec = spec
        self.model = model or HierarchyModel.from_spec(spec)
        self.index = index
        if not 0 <= index < self.model.n_campuses:
            raise ConfigurationError(
                f"partition {index} outside 0..{self.model.n_campuses - 1}"
            )
        self.sim = Simulator(seed=derive_partition_seed(spec.seed, index))
        if spec.trace_limit is not None:
            self.sim.tracer.limit(spec.trace_limit)

        params = dict(spec.topology)
        kind = params.pop("kind", "hierarchy")
        if kind not in ("hierarchy", "campus"):
            raise ConfigurationError(
                f"partitioned runs need a hierarchy/campus topology, got {kind!r}"
            )
        load_params = params.pop("load", None)
        self.hosts_per_campus = int(params.get("n_mobile_hosts", 0))
        self.cells_per_campus = int(params.get("n_cells", 1))
        self.corr_per_campus = int(params.get("n_correspondents", 1))

        base = campus_address_base(index)
        self.topo = build_campus(
            sim=self.sim,
            address_base=base,
            name_prefix=campus_name_prefix(index),
            **params,
        )
        backbone_net = IPNetwork(f"{base}.0.0.0/16")
        self.gateway = BorderGateway(
            self, index, self.topo.backbone, backbone_net, self.model.n_campuses
        )
        for other in range(self.model.n_campuses):
            if other == index:
                continue
            self.topo.home_router.routing_table.add_next_hop(
                IPNetwork(f"{campus_address_base(other)}.0.0.0/8"),
                backbone_net.host(250),
                "bb",
            )

        for mh in self.topo.mobile_hosts:
            mh.register_protocol(PROBE_PROTOCOL, _discard_probe)

        self._fault_nodes = {"HR": self.topo.home_router}
        for i, router in enumerate(self.topo.cell_routers):
            self._fault_nodes[f"FR{i}"] = router

        self._nodes = [
            self.topo.home_router,
            self.gateway.router,
            *self.topo.cell_routers,
            *self.topo.correspondents,
            *self.topo.mobile_hosts,
        ]
        for entry in spec.instruments:
            self._attach_instrument(entry)

        # -- cross-partition bookkeeping -------------------------------
        self._outbox: List[Tuple[int, float, str, bytes, int]] = []
        self._export_seq = 0
        #: Hosts (global indices) whose authoritative object lives here.
        self._here: Set[int] = set()
        #: Last known destination of hosts that migrated away from here.
        self._departed: Dict[int, int] = {}
        #: Global host index -> local MobileHost object (home or visitor).
        self._materialized: Dict[int, object] = {}
        self._sinks: Dict[Tuple[int, int], _FlowSink] = {}
        self._flows: List[object] = []
        self.counters: Dict[str, int] = {
            "packets_exported": 0,
            "events_injected": 0,
            "migrations_out": 0,
            "migrations_in": 0,
            "moves_forwarded": 0,
            "moves_unroutable": 0,
        }

        hpc = self.hosts_per_campus
        for local in range(hpc):
            h = index * hpc + local
            self._here.add(h)
            self._materialized[h] = self.topo.mobile_hosts[local]

        self.load: Optional[RegistrationLoadModel] = None
        if load_params is not None:
            load_params = dict(load_params)
            self.load = RegistrationLoadModel(
                self.sim,
                self.model,
                campus=index,
                n_hosts=int(load_params.pop("n_hosts", 1000)),
                moves_per_host=int(load_params.pop("moves_per_host", 2)),
                horizon=float(load_params.pop("horizon", spec.horizon)),
                start=float(load_params.pop("start", 0.1)),
                seed=derive_partition_seed(spec.seed, index) ^ 0x5EED,
                locality=float(load_params.pop("locality", 0.8)),
                exporter=self._export_load,
            )
            self.load.install()

        self._install_schedule()

    # ------------------------------------------------------------------
    # Build helpers
    # ------------------------------------------------------------------
    def _attach_instrument(self, entry: Dict[str, object]) -> None:
        params = dict(entry)
        kind = params.pop("kind", None)
        if kind == "health":
            from repro.telemetry import ProtocolHealth

            self.sim.attach(ProtocolHealth(**params), nodes=self._nodes)
        elif kind == "auditor":
            from repro.invariants import InvariantAuditor

            self.sim.attach(InvariantAuditor(**params))
        elif kind == "obs":
            from repro.obs import ObsPlane

            self.sim.attach(ObsPlane(**params))
        else:
            raise ValueError(f"unknown instrument kind {kind!r}")

    def home_campus(self, host: int) -> int:
        return host // self.hosts_per_campus

    def host_home_address(self, host: int) -> IPAddress:
        """A global host's permanent address, from the address plan alone
        (no object needed — the host may live in another partition)."""
        base = campus_address_base(self.home_campus(host))
        return IPNetwork(f"{base}.1.0.0/16").host(1 + host % self.hosts_per_campus)

    def _install_schedule(self) -> None:
        for kind, entry in self.spec.entries():
            getattr(self, f"_install_{kind}")(entry)

    def _install_move(self, entry: dict) -> None:
        host = int(entry["host"])
        if self.home_campus(host) != self.index:
            return
        self.sim.schedule_at(
            entry["t"],
            partial(self._apply_move, host, int(entry["to"])),
            label="scenario-move",
        )

    def _install_fault(self, entry: dict) -> None:
        if int(entry.get("campus", 0)) != self.index:
            return
        self.sim.schedule_at(
            entry["t"],
            partial(self._apply_fault, entry["node"], entry["kind"]),
            label="scenario-fault",
        )

    def _install_flow(self, entry: dict) -> None:
        host = int(entry["host"])
        port = int(entry["port"])
        if self.home_campus(host) == self.index:
            self._bind_sink(host, port)
        src = int(entry["src"])
        if src // self.corr_per_campus != self.index:
            return
        sender = self.topo.correspondents[src % self.corr_per_campus]
        flow = _FlowSender(
            self.sim,
            sender,
            dst_address=self.host_home_address(host),
            interval=float(entry["interval"]),
            port=port,
            start_at=float(entry["start"]),
            count=int(entry["count"]),
        )
        flow.start()
        self._flows.append(flow)

    def _install_probe(self, entry: dict) -> None:
        if int(entry["src"]) // self.corr_per_campus != self.index:
            return
        self.sim.schedule_at(
            entry["t"],
            partial(self._send_probe, int(entry["src"]), int(entry["host"]), False),
            label="scenario-probe-warm",
        )
        self.sim.schedule_at(
            entry["t"] + PROBE_GAP,
            partial(self._send_probe, int(entry["src"]), int(entry["host"]), True),
            label="scenario-probe-audited",
        )

    def _install_ping(self, entry: dict) -> None:
        if int(entry["src"]) // self.corr_per_campus != self.index:
            return
        self.sim.schedule_at(
            entry["t"],
            partial(self._send_ping, int(entry["src"]), int(entry["host"])),
            label="scenario-ping",
        )

    def _bind_sink(self, host: int, port: int) -> None:
        mh = self._materialized.get(host)
        if mh is None or (host, port) in self._sinks:
            return
        self._sinks[(host, port)] = _FlowSink(mh, port)

    # ------------------------------------------------------------------
    # Schedule actions
    # ------------------------------------------------------------------
    def _apply_move(self, host: int, to: int) -> None:
        if host not in self._here:
            # Not ours any more: chain-forward to the last known location.
            dst = self._departed.get(host)
            if dst is None or dst == self.index:
                self.counters["moves_unroutable"] += 1
                return
            self.counters["moves_forwarded"] += 1
            self.export(
                dst,
                self.sim.now + self.model.delay(self.index, dst),
                "control",
                ("move", host, to),
            )
            return
        mh = self._materialized[host]
        if to == -2:
            if mh.iface.attached:
                mh.disconnect()
            return
        target = self.home_campus(host) if to == -1 else to // self.cells_per_campus
        if target != self.index:
            self._migrate(host, target, to)
        elif to == -1:
            mh.attach_home(self.topo.home_lan)
        else:
            mh.attach(self.topo.cells[to % self.cells_per_campus])

    def _apply_fault(self, name: str, kind: str) -> None:
        node = self._fault_nodes.get(name)
        if node is None:
            return
        if kind == "crash":
            node.crash()
        else:
            node.reboot()

    def _send_probe(self, src: int, host: int, watched: bool) -> None:
        sender = self.topo.correspondents[src % self.corr_per_campus]
        packet = IPPacket(
            src=sender.primary_address,
            dst=self.host_home_address(host),
            protocol=PROBE_PROTOCOL,
            payload=RawPayload(b"convergence-probe"),
        )
        if watched and self.sim.auditor is not None:
            self.sim.auditor.expect_no_retunnels([packet.uid])
        sender.send(packet)

    def _send_ping(self, src: int, host: int) -> None:
        sender = self.topo.correspondents[src % self.corr_per_campus]
        sender.ping(self.host_home_address(host))

    # ------------------------------------------------------------------
    # Migration (the state_dict wire format)
    # ------------------------------------------------------------------
    def _migrate(self, host: int, target: int, to: int) -> None:
        mh = self._materialized[host]
        record = {"host": host, "to": to, "role": mh.state_dict()}
        self._deactivate(mh)
        self._here.discard(host)
        self._departed[host] = target
        self.counters["migrations_out"] += 1
        self.export(
            target,
            self.sim.now + self.model.delay(self.index, target),
            "migrate",
            record,
        )

    def _deactivate(self, mh) -> None:
        """Silence a local copy whose host just migrated away: pending
        timers are cancelled and the interface detached *without* running
        the disconnect protocol — the protocol-visible move happens at
        the destination when the loaded state re-attaches."""
        mh.port.cancel_timer(mh.WATCHDOG_KEY)
        for seq in list(mh.registrar._pending):
            mh.port.cancel_timer(f"reg-retry-{seq}")
        mh.registrar._pending.clear()
        mh._registering_with = None
        if mh.iface.attached:
            mh.iface.detach()
        mh.state = DISCONNECTED
        mh.current_foreign_agent = None
        mh.temp_address = None

    def _make_visitor(self, host: int):
        from repro.core.mobile_host import MobileHost

        home = self.home_campus(host)
        base = campus_address_base(home)
        home_prefix = IPNetwork(f"{base}.1.0.0/16")
        local = host % self.hosts_per_campus
        mh = MobileHost(
            self.sim,
            f"{campus_name_prefix(home)}M{local}",
            home_address=home_prefix.host(1 + local),
            home_network=home_prefix,
            home_agent=home_prefix.host(65534),
        )
        mh.register_protocol(PROBE_PROTOCOL, _discard_probe)
        self._materialized[host] = mh
        for entry in self.spec.flows:
            if int(entry["host"]) == host:
                self._bind_sink(host, int(entry["port"]))
        return mh

    def _arrive_migration(self, record: dict) -> None:
        host = int(record["host"])
        to = int(record["to"])
        mh = self._materialized.get(host)
        if mh is None:
            mh = self._make_visitor(host)
        mh.load_state(record["role"])
        self._here.add(host)
        self._departed.pop(host, None)
        self.counters["migrations_in"] += 1
        if to == -1 and self.home_campus(host) == self.index:
            mh.attach_home(self.topo.home_lan)
        else:
            mh.attach(self.topo.cells[to % self.cells_per_campus])

    # ------------------------------------------------------------------
    # Cross-partition exchange surface
    # ------------------------------------------------------------------
    def export(self, dst: int, arrival: float, kind: str, obj) -> None:
        """Queue ``obj`` for partition ``dst`` at time ``arrival``."""
        self._export_seq += 1
        self._outbox.append((dst, arrival, kind, pickle.dumps(obj), self._export_seq))

    def export_packet(self, dst: int, packet) -> None:
        self.counters["packets_exported"] += 1
        self.export(
            dst, self.sim.now + self.model.delay(self.index, dst), "packet", packet
        )

    def _export_load(self, dst: int, arrival: float, record: dict) -> None:
        self.export(dst, arrival, "load", record)

    def drain_outbox(self) -> List[Tuple[int, float, str, bytes, int]]:
        out, self._outbox = self._outbox, []
        return out

    def inject(self, deliveries) -> None:
        """Schedule deliveries ``(arrival, kind, blob)`` from other
        partitions, in the (already engine-sorted) order given."""
        for arrival, kind, blob in deliveries:
            obj = pickle.loads(blob)
            if kind == "packet":
                action = partial(self.gateway.inject, obj)
            elif kind == "migrate":
                action = partial(self._arrive_migration, obj)
            elif kind == "control":
                action = partial(self._apply_move, obj[1], obj[2])
            elif kind == "load":
                if self.load is None:
                    continue
                action = partial(self.load.remote_update, obj)
            else:
                raise SimulationError(f"unknown cross-partition kind {kind!r}")
            self.counters["events_injected"] += 1
            self.sim.schedule_at(arrival, action, label=f"partition-{kind}")

    # ------------------------------------------------------------------
    # Execution surface
    # ------------------------------------------------------------------
    def next_time(self) -> Optional[float]:
        return self.sim.queue.peek_time()

    def run_window(self, barrier: float, inclusive: bool = False) -> int:
        return self.sim.run_before(barrier, inclusive=inclusive)

    def finish(self, horizon: float) -> int:
        return self.sim.run(until=horizon)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def trace_fingerprint(self) -> str:
        digest = hashlib.sha256()
        for entry in self.sim.tracer:
            digest.update(
                f"{entry.time!r}|{entry.category}|{entry.node}|".encode()
            )
            for key, value in entry.detail.items():
                digest.update(f"{key}={value!r};".encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def mobile_state(self) -> Dict[str, dict]:
        return {
            str(host): {
                "here": host in self._here,
                "state": self._materialized[host].state_dict(),
            }
            for host in sorted(self._materialized)
        }

    def result(self) -> dict:
        telemetry = self.sim.telemetry
        return {
            "partition": self.index,
            "events": self.sim.events_processed,
            "now": self.sim.now,
            "trace_entries": len(self.sim.tracer.entries),
            "trace_fingerprint": self.trace_fingerprint(),
            "health": telemetry.summary() if telemetry is not None else None,
            "counters": dict(self.counters),
            "flow_received": sum(s.received for s in self._sinks.values()),
            "load": self.load.summary() if self.load is not None else None,
            "mobile_state": self.mobile_state(),
        }
