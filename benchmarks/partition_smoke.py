#!/usr/bin/env python
"""CI smoke check: partitioned (N=4 worker processes) byte-identity.

Runs both pinned corpus scenarios serially (``workers=0``, the
reference) and in parallel (one OS process per partition) and fails if
any fingerprint component — per-partition trace digests, health
summaries, final mobile-host state — differs.  This is the hard
promise of the conservative-synchronization engine: process parallelism
is an implementation detail, never an observable one.

Usage::

    PYTHONPATH=src python benchmarks/partition_smoke.py
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.partition import partition_corpus_specs, run_partitioned

    failures = 0
    for spec_factory in partition_corpus_specs():
        name = spec_factory.name
        serial = run_partitioned(spec_factory, workers=0)
        # Fresh spec for the parallel leg: runs must not share schedule
        # list objects.
        parallel_spec = next(
            s for s in partition_corpus_specs() if s.name == name
        )
        parallel = run_partitioned(
            parallel_spec, workers=parallel_spec.partitions
        )
        serial_fp = serial.fingerprint()
        parallel_fp = parallel.fingerprint()
        if serial_fp == parallel_fp:
            print(
                f"OK   {name}: {parallel.events} events, "
                f"{parallel.partitions} partitions ({parallel.mode} mode, "
                f"{parallel.windows} windows, "
                f"{parallel.exports_delivered} cross-partition events) — "
                f"parallel byte-identical to serial"
            )
            continue
        failures += 1
        print(f"FAIL {name}: parallel diverged from serial", file=sys.stderr)
        for component in ("trace", "health", "mobile_state"):
            if serial_fp[component] != parallel_fp[component]:
                print(
                    f"  {component}: serial={serial_fp[component]!r} "
                    f"parallel={parallel_fp[component]!r}",
                    file=sys.stderr,
                )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
