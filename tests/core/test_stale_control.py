"""Pinned regression tests for the stale-control-message bug.

The fuzzer's cache-convergence probes flushed this out: a mobile host's
``fa-disconnect`` for move *k* can be kept alive by the reliable
registrar's retransmissions while the old agent is down, and arrive
*after* the ``fa-connect`` of move *k+1* (or, at the home agent, an old
``ha-register`` after a newer one).  Naively processing the delayed
message de-registers a perfectly fresh visitor — worse, the bogus
departure stamp then suppresses the Section 5.2 recovery for a whole
departure-grace window — or re-points the home agent's tunnels at a
previous foreign agent.  :class:`StaleControlFilter` rejects any control
message strictly older than the newest already processed per host.
"""

from unittest import mock

import pytest

from repro.core.registration import (
    FA_CONNECT,
    FA_DISCONNECT,
    HA_REGISTER,
    RegistrationMessage,
    StaleControlFilter,
    next_seq,
)
from repro.ip.address import IPAddress
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import UDP

MH = IPAddress("10.2.0.10")
OTHER = IPAddress("10.3.0.20")


def message(seq, kind=FA_CONNECT, mobile_host=MH, **kw):
    return RegistrationMessage(kind=kind, seq=seq, mobile_host=mobile_host, **kw)


class TestStaleControlFilter:
    def test_first_message_is_fresh(self):
        assert not StaleControlFilter().is_stale(message(5))

    def test_older_sequence_is_stale(self):
        f = StaleControlFilter()
        assert not f.is_stale(message(5))
        assert f.is_stale(message(3, kind=FA_DISCONNECT))

    def test_equal_sequence_is_a_retransmission_not_stale(self):
        f = StaleControlFilter()
        assert not f.is_stale(message(5))
        assert not f.is_stale(message(5))

    def test_high_water_is_per_host(self):
        f = StaleControlFilter()
        assert not f.is_stale(message(9, mobile_host=MH))
        assert not f.is_stale(message(2, mobile_host=OTHER))
        assert f.is_stale(message(8, mobile_host=MH))

    def test_reset_forgets_everything(self):
        f = StaleControlFilter()
        assert not f.is_stale(message(9))
        f.reset()
        assert not f.is_stale(message(1))


def delayed(target, kind, seq, **kw):
    """Hand a crafted control message straight to the agent's handler,
    as if a delayed retransmission had just been demultiplexed.  The
    sequence counter starts at 1, so ``seq=0`` is strictly older than
    any message a host can really have sent."""
    msg = RegistrationMessage(kind=kind, seq=seq, mobile_host=MH, **kw)
    packet = IPPacket(src=MH, dst=target.address, protocol=UDP,
                      payload=RawPayload(b""))
    handler = {
        FA_CONNECT: getattr(target, "_on_connect", None),
        FA_DISCONNECT: getattr(target, "_on_disconnect", None),
        HA_REGISTER: getattr(target, "_on_register", None),
    }[kind]
    handler(packet, msg)
    return msg


class TestForeignAgentStaleHandling:
    def test_delayed_disconnect_does_not_deregister_fresh_visitor(
        self, figure1_m_at_r4
    ):
        topo = figure1_m_at_r4
        fa = topo.r4_roles.foreign_agent
        assert topo.m.home_address in fa.visitors
        delayed(fa, FA_DISCONNECT, seq=0)  # older than the real connect
        assert topo.m.home_address in fa.visitors
        # ...and no bogus departure stamp to suppress Section 5.2 recovery.
        assert topo.m.home_address not in fa.recent_departures

    def test_stale_message_is_negatively_acked_and_traced(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        fa = topo.r4_roles.foreign_agent
        acks = []
        with mock.patch.object(
            fa._dispatcher, "send_ack",
            side_effect=lambda *a, **kw: acks.append(kw),
        ):
            delayed(fa, FA_DISCONNECT, seq=0)
        assert acks and acks[-1].get("ok") is False
        stale = [
            e for e in topo.sim.tracer.select("mhrp.register")
            if e.detail.get("event") == "stale-ignored"
        ]
        assert len(stale) == 1

    def test_delayed_connect_does_not_resurrect_visitor(self, figure1_m_at_r4):
        """After the host moves on (fa-disconnect with a newer seq), a
        delayed fa-connect from an *earlier* move must not re-add it."""
        topo = figure1_m_at_r4
        fa = topo.r4_roles.foreign_agent
        topo.m.attach(topo.net_e)  # the real departure, newer seq
        topo.sim.run(until=topo.sim.now + 3.0)
        assert topo.m.home_address not in fa.visitors
        delayed(fa, FA_CONNECT, seq=0, agent=fa.address)
        assert topo.m.home_address not in fa.visitors

    def test_reboot_resets_the_filter(self, figure1_m_at_r4):
        """The sequence memory is RAM-resident: after a crash/reboot the
        agent must accept whatever seq the recovery produces."""
        topo = figure1_m_at_r4
        fa = topo.r4_roles.foreign_agent
        router = topo.r4
        router.crash()
        router.reboot()
        assert fa.stale_filter._high_water == {}

    def test_without_the_filter_the_bug_reproduces(self, figure1_m_at_r4):
        """Re-introduce the seed behaviour (no staleness check) and the
        delayed disconnect wrongly de-registers the fresh visitor — the
        failure mode the filter pins."""
        topo = figure1_m_at_r4
        fa = topo.r4_roles.foreign_agent
        with mock.patch.object(
            StaleControlFilter, "is_stale", lambda self, m: False
        ):
            delayed(fa, FA_DISCONNECT, seq=0)
        assert topo.m.home_address not in fa.visitors  # the bug
        assert topo.m.home_address in fa.recent_departures  # and its sting


class TestHomeAgentStaleHandling:
    def test_delayed_register_does_not_revert_binding(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        ha = topo.r2_roles.home_agent
        assert ha.database.foreign_agent_of(topo.m.home_address) == topo.fa4_address
        msg = RegistrationMessage(
            kind=HA_REGISTER, seq=0, mobile_host=topo.m.home_address,
            agent=topo.fa5_address,
        )
        packet = IPPacket(src=topo.m.home_address, dst=ha.address,
                          protocol=UDP, payload=RawPayload(b""))
        ha._on_register(packet, msg)
        # The stale registration was ignored: still bound to FA4.
        assert ha.database.foreign_agent_of(topo.m.home_address) == topo.fa4_address

    def test_fresh_register_still_updates_binding(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        ha = topo.r2_roles.home_agent
        msg = RegistrationMessage(
            kind=HA_REGISTER, seq=next_seq(), mobile_host=topo.m.home_address,
            agent=topo.fa5_address,
        )
        packet = IPPacket(src=topo.m.home_address, dst=ha.address,
                          protocol=UDP, payload=RawPayload(b""))
        ha._on_register(packet, msg)
        assert ha.database.foreign_agent_of(topo.m.home_address) == topo.fa5_address

    def test_reboot_resets_the_filter(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        ha = topo.r2_roles.home_agent
        assert ha.stale_filter._high_water  # primed by the registration
        topo.r2.crash()
        topo.r2.reboot()
        assert ha.stale_filter._high_water == {}


class TestCountedDropTerminals:
    """The other fuzzer find: three home-agent discard paths traced a
    drop but never told the dataplane, so the packets vanished from the
    counters (and tripped packet conservation).  Each is now routed
    through ``dataplane.drop`` with a named reason."""

    def test_disconnected_host_drop_is_counted(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        topo.m.disconnect()
        topo.sim.run(until=topo.sim.now + 3.0)
        before = topo.r2.dataplane.counters.dropped.get("mh-disconnected", 0)
        topo.s.ping(topo.m.home_address)
        topo.sim.run(until=topo.sim.now + 4.0)
        assert topo.r2.dataplane.counters.dropped.get("mh-disconnected", 0) > before

    def test_home_agent_loop_dissolution_drop_is_counted(self, figure1):
        """A loop that runs through the home agent itself: the packet is
        dropped there, and the drop must be attributed."""
        topo = figure1
        topo.m.attach(topo.net_d)
        topo.sim.run(until=5.0)
        from repro.core.encapsulation import encapsulate

        packet = IPPacket(
            src=topo.net_a_prefix.host(1), dst=topo.m.home_address,
            protocol=UDP, payload=RawPayload(b"x"),
        )
        # Forge a tunnel-to-home whose list already names the home
        # agent itself (and not the current foreign agent, so neither
        # the Section 5.2 recovery nor a clean re-tunnel applies): the
        # home agent detects the loop through itself.
        encapsulate(packet, topo.m.home_address, agent_address=topo.fa5_address)
        packet.payload.header.previous_sources.append(topo.home_agent_address)
        topo.s.send(packet)
        topo.sim.run(until=topo.sim.now + 4.0)
        assert topo.r2.dataplane.counters.dropped.get("mhrp-loop-dissolved", 0) >= 1

    def test_malformed_mhrp_drop_is_counted(self, figure1_m_at_r4):
        """A packet claiming protocol MHRP without an MHRP payload is
        discarded by the foreign agent — through the dataplane."""
        from repro.ip.protocols import MHRP

        topo = figure1_m_at_r4
        packet = IPPacket(
            src=topo.net_a_prefix.host(1), dst=topo.fa4_address,
            protocol=MHRP, payload=RawPayload(b"garbage"),
        )
        topo.s.send(packet)
        topo.sim.run(until=topo.sim.now + 4.0)
        assert topo.r4.dataplane.counters.dropped.get("malformed-mhrp", 0) >= 1
