"""SpanRecorder: causal linkage rules, retransmit collapse, bounded
memory, and the normalized cross-backend DAG."""

from repro.obs import SpanRecorder, normalized_dag
from repro.obs.spans import render_spans


def _reg_send(rec, t, node, kind, attempt=0, to="R2"):
    return rec.consume(t, "mhrp.register", node, {
        "event": "send", "kind": kind, "to": to, "attempt": attempt,
    })


class TestTunnelChains:
    def test_uid_links_spans_across_nodes(self):
        rec = SpanRecorder()
        a = rec.consume(1.0, "mhrp.tunnel", "S", {
            "event": "sender-encapsulate", "uid": 9,
        })
        b = rec.consume(1.1, "mhrp.tunnel", "R2", {
            "event": "home-intercept", "uid": 9,
        })
        c = rec.consume(1.2, "mhrp.tunnel", "R4", {
            "event": "fa-deliver", "uid": 9,
        })
        assert a.parent_id is None
        assert b.parent_id == a.span_id and b.trace_id == a.trace_id
        assert c.parent_id == b.span_id

    def test_different_uids_are_different_traces(self):
        rec = SpanRecorder()
        a = rec.consume(1.0, "mhrp.tunnel", "S", {
            "event": "sender-encapsulate", "uid": 1,
        })
        b = rec.consume(1.0, "mhrp.tunnel", "S", {
            "event": "sender-encapsulate", "uid": 2,
        })
        assert a.trace_id != b.trace_id

    def test_same_node_same_label_merges(self):
        rec = SpanRecorder()
        rec.consume(1.0, "mhrp.tunnel", "R4", {
            "event": "fa-retunnel", "uid": 3, "mobile_host": "M",
            "target": "R5", "going_home": False,
        })
        again = rec.consume(1.1, "mhrp.tunnel", "R4", {
            "event": "fa-retunnel", "uid": 3, "mobile_host": "M",
            "target": "R5", "going_home": False,
        })
        assert again.count == 2
        assert rec.merged == 1
        assert len(rec) == 1

    def test_loop_dissolve_joins_the_packet_trace(self):
        rec = SpanRecorder()
        root = rec.consume(1.0, "mhrp.tunnel", "S", {
            "event": "sender-encapsulate", "uid": 5,
        })
        dissolve = rec.consume(1.5, "mhrp.loop", "R3", {
            "event": "dissolve", "uid": 5, "mobile_host": "M",
            "members": ("R3", "R4"),
        })
        assert dissolve.trace_id == root.trace_id


class TestRegistrationOps:
    def test_retransmits_collapse_into_the_operation(self):
        rec = SpanRecorder()
        op = _reg_send(rec, 1.0, "M", "ha-register", attempt=0)
        _reg_send(rec, 2.0, "M", "ha-register", attempt=1)
        _reg_send(rec, 4.0, "M", "ha-register", attempt=2)
        assert len(rec) == 1
        assert op.count == 3
        assert rec.merged == 2

    def test_agent_processing_serves_oldest_unserved_op(self):
        rec = SpanRecorder()
        first = _reg_send(rec, 1.0, "M", "ha-register")
        second = _reg_send(rec, 2.0, "N", "ha-register")
        a = rec.consume(1.1, "mhrp.register", "R2", {
            "event": "ha-register", "mobile_host": "M",
            "foreign_agent": "R4",
        })
        b = rec.consume(2.1, "mhrp.register", "R2", {
            "event": "ha-register", "mobile_host": "N",
            "foreign_agent": "R4",
        })
        assert a.parent_id == first.span_id
        assert b.parent_id == second.span_id

    def test_gave_up_closes_the_operation(self):
        rec = SpanRecorder()
        op = _reg_send(rec, 1.0, "M", "fa-connect")
        gave_up = rec.consume(9.0, "mhrp.register", "M", {
            "event": "gave-up", "kind": "fa-connect", "to": "R4",
        })
        assert gave_up.parent_id == op.span_id
        # The op is closed: a later send starts a fresh operation.
        fresh = _reg_send(rec, 10.0, "M", "fa-connect", attempt=1)
        assert fresh.parent_id is None

    def test_kindless_events_are_their_own_traces(self):
        rec = SpanRecorder()
        span = rec.consume(1.0, "mhrp.register", "R4", {
            "event": "fa-recover-visitor", "mobile_host": "M",
        })
        assert span.parent_id is None


class TestUpdatePairing:
    def test_sent_received_pair_fifo(self):
        rec = SpanRecorder()
        sent = rec.consume(1.0, "mhrp.update", "R2", {
            "event": "sent", "to": "S", "mobile_host": "M",
            "foreign_agent": "R4", "purge": False,
        })
        received = rec.consume(1.1, "mhrp.update", "S", {
            "event": "received", "mobile_host": "M",
            "foreign_agent": "R4", "purge": False,
        })
        assert received.parent_id == sent.span_id

    def test_unmatched_received_is_a_root(self):
        rec = SpanRecorder()
        received = rec.consume(1.0, "mhrp.update", "S", {
            "event": "received", "mobile_host": "M",
            "foreign_agent": "R4", "purge": False,
        })
        assert received.parent_id is None


class TestBoundedMemory:
    def test_eviction_drops_whole_oldest_traces(self):
        rec = SpanRecorder(max_spans=4)
        for uid in range(1, 5):
            rec.consume(uid * 1.0, "mhrp.tunnel", "S", {
                "event": "sender-encapsulate", "uid": uid,
            })
            rec.consume(uid * 1.0 + 0.1, "mhrp.tunnel", "R4", {
                "event": "fa-deliver", "uid": uid,
            })
        assert len(rec) <= 4
        assert rec.evicted_traces >= 2
        # Surviving traces are complete chains, never orphaned children.
        for spans in rec.traces():
            assert spans[0].parent_id is None

    def test_summary_counts(self):
        rec = SpanRecorder()
        _reg_send(rec, 1.0, "M", "ha-register")
        summary = rec.summary()
        assert summary["spans"] == summary["traces"] == 1
        assert summary["by_category"] == {"mhrp.register": 1}


class TestNormalizedDag:
    def _two_backend_runs(self):
        """The same logical history consumed in two different orders
        with different timestamps, as two backends would see it."""
        first, second = SpanRecorder(), SpanRecorder()
        events = [
            (1.0, "mhrp.tunnel", "S",
             {"event": "sender-encapsulate", "uid": 11}),
            (1.2, "mhrp.tunnel", "R4", {"event": "fa-deliver", "uid": 11}),
            (2.0, "mhrp.tunnel", "S",
             {"event": "sender-encapsulate", "uid": 12}),
            (2.2, "mhrp.tunnel", "R5", {"event": "fa-deliver", "uid": 12}),
        ]
        for t, c, n, d in events:
            first.consume(t, c, n, d)
        # Second backend: traces interleaved, shifted times, uids offset.
        reordered = [
            (5.0, "mhrp.tunnel", "S",
             {"event": "sender-encapsulate", "uid": 107}),
            (5.1, "mhrp.tunnel", "S",
             {"event": "sender-encapsulate", "uid": 103}),
            (5.2, "mhrp.tunnel", "R5", {"event": "fa-deliver", "uid": 107}),
            (5.3, "mhrp.tunnel", "R4", {"event": "fa-deliver", "uid": 103}),
        ]
        for t, c, n, d in reordered:
            second.consume(t, c, n, d)
        return first, second

    def test_dag_is_invariant_to_time_ids_and_interleaving(self):
        first, second = self._two_backend_runs()
        assert normalized_dag(first) == normalized_dag(second)

    def test_dag_strips_ids_and_timestamps(self):
        first, _ = self._two_backend_runs()
        dumped = repr(normalized_dag(first))
        assert "uid" not in dumped
        assert "span_id" not in dumped and "1.2" not in dumped

    def test_update_category_excluded_by_default(self):
        rec = SpanRecorder()
        rec.consume(1.0, "mhrp.update", "R2", {
            "event": "sent", "to": "S", "mobile_host": "M",
            "foreign_agent": "R4", "purge": False,
        })
        assert normalized_dag(rec) == []
        assert normalized_dag(rec, categories=("mhrp.update",)) != []


class TestRendering:
    def test_render_spans_shows_tree_and_repeats(self):
        rec = SpanRecorder()
        _reg_send(rec, 1.0, "M", "ha-register", attempt=0)
        _reg_send(rec, 2.0, "M", "ha-register", attempt=1)
        rec.consume(2.1, "mhrp.register", "R2", {
            "event": "ha-register", "mobile_host": "M",
            "foreign_agent": "R4",
        })
        text = render_spans(rec)
        assert "send" in text and "ha-register" in text
        assert "x2" in text  # the collapsed retransmit
