"""Tests for ARP cache entry expiry."""

import pytest

from repro.ip.arp import ARP_CACHE_TTL


class TestARPExpiry:
    def test_entry_expires_after_ttl(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        a.ping(net.host(2))
        sim.run_until_idle()
        arp = a.arp["eth0"]
        assert arp.lookup(net.host(2)) is not None
        sim.run(until=sim.now + ARP_CACHE_TTL + 1)
        assert arp.lookup(net.host(2)) is None

    def test_expired_entry_triggers_fresh_resolution(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        a.ping(net.host(2))
        sim.run_until_idle()
        sim.run(until=sim.now + ARP_CACHE_TTL + 1)
        requests_before = len([
            e for e in sim.tracer.select("arp", node="A")
            if e.detail.get("event") == "request"
        ])
        replies = []
        a.on_icmp(0, lambda p, m: replies.append(m))
        a.ping(net.host(2))
        sim.run(until=sim.now + 5.0)
        requests_after = len([
            e for e in sim.tracer.select("arp", node="A")
            if e.detail.get("event") == "request"
        ])
        assert requests_after == requests_before + 1
        assert len(replies) == 1

    def test_refresh_extends_lifetime(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        a.ping(net.host(2))
        sim.run_until_idle()
        arp = a.arp["eth0"]
        # Halfway to expiry, B re-ARPs for A (its own cache cleared), and
        # A refreshes its entry from the broadcast request it overhears.
        sim.run(until=sim.now + ARP_CACHE_TTL / 2)
        b.arp["eth0"].cache.clear()
        b.ping(net.host(1))
        sim.run(until=sim.now + 2.0)
        sim.run(until=sim.now + ARP_CACHE_TTL / 2 + 2)
        # Less than a full TTL since the refresh: still valid.
        assert arp.lookup(net.host(2)) is not None
