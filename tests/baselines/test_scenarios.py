"""Cross-protocol scenario tests: every protocol runs the identical
workload and exhibits the properties Section 7 attributes to it."""

import pytest

from repro.baselines.columbia import ColumbiaScenario
from repro.baselines.ibm_lsrr import IBMLSRRScenario
from repro.baselines.matsushita import MatsushitaScenario
from repro.baselines.mhrp_scenario import MHRPScenario
from repro.baselines.sony_vip import SonyVIPScenario
from repro.baselines.sunshine_postel import SunshinePostelScenario


def run_basic_workload(scenario, packets_per_cell=3, cells=(0, 1)):
    """Move between cells, sending a burst at each stop."""
    for cell in cells:
        scenario.move_to_cell(cell)
        scenario.settle()
        if hasattr(scenario, "prime"):
            scenario.prime()
            scenario.settle(3.0)
        for _ in range(packets_per_cell):
            scenario.send_packet()
            scenario.settle(3.0)
    scenario.snapshot_state()
    return scenario.stats


class TestMHRPScenario:
    def test_delivery_and_headline_overheads(self):
        stats = run_basic_workload(MHRPScenario(n_cells=3))
        assert stats.delivery_ratio == 1.0
        # First packet after each move is agent-tunneled (12 B); the rest
        # are sender-tunneled (8 B) — Section 7's "8 bytes (or 12 bytes)".
        assert set(stats.overhead_bytes) == {8, 12}

    def test_zero_overhead_at_home(self):
        scenario = MHRPScenario(n_cells=2)
        scenario.move_home()
        scenario.settle()
        for _ in range(3):
            scenario.send_packet()
            scenario.settle(2.0)
        assert scenario.stats.delivery_ratio == 1.0
        assert scenario.stats.overhead_bytes == [0, 0, 0]

    def test_no_global_state(self):
        scenario = MHRPScenario(n_cells=2)
        run_basic_workload(scenario)
        assert scenario.stats.global_state == 0


class TestSunshinePostel:
    def test_delivery_with_requery_after_move(self):
        scenario = SunshinePostelScenario(n_cells=3)
        stats = run_basic_workload(scenario)
        assert stats.delivery_ratio == 1.0
        # Every packet pays the 8-byte LSRR.
        assert set(stats.overhead_bytes) == {8}
        # The move forced a re-query of the global database.
        assert scenario.registry.queries_served >= 2

    def test_global_database_holds_all_hosts(self):
        scenario = SunshinePostelScenario(n_cells=2)
        run_basic_workload(scenario)
        assert scenario.stats.global_state >= 1  # one mobile host here

    def test_even_at_home_packets_are_source_routed(self):
        """IEN 135 has no at-home optimization: the forwarder indirection
        is permanent (contrast with MHRP's E9)."""
        scenario = SunshinePostelScenario(n_cells=2)
        scenario.move_home()
        scenario.settle()
        scenario.send_packet()
        scenario.settle(3.0)
        assert scenario.stats.overhead_bytes == [8]


class TestColumbia:
    def test_ipip_is_24_bytes_always(self):
        stats = run_basic_workload(ColumbiaScenario(n_cells=3), cells=(1, 2))
        assert stats.delivery_ratio == 1.0
        assert set(stats.overhead_bytes) == {24}

    def test_all_traffic_hairpins_through_nearest_msr(self):
        """No sender-side optimization: hops never drop to the direct
        2-hop path MHRP reaches."""
        stats = run_basic_workload(ColumbiaScenario(n_cells=3), cells=(1, 2))
        assert min(stats.hop_counts) >= 3

    def test_cache_miss_triggers_peer_query(self):
        scenario = ColumbiaScenario(n_cells=3)
        scenario.move_to_cell(1)
        scenario.settle()
        scenario.send_packet()
        scenario.settle(3.0)
        assert scenario.msrs[0].queries_sent >= 1

    def test_off_campus_requires_temp_address_and_hairpin(self):
        scenario = ColumbiaScenario(n_cells=2)
        scenario.move_to_cell(0)
        scenario.settle()
        scenario.send_packet()
        scenario.settle(3.0)
        scenario.move_off_campus()
        scenario.settle()
        scenario.send_packet()
        scenario.settle(3.0)
        assert scenario.stats.delivery_ratio == 1.0
        assert scenario.client.temp_address is not None
        # The off-campus path is strictly longer (via the home campus).
        assert scenario.stats.hop_counts[-1] > scenario.stats.hop_counts[0]


class TestSonyVIP:
    def test_vip_header_on_every_packet(self):
        stats = run_basic_workload(SonyVIPScenario(n_cells=3))
        assert stats.delivery_ratio == 1.0
        assert set(stats.overhead_bytes) == {28}

    def test_stale_binding_causes_misdelivery_then_recovery(self):
        scenario = SonyVIPScenario(n_cells=3)
        scenario.move_to_cell(0)
        scenario.settle()
        for _ in range(2):
            scenario.send_packet()
            scenario.settle(3.0)
        scenario.move_to_cell(1)
        scenario.settle()
        scenario.send_packet()
        scenario.settle(6.0)
        # The wrong host got the packet, reported it, and the sender
        # retransmitted successfully.
        assert sum(r.misdeliveries for r in scenario.residents) >= 1
        assert scenario.sender_agent.retransmissions >= 1
        assert scenario.stats.delivery_ratio == 1.0

    def test_flood_invalidation_can_miss_routers(self):
        scenario = SonyVIPScenario(n_cells=3, flood_miss_rate=1.0)
        scenario.move_to_cell(0)
        scenario.settle()
        scenario.send_packet()
        scenario.settle(3.0)
        scenario.move_to_cell(1)
        scenario.settle()
        # Router caches still hold the cell-0 binding.
        stale = [
            agent for agent in scenario.router_agents
            if agent.cache.lookup(scenario.mobile_agent.vip) is not None
        ]
        assert stale


class TestMatsushita:
    def test_forwarding_mode_40_bytes_via_home(self):
        stats = run_basic_workload(MatsushitaScenario(n_cells=3, autonomous=False))
        assert stats.delivery_ratio == 1.0
        assert set(stats.overhead_bytes) == {40}
        # "Optimization of the routing to avoid going through the home
        # network is not possible in forwarding mode."
        assert min(stats.hop_counts) >= 4

    def test_autonomous_mode_tunnels_directly(self):
        stats = run_basic_workload(MatsushitaScenario(n_cells=3, autonomous=True))
        assert stats.delivery_ratio == 1.0
        assert set(stats.overhead_bytes) == {40}  # still 40 bytes
        assert min(stats.hop_counts) == 3         # but no home hairpin

    def test_temp_address_required_per_network(self):
        scenario = MatsushitaScenario(n_cells=2)
        scenario.move_to_cell(0)
        scenario.settle()
        first = scenario.client.temp_address
        scenario.move_to_cell(1)
        scenario.settle()
        second = scenario.client.temp_address
        assert first is not None and second is not None
        assert first != second


class TestIBMLSRR:
    def test_8_bytes_each_way_and_short_path(self):
        scenario = IBMLSRRScenario(n_cells=3)
        stats = run_basic_workload(scenario)
        assert stats.delivery_ratio == 1.0
        assert set(stats.overhead_bytes) == {8}
        assert min(stats.hop_counts) == 2

    def test_every_optioned_packet_hits_router_slow_path(self):
        scenario = IBMLSRRScenario(n_cells=2)
        run_basic_workload(scenario, cells=(0,))
        assert scenario.slow_path_total() > 0

    def test_stale_route_blackholes_until_mobile_sends(self):
        """Section 7: 'packets for a mobile host continue to go to the
        host's old location until some application on that host needs to
        send a normal IP packet to that destination.'"""
        scenario = IBMLSRRScenario(n_cells=3)
        scenario.move_to_cell(0)
        scenario.settle()
        scenario.prime()
        scenario.settle(3.0)
        scenario.send_packet()
        scenario.settle(3.0)
        delivered_before = scenario.stats.packets_delivered
        scenario.move_to_cell(1)
        scenario.settle()
        scenario.send_packet()   # stale route -> old base station
        scenario.settle(3.0)
        assert scenario.stats.packets_delivered == delivered_before
        scenario.prime()         # the mobile host finally sends something
        scenario.settle(3.0)
        scenario.send_packet()
        scenario.settle(3.0)
        assert scenario.stats.packets_delivered == delivered_before + 1

    def test_broken_receiver_never_reaches_mobile(self):
        scenario = IBMLSRRScenario(n_cells=2, correspondent_reverses=False)
        scenario.move_to_cell(0)
        scenario.settle()
        scenario.prime()
        scenario.settle(3.0)
        scenario.send_packet()
        scenario.settle(3.0)
        assert scenario.stats.packets_delivered == 0


class TestCrossProtocolComparability:
    """The shape of the paper's Section 7 table, measured."""

    def test_overhead_ordering_matches_section7(self):
        results = {}
        for cls, kwargs in [
            (MHRPScenario, {}),
            (SunshinePostelScenario, {}),
            (ColumbiaScenario, {}),
            (SonyVIPScenario, {}),
            (MatsushitaScenario, {}),
            (IBMLSRRScenario, {}),
        ]:
            scenario = cls(n_cells=2, **kwargs)
            stats = run_basic_workload(scenario, packets_per_cell=2, cells=(0, 1))
            assert stats.packets_delivered > 0, scenario.protocol_name
            results[scenario.protocol_name] = stats.mean_overhead
        # Steady-state MHRP (8 B) beats everyone; the full Section 7
        # ordering holds on the maxima.
        assert results["MHRP"] <= results["IBM-LSRR"] + 4  # both ~8
        assert results["MHRP"] < results["Columbia"]
        assert results["Columbia"] < results["Sony-VIP"]
        assert results["Sony-VIP"] < results["Matsushita"]
