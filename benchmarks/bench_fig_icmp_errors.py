"""E8 — returned ICMP error handling (paper Section 4.5).

Claims measured:

1. an error raised inside a tunnel chain travels back **along the same
   set of tunnels** to the original sender, with the quoted packet
   reversed into its original (pre-tunnel) form at each head;
2. each cache agent on the way processes the error locally, deleting
   its (likely path-broken) cache entry;
3. when routers quote only the RFC 792 minimum (IP header + 8 bytes),
   the chain cannot be reversed — the head can only delete its cache
   entry, exactly the degraded behaviour the paper describes.
"""

from __future__ import annotations

from repro.baselines.mhrp_scenario import MHRPScenario
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import UDP
from repro.metrics import Table


def run_error_experiment(quote_full: bool):
    """Break the path to the foreign agent mid-stream and watch the
    error come back to the sending host."""
    scenario = MHRPScenario(n_cells=2)
    sim = scenario.sim
    scenario.move_to_cell(0)
    scenario.settle()
    scenario.send_packet()          # primes the correspondent's cache
    scenario.settle(3.0)
    correspondent = scenario.correspondent
    for router in scenario.topo.all_routers():
        router.icmp_quote_full = quote_full
    # Partition the cell: the home router loses its route to cell 0, so
    # tunnels die at the home router... but the sender tunnels directly,
    # so break at the correspondent's router instead.
    cell_net = scenario.topo.cell_nets[0]
    scenario.topo.corr_router.routing_table.remove(cell_net)
    errors_seen = []
    correspondent.on_icmp_error(lambda p, e: errors_seen.append(e))
    original = IPPacket(
        src=correspondent.primary_address,
        dst=scenario.topo.mobile_home_address,
        protocol=UDP,
        payload=RawPayload(b"doomed"),
    )
    correspondent.send(original.copy())
    sim.run(until=sim.now + 10.0)
    cache_entry = correspondent.cache_agent.cache.peek(
        scenario.topo.mobile_home_address
    )
    reversed_ok = any(
        e.quoted is not None
        and e.quoted.protocol == UDP
        and e.quoted.dst == scenario.topo.mobile_home_address
        and e.quoted.src == correspondent.primary_address
        for e in errors_seen
    )
    return {
        "errors": len(errors_seen),
        "reversed": reversed_ok,
        "cache_purged": cache_entry is None,
        "handler": correspondent.error_handler,
    }


def build_error_table():
    table = Table(
        "E8  Returned ICMP errors through MHRP tunnels",
        ["router quoting", "error at sender", "original packet reconstructed",
         "stale cache purged"],
    )
    full = run_error_experiment(quote_full=True)
    table.add_row(
        "full packet (RFC 1812)",
        "yes" if full["errors"] else "no",
        "yes" if full["reversed"] else "no",
        "yes" if full["cache_purged"] else "no",
    )
    minimal = run_error_experiment(quote_full=False)
    table.add_row(
        "IP header + 8 B (RFC 792 min)",
        "yes" if minimal["errors"] else "no",
        "yes" if minimal["reversed"] else "no",
        "yes" if minimal["cache_purged"] else "no",
    )
    return table, full, minimal


def test_icmp_errors(benchmark, record):
    table, full, minimal = benchmark.pedantic(build_error_table, rounds=1, iterations=1)
    record("E8_icmp_errors", table)
    # Full quotes: the sender gets an error quoting its original packet.
    assert full["errors"] >= 1
    assert full["reversed"]
    assert full["cache_purged"]
    # Minimal quotes: reversal impossible, but the cache is still purged
    # ("little can be done ... beyond deleting its cache entry").
    assert not minimal["reversed"]
    assert minimal["cache_purged"]
    assert minimal["handler"].errors_unparseable >= 1
