"""Unit tests for transmission media."""

import pytest

from repro.errors import LinkError
from repro.ip import Host, IPNetwork
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import UDP
from repro.link import LAN, PointToPointLink, WirelessCell
from repro.link.frame import ETHERTYPE_IP, Frame, HWAddress


def attach_host(sim, medium, name, addr, net):
    host = Host(sim, name)
    host.add_interface("eth0", addr, net, medium=medium)
    return host


class TestMediumBasics:
    def test_negative_latency_rejected(self, sim):
        with pytest.raises(LinkError):
            LAN(sim, "x", latency=-1)

    def test_bad_loss_rate_rejected(self, sim):
        with pytest.raises(LinkError):
            LAN(sim, "x", loss_rate=1.5)

    def test_double_attach_rejected(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        with pytest.raises(LinkError):
            lan.attach(a.interfaces["eth0"])

    def test_detach_unattached_rejected(self, sim):
        lan = LAN(sim, "x")
        host = Host(sim, "H")
        iface = host.add_interface("eth0", "10.0.0.1", IPNetwork("10.0.0.0/24"))
        with pytest.raises(LinkError):
            lan.detach(iface)

    def test_transmit_while_detached_rejected(self, sim):
        lan = LAN(sim, "x")
        host = Host(sim, "H")
        iface = host.add_interface("eth0", "10.0.0.1", IPNetwork("10.0.0.0/24"))
        frame = Frame(iface.hw_address, HWAddress.broadcast(), ETHERTYPE_IP,
                      IPPacket(src="10.0.0.1", dst="10.0.0.2", protocol=UDP))
        with pytest.raises(LinkError):
            lan.transmit(iface, frame)

    def test_latency_applied(self, sim):
        lan = LAN(sim, "x", latency=0.5)
        net = IPNetwork("10.0.0.0/24")
        a = attach_host(sim, lan, "A", net.host(1), net)
        b = attach_host(sim, lan, "B", net.host(2), net)
        arrivals = []
        b.register_protocol(UDP, lambda p, i: arrivals.append(sim.now))
        # Pre-load ARP so the first delivery isn't delayed by resolution.
        a.arp["eth0"].learn(net.host(2), b.interfaces["eth0"].hw_address)
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert arrivals == [0.5]

    def test_bytes_accounting(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        before = lan.bytes_transmitted
        a.ping(net.host(2))
        sim.run_until_idle()
        assert lan.bytes_transmitted > before
        assert lan.frames_transmitted >= 2  # ARP + at least one IP frame


class TestUnicastAndBroadcast:
    def test_unicast_reaches_only_target(self, sim):
        lan = LAN(sim, "x")
        net = IPNetwork("10.0.0.0/24")
        a = attach_host(sim, lan, "A", net.host(1), net)
        b = attach_host(sim, lan, "B", net.host(2), net)
        c = attach_host(sim, lan, "C", net.host(3), net)
        got = {"b": 0, "c": 0}
        b.register_protocol(UDP, lambda p, i: got.__setitem__("b", got["b"] + 1))
        c.register_protocol(UDP, lambda p, i: got.__setitem__("c", got["c"] + 1))
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert got == {"b": 1, "c": 0}

    def test_unicast_to_absent_hw_is_silently_dropped(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        ghost = HWAddress.allocate()
        a.interfaces["eth0"].send_to(
            ghost, ETHERTYPE_IP,
            IPPacket(src=net.host(1), dst=net.host(9), protocol=UDP),
        )
        sim.run_until_idle()
        drops = [
            e for e in sim.tracer.select("link.drop")
            if e.detail.get("reason") == "no-receiver"
        ]
        assert len(drops) == 1

    def test_frame_in_flight_to_detached_iface_is_lost(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        a.arp["eth0"].learn(net.host(2), b.interfaces["eth0"].hw_address)
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        b.interfaces["eth0"].detach()  # detach before the latency elapses
        sim.run_until_idle()
        drops = [
            e for e in sim.tracer.select("link.drop")
            if e.detail.get("reason") == "detached"
        ]
        assert len(drops) == 1


class TestLossModel:
    def test_zero_loss_delivers_everything(self, sim):
        lan = LAN(sim, "x", loss_rate=0.0)
        net = IPNetwork("10.0.0.0/24")
        a = attach_host(sim, lan, "A", net.host(1), net)
        b = attach_host(sim, lan, "B", net.host(2), net)
        got = []
        b.register_protocol(UDP, lambda p, i: got.append(p))
        a.arp["eth0"].learn(net.host(2), b.interfaces["eth0"].hw_address)
        for _ in range(50):
            a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert len(got) == 50

    def test_full_loss_delivers_nothing(self, sim):
        lan = LAN(sim, "x", loss_rate=1.0)
        net = IPNetwork("10.0.0.0/24")
        a = attach_host(sim, lan, "A", net.host(1), net)
        b = attach_host(sim, lan, "B", net.host(2), net)
        got = []
        b.register_protocol(UDP, lambda p, i: got.append(p))
        a.arp["eth0"].learn(net.host(2), b.interfaces["eth0"].hw_address)
        for _ in range(10):
            a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert got == []

    def test_partial_loss_is_roughly_proportional(self, sim):
        lan = LAN(sim, "x", loss_rate=0.3)
        net = IPNetwork("10.0.0.0/24")
        a = attach_host(sim, lan, "A", net.host(1), net)
        b = attach_host(sim, lan, "B", net.host(2), net)
        got = []
        b.register_protocol(UDP, lambda p, i: got.append(p))
        a.arp["eth0"].learn(net.host(2), b.interfaces["eth0"].hw_address)
        for _ in range(200):
            a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert 100 <= len(got) <= 180  # ~140 expected at 30% loss


class TestPointToPoint:
    def test_at_most_two_endpoints(self, sim):
        link = PointToPointLink(sim, "p2p")
        net = IPNetwork("10.0.0.0/30")
        attach_host(sim, link, "A", net.host(1), net)
        attach_host(sim, link, "B", net.host(2), net)
        c = Host(sim, "C")
        iface = c.add_interface("eth0", "10.0.0.3", IPNetwork("10.0.0.0/24"))
        with pytest.raises(LinkError):
            iface.attach_to(link)

    def test_peer_of(self, sim):
        link = PointToPointLink(sim, "p2p")
        net = IPNetwork("10.0.0.0/30")
        a = attach_host(sim, link, "A", net.host(1), net)
        b = attach_host(sim, link, "B", net.host(2), net)
        assert link.peer_of(a.interfaces["eth0"]) is b.interfaces["eth0"]
        assert link.peer_of(b.interfaces["eth0"]) is a.interfaces["eth0"]

    def test_traffic_flows(self, sim):
        link = PointToPointLink(sim, "p2p")
        net = IPNetwork("10.0.0.0/30")
        a = attach_host(sim, link, "A", net.host(1), net)
        b = attach_host(sim, link, "B", net.host(2), net)
        replies = []
        a.on_icmp(0, lambda p, m: replies.append(m))
        a.ping(net.host(2))
        sim.run_until_idle()
        assert len(replies) == 1


class TestWirelessCell:
    def test_mobility_is_reattachment(self, sim):
        cell1 = WirelessCell(sim, "c1")
        cell2 = WirelessCell(sim, "c2")
        net = IPNetwork("10.0.0.0/24")
        roamer = attach_host(sim, cell1, "R", net.host(1), net)
        iface = roamer.interfaces["eth0"]
        assert cell1.is_attached(iface)
        iface.attach_to(cell2)
        assert not cell1.is_attached(iface)
        assert cell2.is_attached(iface)
