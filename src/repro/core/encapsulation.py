"""Tunneling transforms (paper Sections 4.1, 4.2, 4.4).

MHRP's encapsulation rewrites the packet in place:

- **encapsulate** — performed by the home agent, an en-route cache agent,
  or the original sender; inserts the MHRP header and redirects the
  packet to the foreign agent (Section 4.2's three steps).
- **decapsulate** — performed by the foreign agent (or by the mobile
  host itself when it is back home); reconstructs the original IP header
  and removes the MHRP header.
- **retunnel** — performed by an *old* foreign agent whose visitor no
  longer lives there (Section 4.4's three steps), forwarding the packet
  to the newer foreign agent or back to the mobile host's home address.

``retunnel`` implements the bounded-list overflow rule of Section 4.4 and
reports both the addresses flushed by an overflow (so the caller can send
them location updates) and loop detection (Section 5.3) — the caller
decides how to dissolve the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ProtocolError
from repro.core.header import DEFAULT_MAX_PREVIOUS_SOURCES, MHRPHeader
from repro.ip.address import IPAddress
from repro.ip.packet import IPPacket, Payload
from repro.ip.protocols import MHRP as PROTO_MHRP


@dataclass
class MHRPPayload:
    """An IP payload wrapped with an MHRP header.

    Models the on-wire layout of Figure 2: the MHRP header sits between
    the (rewritten) IP header and the untouched transport payload.
    """

    header: MHRPHeader
    inner: Payload

    @property
    def byte_length(self) -> int:
        return self.header.byte_length + self.inner.byte_length

    def to_bytes(self) -> bytes:
        return self.header.to_bytes() + self.inner.to_bytes()

    def __repr__(self) -> str:
        return f"<MHRP {self.header!r} + {self.inner!r}>"


@dataclass
class RetunnelResult:
    """Outcome of a :func:`retunnel` attempt."""

    #: True when the re-tunneling node's address was already on the
    #: previous-source list — a forwarding loop (Section 5.3).  The packet
    #: is left unmodified in this case.
    loop_detected: bool = False
    #: Addresses flushed from the list by the Section 4.4 overflow rule;
    #: the caller must send each a location update.
    flushed: List[IPAddress] = field(default_factory=list)


def encapsulate(
    packet: IPPacket,
    foreign_agent: IPAddress,
    agent_address: Optional[IPAddress] = None,
) -> IPPacket:
    """Add an MHRP header to ``packet``, tunneling it to ``foreign_agent``.

    Section 4.2's steps: the original protocol and destination move into
    the MHRP header; the IP header is redirected to the foreign agent.
    ``agent_address`` identifies the home agent or cache agent building
    the header; pass ``None`` when the *original sender* builds it, in
    which case the previous-source list stays empty (8-byte header) and
    the IP source address is left alone.

    The packet is modified in place and returned (the uid survives —
    it is the same logical packet).
    """
    if packet.protocol == PROTO_MHRP:
        raise ProtocolError("packet is already MHRP-encapsulated")
    previous: List[IPAddress] = []
    header = MHRPHeader(
        orig_protocol=packet.protocol,
        mobile_host=packet.dst,
        previous_sources=previous,
    )
    if agent_address is not None:
        # Built by someone other than the original sender: the original
        # IP source moves into the list and is replaced in the IP header.
        previous.append(packet.src)
        packet.src = agent_address
    packet.payload = MHRPPayload(header=header, inner=packet.payload)
    packet.protocol = PROTO_MHRP
    packet.dst = IPAddress(foreign_agent)
    return packet


def decapsulate(packet: IPPacket) -> IPPacket:
    """Reconstruct the original IP packet from a tunneled one.

    Performed by the foreign agent before the last-hop transmission
    (Section 4.1), or by a mobile host receiving a re-tunneled packet at
    home (Section 6.3).  The original source is the first list entry, or
    the current IP source if the sender built the header itself.
    """
    payload = packet.payload
    if packet.protocol != PROTO_MHRP or not isinstance(payload, MHRPPayload):
        raise ProtocolError(f"not an MHRP packet: {packet!r}")
    header = payload.header
    original_sender = header.original_sender
    if original_sender is not None:
        packet.src = original_sender
    packet.dst = header.mobile_host
    packet.protocol = header.orig_protocol
    packet.payload = payload.inner
    return packet


def retunnel(
    packet: IPPacket,
    new_destination: IPAddress,
    my_address: IPAddress,
    max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
) -> RetunnelResult:
    """Re-tunnel an MHRP packet that arrived at the wrong agent.

    Section 4.4's steps, performed by an old foreign agent (or the home
    agent forwarding to the current foreign agent):

    1. append the packet's current IP source to the previous-source list
       (growing the MHRP header by 4 bytes, bounded by
       ``max_previous_sources`` with the overflow fan-out rule);
    2. set the IP source to this node's address (the packet's current IP
       destination);
    3. set the IP destination to ``new_destination`` — the newer foreign
       agent, or the mobile host's home address so the home agent
       intercepts it.

    Loop detection (Section 5.3) happens *before* any mutation: if
    ``my_address`` already appears on the list, one full pass around a
    forwarding loop has completed; the caller dissolves it.
    """
    payload = packet.payload
    if packet.protocol != PROTO_MHRP or not isinstance(payload, MHRPPayload):
        raise ProtocolError(f"not an MHRP packet: {packet!r}")
    if max_previous_sources < 1:
        raise ProtocolError("max_previous_sources must be at least 1")
    header = payload.header
    if header.contains_source(my_address):
        return RetunnelResult(loop_detected=True)
    result = RetunnelResult()
    if header.count >= max_previous_sources:
        # Section 4.4 overflow: report every listed address for updating,
        # truncate the list, and continue with only the newest entry.
        result.flushed = list(header.previous_sources)
        header.previous_sources.clear()
    header.previous_sources.append(packet.src)
    packet.src = my_address
    packet.dst = IPAddress(new_destination)
    return result
