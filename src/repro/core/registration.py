"""Registration control messages (paper Section 3).

The paper specifies *what* must be notified and in which order — new
foreign agent first, then the home agent, then the old foreign agent —
but not a message format; this module supplies a minimal one:

- ``FA_CONNECT``    mobile host → new foreign agent
- ``FA_DISCONNECT`` mobile host → old foreign agent (carries the new
  foreign agent's address so the old one may cache a forwarding pointer,
  Section 2; zero when the host went home, Section 6.3)
- ``HA_REGISTER``   mobile host → home agent (zero foreign agent = home)
- ``ACK``           agent → mobile host

Registrations cross wireless links and possibly half the internetwork,
so they are retransmitted until acknowledged (:class:`ReliableRegistrar`).

All control traffic rides IP protocol :data:`~repro.ip.protocols.MOBILE_CONTROL`;
a per-node :class:`ControlDispatcher` demultiplexes by message kind so a
single router can host a home agent and a foreign agent at once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import PacketError
from repro.ip.address import IPAddress

# Message kinds.
FA_CONNECT = "fa-connect"
FA_DISCONNECT = "fa-disconnect"
HA_REGISTER = "ha-register"
ACK = "ack"

#: Wire codes for the message kinds (shared by serialization and the
#: sans-io codec in :mod:`repro.wire.codec`).
KIND_CODES = {FA_CONNECT: 1, FA_DISCONNECT: 2, HA_REGISTER: 3, ACK: 4}
_CODE_KINDS = {code: kind for kind, code in KIND_CODES.items()}

#: Exact encoded size of a registration message (see
#: :meth:`RegistrationMessage.to_bytes`).
REG_MESSAGE_LEN = 18

#: Retransmission schedule for reliable registrations.
REG_RETRY_INTERVAL = 1.0
REG_MAX_RETRIES = 5

_seq_counter = itertools.count(1)


@dataclass
class RegistrationMessage:
    """One control message.

    ``hw_value`` lets a foreign agent learn the visiting host's hardware
    address straight from the connect notification (Section 2 offers this
    as the alternative to ARP for the last hop).
    """

    kind: str
    seq: int
    mobile_host: IPAddress
    agent: IPAddress = field(default_factory=IPAddress.zero)
    hw_value: int = 0
    ok: bool = True

    @property
    def byte_length(self) -> int:
        # kind/flags (2) + seq (2) + mobile host (4) + agent (4) + hw (6).
        return 18

    def to_bytes(self) -> bytes:
        out = bytearray()
        out.append(KIND_CODES.get(self.kind, 0))
        out.append(1 if self.ok else 0)
        out += (self.seq & 0xFFFF).to_bytes(2, "big")
        out += self.mobile_host.to_bytes()
        out += self.agent.to_bytes()
        out += (self.hw_value & ((1 << 48) - 1)).to_bytes(6, "big")
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RegistrationMessage":
        """Exact inverse of :meth:`to_bytes`.

        Strict by the same rule the MHRP header follows (PR 4): the
        message is fixed-size and self-describing, so a bad kind code or
        trailing bytes mean corruption or a framing bug — never ignore
        them silently.
        """
        if len(data) < REG_MESSAGE_LEN:
            raise PacketError(
                f"registration message truncated ({len(data)} bytes)"
            )
        if len(data) > REG_MESSAGE_LEN:
            raise PacketError(
                f"registration message has {len(data) - REG_MESSAGE_LEN} "
                f"trailing byte(s)"
            )
        kind = _CODE_KINDS.get(data[0])
        if kind is None:
            raise PacketError(f"unknown registration kind code {data[0]}")
        if data[1] not in (0, 1):
            raise PacketError(f"bad registration ok flag {data[1]}")
        return cls(
            kind=kind,
            ok=bool(data[1]),
            seq=int.from_bytes(data[2:4], "big"),
            mobile_host=IPAddress.from_bytes(data[4:8]),
            agent=IPAddress.from_bytes(data[8:12]),
            hw_value=int.from_bytes(data[12:18], "big"),
        )

    def __repr__(self) -> str:
        return (
            f"<Reg {self.kind} #{self.seq} mh={self.mobile_host} "
            f"agent={self.agent} ok={self.ok}>"
        )


def next_seq() -> int:
    return next(_seq_counter)


class StaleControlFilter:
    """Per-mobile-host registration sequence high-water mark.

    A mobile host allocates ``seq`` monotonically, so of two control
    messages from the same host the larger sequence number is always
    the more recent decision.  Retransmission and agent crashes can
    deliver them out of order: the ``fa-disconnect`` of move *k* kept
    alive by :class:`ReliableRegistrar` while the old agent was down
    can arrive *after* the ``fa-connect`` of move *k+1* — and naively
    processing it de-registers a perfectly fresh visitor (worse, the
    bogus departure stamp then suppresses the Section 5.2 recovery for
    a whole departure-grace window).  Agents consult this filter and
    ignore — but still acknowledge, so the sender stops retrying —
    any message strictly older than the newest already processed.
    """

    def __init__(self) -> None:
        self._high_water: Dict[IPAddress, int] = {}

    def is_stale(self, message: RegistrationMessage) -> bool:
        """True iff ``message`` is older than one already processed for
        the same mobile host; otherwise record it as the newest.

        Equal sequence numbers are *not* stale: they are retransmissions
        of the message we just processed (the handlers are idempotent).
        """
        latest = self._high_water.get(message.mobile_host, 0)
        if message.seq < latest:
            return True
        self._high_water[message.mobile_host] = message.seq
        return False

    def reset(self) -> None:
        """Forget everything (the memory is volatile: reboot hook)."""
        self._high_water.clear()

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able high-water marks for the session snapshot/diff contract."""
        return {
            "high_water": {
                str(host): seq
                for host, seq in sorted(
                    self._high_water.items(), key=lambda kv: kv[0].value
                )
            }
        }

    def load_state(self, state: dict) -> None:
        """Restore the high-water marks from :meth:`state_dict`."""
        self._high_water = {
            IPAddress(host): int(seq) for host, seq in state["high_water"].items()
        }


def __getattr__(name: str):
    # ControlDispatcher and ReliableRegistrar moved to repro.wire.roles
    # (one implementation for the simulator and the sans-io engines).
    # Resolved lazily: roles imports this module at import time.
    if name in ("ControlDispatcher", "ReliableRegistrar"):
        from repro.wire import roles

        return getattr(roles, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
