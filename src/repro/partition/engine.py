"""Conservative-synchronization execution of a partitioned scenario.

:func:`run_partitioned` shards a schema-v2 scenario (``partitions`` set)
into one :class:`~repro.partition.runtime.PartitionRuntime` per campus
and advances them under one of two conservative protocols, chosen by
the hierarchy's lookahead ``L`` (the minimum inter-campus delay):

- **Windowed** (``L > 0``): all partitions run events in ``[t, t+L)``
  concurrently — safe because nothing produced inside the window can
  *arrive* before ``t+L`` — then exchange exports and advance to the
  next window.  This is the barrier-window variant of null-message
  synchronization: lookahead is global, so a window barrier carries the
  same guarantee as pairwise null messages at a fraction of the
  messaging.
- **Global barrier** (``L == 0``, e.g. zero-delay inter-partition
  links): partitions step together through one timestamp at a time
  (the global minimum next-event time, inclusive), exchanging after
  each step.  Progress is guaranteed — the minimum always executes —
  so zero lookahead degenerates to lockstep, never deadlock.

Determinism (the byte-identity contract): per-partition simulators are
seeded from ``(spec.seed, index)``; exports are delivered sorted by
``(arrival, source partition, export sequence)`` which is a total order
reproduced identically by any execution schedule; payloads cross the
boundary pickled in *both* serial and parallel mode; and the process-
global ID counters are scoped per partition — worker processes isolate
them naturally, the serial orchestrator swaps them around every window.
A serial run (``workers=0``) is therefore byte-identical — per-partition
trace fingerprints, health summaries, mobile-host state — to a parallel
run (one OS process per partition), which is what the partition-smoke
CI job asserts.

Long runs poll the cooperative deadline
(:mod:`repro.harness.deadline`) at every window boundary — the
SIGALRM-free timeout path that makes partitioned cells safe inside the
sweep runner's worker pools.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.harness.deadline import check as _check_deadline
from repro.scenario.session import (
    capture_global_counters,
    restore_global_counters,
)
from repro.scenario.spec import ScenarioSpec, canonical_json
from repro.workloads.hierarchy import HierarchyModel, merge_load_summaries

#: Backstop against a livelocked exchange loop (a zero-delay event
#: cycle bouncing between partitions forever).
MAX_ROUNDS = 1_000_000

#: (dst, arrival, kind, blob, export_seq) as drained from a runtime.
_Export = Tuple[int, float, str, bytes, int]


# ----------------------------------------------------------------------
# Partition drivers: same surface, serial or one-process-per-partition
# ----------------------------------------------------------------------
class _SerialPartition:
    """In-process partition with global-counter scoping.

    The shared ID counters (packet uids, hardware addresses,
    registration sequence numbers) are captured after every slice of
    this partition's execution and restored before the next, so running
    all partitions interleaved in one process hands out exactly the
    id sequences isolated worker processes would."""

    def __init__(self, spec: ScenarioSpec, model: HierarchyModel, index: int) -> None:
        from repro.partition.runtime import PartitionRuntime

        self.runtime = PartitionRuntime(spec, model, index)
        self._next = self.runtime.next_time()
        self._counters = capture_global_counters()
        self._reply: Optional[tuple] = None

    def initial_next_time(self) -> Optional[float]:
        return self._next

    def run_async(self, barrier: float, inclusive: bool, deliveries) -> None:
        restore_global_counters(self._counters)
        self.runtime.inject(deliveries)
        executed = self.runtime.run_window(barrier, inclusive)
        self._counters = capture_global_counters()
        self._reply = (executed, self.runtime.next_time(), self.runtime.drain_outbox())

    def collect(self) -> tuple:
        reply, self._reply = self._reply, None
        return reply

    def finish_async(self, horizon: float, deliveries) -> None:
        restore_global_counters(self._counters)
        self.runtime.inject(deliveries)
        self.runtime.finish(horizon)
        self._counters = capture_global_counters()
        self._reply = (self.runtime.result(), self.runtime.drain_outbox())

    def collect_result(self) -> tuple:
        reply, self._reply = self._reply, None
        return reply

    def stop(self) -> None:
        pass


def _worker_main(conn, spec_dict: dict, index: int) -> None:
    """Worker-process loop: build one partition, serve window commands."""
    import traceback

    from repro.partition.runtime import PartitionRuntime

    try:
        spec = ScenarioSpec.from_dict(spec_dict)
        model = HierarchyModel.from_spec(spec)
        runtime = PartitionRuntime(spec, model, index)
        conn.send(("ready", runtime.next_time()))
        while True:
            msg = conn.recv()
            if msg[0] == "window":
                _, barrier, inclusive, deliveries = msg
                runtime.inject(deliveries)
                executed = runtime.run_window(barrier, inclusive)
                conn.send(
                    ("ok", executed, runtime.next_time(), runtime.drain_outbox())
                )
            elif msg[0] == "finish":
                _, horizon, deliveries = msg
                runtime.inject(deliveries)
                runtime.finish(horizon)
                conn.send(("result", runtime.result(), runtime.drain_outbox()))
            elif msg[0] == "stop":
                return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ParallelPartition:
    """One partition in its own OS process, driven over a pipe."""

    def __init__(self, spec: ScenarioSpec, index: int) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        self.index = index
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child, spec.to_dict(), index),
            name=f"partition-{index}",
        )
        self._proc.start()
        child.close()
        self._next: Optional[float] = None

    def _recv(self, expect: str) -> tuple:
        msg = self._conn.recv()
        if msg[0] == "error":
            raise SimulationError(
                f"partition {self.index} worker failed:\n{msg[1]}"
            )
        if msg[0] != expect:
            raise SimulationError(
                f"partition {self.index}: expected {expect!r}, got {msg[0]!r}"
            )
        return msg

    def wait_ready(self) -> None:
        self._next = self._recv("ready")[1]

    def initial_next_time(self) -> Optional[float]:
        return self._next

    def run_async(self, barrier: float, inclusive: bool, deliveries) -> None:
        self._conn.send(("window", barrier, inclusive, deliveries))

    def collect(self) -> tuple:
        return self._recv("ok")[1:]

    def finish_async(self, horizon: float, deliveries) -> None:
        self._conn.send(("finish", horizon, deliveries))

    def collect_result(self) -> tuple:
        return self._recv("result")[1:]

    def stop(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=10)
        self._conn.close()


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class PartitionedResult:
    """The merged outcome of one partitioned run."""

    spec_name: str
    partitions: int
    workers: int
    mode: str
    lookahead: float
    windows: int
    events: int
    wall_seconds: float
    exports_delivered: int
    exports_dropped: int
    results: List[dict] = field(default_factory=list)

    def health_merged(self) -> Optional[dict]:
        from repro.telemetry.health import merge_health_summaries

        summaries = [r["health"] for r in self.results if r.get("health")]
        return merge_health_summaries(summaries) if summaries else None

    def load_merged(self) -> Optional[dict]:
        summaries = [r["load"] for r in self.results if r.get("load")]
        return merge_load_summaries(summaries) if summaries else None

    def fingerprint(self) -> dict:
        """Per-partition trace digests plus digests of the health and
        mobile-host state — equal fingerprints mean byte-identical runs."""
        import hashlib

        ordered = sorted(self.results, key=lambda r: r["partition"])
        health = canonical_json([r.get("health") for r in ordered])
        mobile = canonical_json([r.get("mobile_state") for r in ordered])
        return {
            "trace": {
                str(r["partition"]): r["trace_fingerprint"] for r in ordered
            },
            "health": hashlib.sha256(health.encode()).hexdigest(),
            "mobile_state": hashlib.sha256(mobile.encode()).hexdigest(),
        }


# ----------------------------------------------------------------------
# Exchange plumbing
# ----------------------------------------------------------------------
def _route(
    outboxes: Dict[int, List[_Export]],
    horizon: float,
    pending: Dict[int, List[Tuple[float, str, bytes]]],
) -> Tuple[int, int]:
    """Merge per-source outboxes into per-destination delivery queues.

    Deliveries are sorted by ``(arrival, source partition, export
    sequence)`` — a total order independent of which partition drained
    first — and anything arriving after the horizon is dropped (it could
    never execute)."""
    delivered = dropped = 0
    staged: Dict[int, List[Tuple[float, int, int, str, bytes]]] = {}
    for src, exports in outboxes.items():
        for dst, arrival, kind, blob, seq in exports:
            if arrival > horizon:
                dropped += 1
                continue
            staged.setdefault(dst, []).append((arrival, src, seq, kind, blob))
    for dst, items in staged.items():
        items.sort(key=lambda item: (item[0], item[1], item[2]))
        pending[dst].extend(
            (arrival, kind, blob) for arrival, _, _, kind, blob in items
        )
        delivered += len(items)
    return delivered, dropped


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def run_partitioned(spec: ScenarioSpec, workers: int = 0) -> PartitionedResult:
    """Run a partitioned scenario to its horizon.

    ``workers=0`` runs every partition in this process (the serial
    reference); any other value spawns one worker process per partition.
    Both produce byte-identical per-partition traces, health summaries
    and mobile-host state.
    """
    model = HierarchyModel.from_spec(spec)
    n = model.n_campuses
    lookahead = model.lookahead()
    mode = "window" if (n > 1 and lookahead > 0) else "barrier"
    horizon = spec.horizon
    started = time.perf_counter()

    if workers:
        backends: List = [_ParallelPartition(spec, i) for i in range(n)]
        for backend in backends:
            backend.wait_ready()
    else:
        backends = [_SerialPartition(spec, model, i) for i in range(n)]

    pending: Dict[int, List[Tuple[float, str, bytes]]] = {i: [] for i in range(n)}
    nexts: List[Optional[float]] = [b.initial_next_time() for b in backends]
    windows = delivered_total = dropped_total = 0

    try:
        if mode == "window":
            t = 0.0
            while t < horizon:
                _check_deadline()
                barrier = min(t + lookahead, horizon)
                for i, backend in enumerate(backends):
                    backend.run_async(barrier, False, pending[i])
                    pending[i] = []
                outboxes: Dict[int, List[_Export]] = {}
                for i, backend in enumerate(backends):
                    _, nexts[i], outboxes[i] = backend.collect()
                delivered, dropped = _route(outboxes, horizon, pending)
                delivered_total += delivered
                dropped_total += dropped
                windows += 1
                t = barrier
        else:
            while True:
                _check_deadline()
                if windows > MAX_ROUNDS:
                    raise SimulationError(
                        f"barrier protocol exceeded {MAX_ROUNDS} rounds "
                        f"(zero-delay event cycle between partitions?)"
                    )
                candidates = [x for x in nexts if x is not None and x <= horizon]
                candidates.extend(
                    arrival
                    for deliveries in pending.values()
                    for arrival, _, _ in deliveries
                )
                if not candidates:
                    break
                t_next = min(candidates)
                for i, backend in enumerate(backends):
                    backend.run_async(t_next, True, pending[i])
                    pending[i] = []
                outboxes = {}
                for i, backend in enumerate(backends):
                    _, nexts[i], outboxes[i] = backend.collect()
                delivered, dropped = _route(outboxes, horizon, pending)
                delivered_total += delivered
                dropped_total += dropped
                windows += 1

        # Final phase: advance every clock to the horizon (events at
        # exactly the horizon run here, matching ``Session.run``).
        for i, backend in enumerate(backends):
            backend.finish_async(horizon, pending[i])
            pending[i] = []
        results: List[dict] = []
        for backend in backends:
            result, outbox = backend.collect_result()
            results.append(result)
            # Horizon-time events can only export beyond the horizon
            # (positive delay) — anything else is a protocol violation.
            for dst, arrival, kind, _, _ in outbox:
                if arrival <= horizon:
                    raise SimulationError(
                        f"partition {result['partition']} exported a "
                        f"{kind} event at t={arrival} after the final "
                        f"exchange (horizon {horizon})"
                    )
                dropped_total += 1
    finally:
        for backend in backends:
            backend.stop()

    results.sort(key=lambda r: r["partition"])
    return PartitionedResult(
        spec_name=spec.name,
        partitions=n,
        workers=workers if workers else 0,
        mode=mode,
        lookahead=lookahead,
        windows=windows,
        events=sum(r["events"] for r in results),
        wall_seconds=time.perf_counter() - started,
        exports_delivered=delivered_total,
        exports_dropped=dropped_total,
        results=results,
    )
