"""Pinned partitioned scenarios for byte-identity checks.

Two four-campus scenarios exercised by the conformance tests, the
``partition-smoke`` CI job and the benchmarks.  Like the wire
conformance corpus, these are *pinned*: serial (``workers=0``) and
parallel (one process per partition) executions of each must produce
identical fingerprints, so any edit here invalidates recorded
baselines deliberately.

Both use four campuses under a depth-2 binary hierarchy
(``hop_delay=0.01`` → lookahead 0.02s): campuses 0·1 and 2·3 are
sibling pairs, cross-pair traffic climbs to the root.  Global index
plan (2 hosts, 2 cells, 1 correspondent per campus): host ``h`` is
``campus h//2``, cell ``g`` is ``campus g//2``, correspondent ``c`` is
campus ``c``.
"""

from __future__ import annotations

from typing import List

from repro.scenario.spec import ScenarioSpec

#: Per-campus topology shared by both pinned scenarios.
_TOPOLOGY = {
    "kind": "hierarchy",
    "n_cells": 2,
    "n_mobile_hosts": 2,
    "n_correspondents": 1,
    "advertise": True,
}

_HIERARCHY = {"depth": 2, "branching": 2, "hop_delay": 0.01}

#: Staggered initial attach-home of every host, fuzz-corpus style.
_ATTACHES = [
    {"t": round(0.2 + 0.1 * h, 3), "host": h, "to": -1} for h in range(8)
]


def partition_handoff_spec() -> ScenarioSpec:
    """Cross-campus handoffs under traffic: host 0 tours campus 1 while
    a campus-1 correspondent streams at its home address, host 5 visits
    campus 0, and correspondents ping both while they are away."""
    return ScenarioSpec(
        name="partition-handoff",
        seed=42,
        topology=dict(_TOPOLOGY),
        horizon=12.0,
        instruments=[{"kind": "health"}],
        partitions=4,
        hierarchy=dict(_HIERARCHY),
        moves=_ATTACHES
        + [
            {"t": 1.0, "host": 0, "to": 0},   # local handoff, campus 0
            {"t": 2.0, "host": 5, "to": 4},   # local handoff, campus 2
            {"t": 3.0, "host": 0, "to": 2},   # migrate 0 -> campus 1
            {"t": 4.5, "host": 5, "to": 1},   # migrate 2 -> campus 0 (cross-pair)
            {"t": 6.0, "host": 0, "to": 3},   # forwarded move: handoff inside campus 1
            {"t": 8.0, "host": 5, "to": -1},  # migrate home, campus 2
            {"t": 9.0, "host": 0, "to": -1},  # migrate home, campus 0
        ],
        flows=[
            # Campus-1 correspondent -> host 0's home address; the host
            # migrates *into* campus 1 mid-flow.
            {"start": 4.0, "src": 1, "host": 0, "interval": 0.5, "count": 8,
             "port": 40000},
            # Purely local flow inside campus 3.
            {"start": 2.0, "src": 3, "host": 6, "interval": 0.4, "count": 5,
             "port": 40001},
        ],
        pings=[
            {"t": 5.5, "src": 0, "host": 5},  # host 5 is visiting campus 0
            {"t": 7.0, "src": 2, "host": 0},  # host 0 is visiting campus 1
            {"t": 10.5, "src": 3, "host": 0},  # after it migrated home
        ],
    )


def partition_faults_spec() -> ScenarioSpec:
    """Migrations racing router faults: campus 2's cell router crashes
    while its host is away and reboots before the host returns."""
    return ScenarioSpec(
        name="partition-faults",
        seed=1337,
        topology=dict(_TOPOLOGY),
        horizon=14.0,
        instruments=[{"kind": "health"}],
        partitions=4,
        hierarchy=dict(_HIERARCHY),
        moves=_ATTACHES
        + [
            {"t": 1.2, "host": 4, "to": 4},   # local handoff, campus 2
            {"t": 2.5, "host": 2, "to": 6},   # migrate 1 -> campus 3 (cross-pair)
            {"t": 3.5, "host": 7, "to": 1},   # migrate 3 -> campus 0
            {"t": 6.5, "host": 4, "to": 5},   # local handoff onto rebooting cell
            {"t": 9.0, "host": 2, "to": -1},  # migrate home, campus 1
            {"t": 10.0, "host": 7, "to": -1},  # migrate home, campus 3
        ],
        faults=[
            {"t": 5.0, "node": "FR0", "kind": "crash", "campus": 2},
            {"t": 6.0, "node": "FR0", "kind": "reboot", "campus": 2},
        ],
        flows=[
            # Campus-0 correspondent -> host 7 (visiting campus 0).
            {"start": 4.0, "src": 0, "host": 7, "interval": 0.5, "count": 10,
             "port": 40000},
        ],
        pings=[
            {"t": 4.5, "src": 3, "host": 2},  # host 2 is visiting campus 3
            {"t": 7.5, "src": 2, "host": 4},  # local ping around the fault
            {"t": 11.0, "src": 1, "host": 2},  # after it migrated home
        ],
    )


def partition_load_spec(
    partitions: int = 4,
    hosts_per_campus: int = 25_000,
    moves_per_host: int = 2,
    horizon: float = 6.0,
    depth: int = 2,
    branching: int = 2,
    hop_delay: float = 0.01,
    seed: int = 7,
) -> ScenarioSpec:
    """The E4 scale scenario: each campus models ``hosts_per_campus``
    statistical hosts through the :class:`RegistrationLoadModel` (bulk
    registration/update events, cross-campus updates exported over the
    partition boundary) while a handful of real mobile hosts ride along
    for protocol fidelity.  Total modeled population is
    ``partitions * hosts_per_campus`` — the 10^5–10^6-host regime the
    paper's scalability argument extrapolates to."""
    topology = dict(_TOPOLOGY)
    topology["load"] = {
        "n_hosts": int(hosts_per_campus),
        "moves_per_host": int(moves_per_host),
    }
    return ScenarioSpec(
        name=f"partition-load-{partitions}x{hosts_per_campus}",
        seed=seed,
        topology=topology,
        horizon=horizon,
        instruments=[{"kind": "health"}],
        partitions=partitions,
        hierarchy={"depth": depth, "branching": branching,
                   "hop_delay": hop_delay},
        moves=[
            {"t": round(0.2 + 0.1 * h, 3), "host": h, "to": -1}
            for h in range(2 * partitions)
        ],
    )


def partition_corpus_specs() -> List[ScenarioSpec]:
    """The pinned pair the smoke job and benchmarks run."""
    return [partition_handoff_spec(), partition_faults_spec()]
