"""Tests for the seeded scenario fuzzer, the shrinker, and the CLI."""

import json

import pytest

from repro.invariants import fuzz
from repro.invariants.cli import audit_main, fuzz_main


class TestScenarioGeneration:
    def test_same_seed_same_scenario(self):
        assert fuzz.make_scenario(7) == fuzz.make_scenario(7)

    def test_different_seeds_differ(self):
        assert fuzz.make_scenario(1) != fuzz.make_scenario(2)

    def test_profiles_are_distinct_streams(self):
        assert fuzz.make_scenario(3, "quick") != fuzz.make_scenario(3, "default")

    def test_schedules_are_sorted_and_bounded(self):
        for seed in range(12):
            scenario = fuzz.make_scenario(seed, "quick")
            times = [m["t"] for m in scenario["moves"]]
            assert times == sorted(times)
            assert scenario["max_previous_sources"] in (1, 2, 4, 8)
            # Probes live in the quiet tail, after moves and faults.
            last_active = max(
                [m["t"] for m in scenario["moves"]]
                + [f["t"] for f in scenario["faults"]],
                default=0.0,
            )
            for probe in scenario["probes"]:
                assert probe["t"] > last_active

    def test_scenario_is_json_serializable(self):
        scenario = fuzz.make_scenario(5)
        assert json.loads(json.dumps(scenario)) == scenario


class TestExecution:
    def test_quick_seeds_run_clean_at_head(self):
        for seed in (0, 1):
            auditor = fuzz.run_scenario(fuzz.make_scenario(seed, "quick"))
            assert auditor.ok, f"seed {seed}:\n{auditor.render()}"
            assert auditor.packets_tracked > 0

    def test_fuzz_cell_returns_flat_metrics(self):
        metrics = fuzz.fuzz_cell(seed=0, profile="quick")
        assert metrics["violations"] == 0
        assert metrics["violated_rules"] == ""
        assert metrics["packets_tracked"] > 0


class TestShrinking:
    def make_fat_scenario(self):
        scenario = fuzz.make_scenario(0, "quick")
        scenario["moves"] = [
            {"t": 1.0, "host": 0, "to": 0},
            {"t": 2.0, "host": 0, "to": 1},
            {"t": 3.0, "host": 0, "to": -1},
        ]
        scenario["faults"] = [
            {"t": 4.0, "node": "HR", "kind": "crash"},
            {"t": 6.0, "node": "HR", "kind": "reboot"},
        ]
        scenario["flows"] = [
            {"start": 1.0, "src": 0, "host": 0, "interval": 1.0, "count": 3, "port": 1},
            {"start": 2.0, "src": 1, "host": 0, "interval": 1.0, "count": 3, "port": 2},
        ]
        scenario["probes"] = [{"t": 30.0, "src": 0, "host": 0}]
        return scenario

    def test_shrinks_to_the_triggering_entries(self, monkeypatch):
        """Greedy deletion keeps exactly the schedule entries the
        violation needs: here, the crash fault and the second flow."""

        def fake_rules(scenario, cache):
            has_crash = any(f["kind"] == "crash" for f in scenario["faults"])
            has_flow2 = any(f["port"] == 2 for f in scenario["flows"])
            return {"conservation"} if has_crash and has_flow2 else set()

        monkeypatch.setattr(fuzz, "_forked_rules", fake_rules)
        minimal = fuzz.shrink_scenario(self.make_fat_scenario())
        assert minimal["moves"] == []
        assert minimal["probes"] == []
        assert [f["kind"] for f in minimal["faults"]] == ["crash"]
        assert [f["port"] for f in minimal["flows"]] == [2]

    def test_clean_scenario_is_returned_unchanged(self, monkeypatch):
        monkeypatch.setattr(fuzz, "_forked_rules", lambda s, cache: set())
        scenario = self.make_fat_scenario()
        assert fuzz.shrink_scenario(scenario) == scenario

    def test_shrink_respects_max_runs(self, monkeypatch):
        calls = []

        def fake_rules(scenario, cache):
            calls.append(1)
            return {"conservation"}

        monkeypatch.setattr(fuzz, "_forked_rules", fake_rules)
        fuzz.shrink_scenario(self.make_fat_scenario(), rules={"conservation"},
                             max_runs=5)
        assert len(calls) <= 5


class TestArtifacts:
    def test_write_and_load_roundtrip(self, tmp_path):
        scenario = fuzz.make_scenario(9, "quick")
        path = fuzz.write_artifact(tmp_path, scenario, [], scenario)
        assert path.name == "repro_seed9.json"
        loaded = fuzz.load_scenario(path)
        assert loaded == scenario

    def test_load_rejects_non_scenario_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            fuzz.load_scenario(path)


class TestCLI:
    def test_audit_figure1_exits_zero(self, capsys):
        assert audit_main(["figure1"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_audit_loop_exits_zero(self, capsys):
        assert audit_main(["loop"]) == 0

    def test_audit_unknown_scenario_exits_two(self, capsys):
        assert audit_main(["no-such-scenario"]) == 2

    def test_audit_replays_artifact(self, tmp_path, capsys):
        scenario = fuzz.make_scenario(0, "quick")
        path = fuzz.write_artifact(tmp_path, scenario, [], scenario)
        assert audit_main([str(path)]) == 0

    def test_fuzz_smoke_exits_zero(self, tmp_path, capsys):
        code = fuzz_main(
            ["--seeds", "2", "--quick", "--artifact-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 seeds" in out and "0 with violations" in out
        assert list(tmp_path.iterdir()) == []  # no repros on a clean run
