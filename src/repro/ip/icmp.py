"""ICMP messages (RFC 792), router discovery (RFC 1256), and the paper's
new **location update** message type (Section 4.3).

The paper defines the location update as a new ICMP type "due to its
similarity with the existing ICMP redirect message type, and also to aid
in backwards compatibility": hosts that do not implement MHRP silently
discard unknown ICMP types (RFC 1122), which the node layer honours.

Error messages quote the offending packet.  Section 4.5 leans on the
quoting rules, so both variants are modelled: a full-packet quote, or the
minimal "IP header + 8 bytes" quote — a cache agent can only reverse the
tunnel transforms if the quote covers the whole MHRP header plus 8 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PacketError
from repro.ip.address import IPAddress
from repro.ip.packet import IPPacket

# Message types.
TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_REDIRECT = 5
TYPE_ECHO_REQUEST = 8
TYPE_ROUTER_ADVERTISEMENT = 9
TYPE_ROUTER_SOLICITATION = 10
TYPE_TIME_EXCEEDED = 11
#: The paper's new ICMP type for MHRP location updates.
TYPE_LOCATION_UPDATE = 40

# Destination-unreachable codes.
CODE_NET_UNREACHABLE = 0
CODE_HOST_UNREACHABLE = 1
CODE_PROTOCOL_UNREACHABLE = 2
CODE_PORT_UNREACHABLE = 3
CODE_FRAG_NEEDED = 4  # "fragmentation needed and DF set"

_ICMP_HEADER_LEN = 8


@dataclass
class ICMPMessage:
    """Base class; concrete subclasses below define their bodies."""

    icmp_type: int = 0
    code: int = 0

    @property
    def is_error(self) -> bool:
        return self.icmp_type in (TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED)

    @property
    def byte_length(self) -> int:
        return _ICMP_HEADER_LEN

    def to_bytes(self) -> bytes:
        return bytes([self.icmp_type, self.code]) + b"\x00" * (_ICMP_HEADER_LEN - 2)


@dataclass
class EchoMessage(ICMPMessage):
    """Echo request/reply with identifier, sequence, and optional data."""

    identifier: int = 0
    sequence: int = 0
    data: bytes = b""

    @property
    def byte_length(self) -> int:
        return _ICMP_HEADER_LEN + len(self.data)

    def to_bytes(self) -> bytes:
        head = bytearray(_ICMP_HEADER_LEN)
        head[0], head[1] = self.icmp_type, self.code
        head[4:6] = (self.identifier & 0xFFFF).to_bytes(2, "big")
        head[6:8] = (self.sequence & 0xFFFF).to_bytes(2, "big")
        return bytes(head) + self.data

    @classmethod
    def from_bytes(cls, data: bytes) -> "EchoMessage":
        """Exact inverse of :meth:`to_bytes` (trailing bytes are the
        echo data by definition, so anything parses)."""
        if len(data) < _ICMP_HEADER_LEN:
            raise PacketError(f"echo message truncated ({len(data)} bytes)")
        if data[0] not in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY):
            raise PacketError(f"not an echo message (type {data[0]})")
        return cls(
            icmp_type=data[0],
            code=data[1],
            identifier=int.from_bytes(data[4:6], "big"),
            sequence=int.from_bytes(data[6:8], "big"),
            data=bytes(data[_ICMP_HEADER_LEN:]),
        )

    @classmethod
    def request(cls, identifier: int, sequence: int, data: bytes = b"") -> "EchoMessage":
        return cls(icmp_type=TYPE_ECHO_REQUEST, identifier=identifier, sequence=sequence, data=data)

    @classmethod
    def reply_to(cls, request: "EchoMessage") -> "EchoMessage":
        return cls(
            icmp_type=TYPE_ECHO_REPLY,
            identifier=request.identifier,
            sequence=request.sequence,
            data=request.data,
        )


@dataclass
class ICMPError(ICMPMessage):
    """Destination-unreachable / time-exceeded, quoting the bad packet.

    ``quote_full`` selects between quoting the entire original packet and
    the RFC 792 minimum (IP header + 8 bytes beyond it).  Section 4.5 of
    the paper distinguishes exactly these cases.
    """

    quoted: Optional[IPPacket] = None
    quote_full: bool = False
    #: Upper bound on quoted bytes, set by the generating node so the
    #: error message itself fits its outgoing MTU (RFC 1812 caps error
    #: messages rather than fragmenting them).  ``None`` = unlimited.
    max_quote: Optional[int] = None

    @property
    def quoted_bytes(self) -> int:
        """How many bytes of the original packet the quote carries."""
        if self.quoted is None:
            return 0
        if self.quote_full:
            size = self.quoted.total_length
        else:
            beyond_header = min(8, self.quoted.payload.byte_length)
            size = self.quoted.header_length + beyond_header
        if self.max_quote is not None:
            size = min(size, max(self.max_quote, 0))
        return size

    def quote_covers_mhrp(self, mhrp_header_length: int) -> bool:
        """Whether the quote includes the whole MHRP header plus 8 bytes.

        Per Section 4.5, this is the condition under which a cache agent
        can reverse its transforms and forward the error onward; with a
        shorter quote "little can be done ... beyond deleting its cache
        entry".
        """
        if self.quoted is None:
            return False
        needed = self.quoted.header_length + mhrp_header_length + 8
        return self.quoted_bytes >= min(needed, self.quoted.total_length)

    @property
    def byte_length(self) -> int:
        return _ICMP_HEADER_LEN + self.quoted_bytes

    def to_bytes(self) -> bytes:
        head = bytearray(_ICMP_HEADER_LEN)
        head[0], head[1] = self.icmp_type, self.code
        quote = self.quoted.to_bytes()[: self.quoted_bytes] if self.quoted else b""
        return bytes(head) + quote

    @classmethod
    def unreachable(
        cls, quoted: IPPacket, code: int = CODE_HOST_UNREACHABLE, quote_full: bool = False
    ) -> "ICMPError":
        return cls(
            icmp_type=TYPE_DEST_UNREACHABLE,
            code=code,
            quoted=quoted.copy(),
            quote_full=quote_full,
        )

    @classmethod
    def time_exceeded(cls, quoted: IPPacket, quote_full: bool = False) -> "ICMPError":
        return cls(icmp_type=TYPE_TIME_EXCEEDED, quoted=quoted.copy(), quote_full=quote_full)


@dataclass
class LocationUpdate(ICMPMessage):
    """The paper's new ICMP message (Section 4.3).

    Reports that packets for ``mobile_host`` should be tunneled to
    ``foreign_agent``.  A zero ``foreign_agent`` means the host is at home
    and the recipient should *delete* its cache entry (Section 6.3); a
    ``purge`` update is used for loop dissolution (Section 5.3), which
    also deletes the entry.
    """

    mobile_host: IPAddress = field(default_factory=IPAddress.zero)
    foreign_agent: IPAddress = field(default_factory=IPAddress.zero)
    purge: bool = False

    def __post_init__(self) -> None:
        self.icmp_type = TYPE_LOCATION_UPDATE

    @property
    def clears_entry(self) -> bool:
        """True when the recipient should drop its cache entry."""
        return self.purge or self.foreign_agent.is_zero

    @property
    def byte_length(self) -> int:
        # type/code/checksum/unused (8) + mobile host (4) + foreign agent (4).
        return _ICMP_HEADER_LEN + 8

    def to_bytes(self) -> bytes:
        head = bytearray(_ICMP_HEADER_LEN)
        head[0], head[1] = self.icmp_type, 1 if self.purge else 0
        return bytes(head) + self.mobile_host.to_bytes() + self.foreign_agent.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "LocationUpdate":
        """Exact inverse of :meth:`to_bytes` (strict: fixed size)."""
        if len(data) < _ICMP_HEADER_LEN + 8:
            raise PacketError(f"location update truncated ({len(data)} bytes)")
        if len(data) > _ICMP_HEADER_LEN + 8:
            raise PacketError(
                f"location update has {len(data) - _ICMP_HEADER_LEN - 8} "
                f"trailing byte(s)"
            )
        if data[0] != TYPE_LOCATION_UPDATE:
            raise PacketError(f"not a location update (type {data[0]})")
        if data[1] not in (0, 1):
            raise PacketError(f"bad location-update purge flag {data[1]}")
        return cls(
            mobile_host=IPAddress.from_bytes(data[8:12]),
            foreign_agent=IPAddress.from_bytes(data[12:16]),
            purge=bool(data[1]),
        )

    def __repr__(self) -> str:
        if self.purge:
            return f"<LocationUpdate PURGE {self.mobile_host}>"
        return f"<LocationUpdate {self.mobile_host} at {self.foreign_agent}>"


@dataclass
class RouterAdvertisement(ICMPMessage):
    """RFC 1256 router advertisement, extended with the MHRP agent bits.

    The paper's agent discovery (Section 3) is "similar to the Internet's
    ICMP router discovery protocol"; the advertisement carries whether the
    sender is willing to act as a home agent and/or foreign agent.
    """

    router_address: IPAddress = field(default_factory=IPAddress.zero)
    lifetime: float = 30.0
    is_home_agent: bool = False
    is_foreign_agent: bool = False
    #: Chosen afresh each advertiser (re)start; rides the RFC 1256
    #: preference word on the wire so reboot detection (Section 5.2)
    #: survives serialization.
    boot_id: int = 0

    def __post_init__(self) -> None:
        self.icmp_type = TYPE_ROUTER_ADVERTISEMENT

    @property
    def byte_length(self) -> int:
        # header (8) + one address entry (8) + agent-bits extension (4).
        return _ICMP_HEADER_LEN + 12

    def to_bytes(self) -> bytes:
        head = bytearray(_ICMP_HEADER_LEN)
        head[0], head[1] = self.icmp_type, self.code & 0xFF
        head[4] = 1  # num addrs
        head[5] = 2  # addr entry size (words): address + preference
        head[6:8] = int(self.lifetime).to_bytes(2, "big")
        preference = self.boot_id & 0xFFFFFFFF
        flags = (1 if self.is_home_agent else 0) | (2 if self.is_foreign_agent else 0)
        return (
            bytes(head)
            + self.router_address.to_bytes()
            + preference.to_bytes(4, "big")
            + flags.to_bytes(4, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RouterAdvertisement":
        """Exact inverse of :meth:`to_bytes` (strict: fixed size)."""
        if len(data) < _ICMP_HEADER_LEN + 12:
            raise PacketError(f"advertisement truncated ({len(data)} bytes)")
        if len(data) > _ICMP_HEADER_LEN + 12:
            raise PacketError(
                f"advertisement has {len(data) - _ICMP_HEADER_LEN - 12} "
                f"trailing byte(s)"
            )
        if data[0] != TYPE_ROUTER_ADVERTISEMENT:
            raise PacketError(f"not an advertisement (type {data[0]})")
        flags = int.from_bytes(data[16:20], "big")
        if flags > 3:
            raise PacketError(f"bad agent-role flags {flags}")
        return cls(
            code=data[1],
            router_address=IPAddress.from_bytes(data[8:12]),
            lifetime=float(int.from_bytes(data[6:8], "big")),
            is_home_agent=bool(flags & 1),
            is_foreign_agent=bool(flags & 2),
            boot_id=int.from_bytes(data[12:16], "big"),
        )

    def __repr__(self) -> str:
        roles = []
        if self.is_home_agent:
            roles.append("HA")
        if self.is_foreign_agent:
            roles.append("FA")
        return f"<AgentAdvert {self.router_address} [{'/'.join(roles) or 'router'}]>"


@dataclass
class RouterSolicitation(ICMPMessage):
    """RFC 1256 solicitation; mobile hosts multicast one to find agents."""

    def __post_init__(self) -> None:
        self.icmp_type = TYPE_ROUTER_SOLICITATION
