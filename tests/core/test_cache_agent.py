"""Unit tests for the location cache, rate limiter, and cache agent."""

import pytest

from repro.core.cache_agent import (
    CacheAgent,
    LocationCache,
    UpdateRateLimiter,
    send_location_update,
)
from repro.ip.address import IPAddress

MH = IPAddress("10.2.0.10")
FA = IPAddress("10.4.0.254")
FA2 = IPAddress("10.5.0.254")


class TestLocationCache:
    def test_put_get(self):
        cache = LocationCache()
        cache.put(MH, FA)
        assert cache.get(MH) == FA
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = LocationCache()
        assert cache.get(MH) is None
        assert cache.misses == 1

    def test_update_replaces(self):
        cache = LocationCache()
        cache.put(MH, FA)
        cache.put(MH, FA2)
        assert cache.get(MH) == FA2
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = LocationCache(capacity=2)
        a, b, c = IPAddress("1.0.0.1"), IPAddress("1.0.0.2"), IPAddress("1.0.0.3")
        cache.put(a, FA)
        cache.put(b, FA)
        cache.get(a)        # a is now most recently used
        cache.put(c, FA)    # evicts b
        assert a in cache
        assert b not in cache
        assert c in cache
        assert cache.evictions == 1

    def test_delete(self):
        cache = LocationCache()
        cache.put(MH, FA)
        assert cache.delete(MH)
        assert not cache.delete(MH)
        assert MH not in cache

    def test_peek_has_no_side_effects(self):
        cache = LocationCache()
        cache.put(MH, FA)
        assert cache.peek(MH) == FA
        assert cache.hits == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LocationCache(capacity=0)


class TestUpdateRateLimiter:
    def test_first_update_allowed(self):
        limiter = UpdateRateLimiter(min_interval=1.0)
        assert limiter.allow(FA, now=0.0)

    def test_burst_suppressed(self):
        limiter = UpdateRateLimiter(min_interval=1.0)
        assert limiter.allow(FA, now=0.0)
        assert not limiter.allow(FA, now=0.5)
        assert limiter.suppressed == 1

    def test_allowed_after_interval(self):
        limiter = UpdateRateLimiter(min_interval=1.0)
        assert limiter.allow(FA, now=0.0)
        assert limiter.allow(FA, now=1.5)

    def test_destinations_independent(self):
        limiter = UpdateRateLimiter(min_interval=1.0)
        assert limiter.allow(FA, now=0.0)
        assert limiter.allow(FA2, now=0.0)

    def test_lru_tracking_capacity(self):
        limiter = UpdateRateLimiter(min_interval=100.0, capacity=1)
        assert limiter.allow(FA, now=0.0)
        assert limiter.allow(FA2, now=0.0)   # evicts FA's record
        assert limiter.allow(FA, now=0.1)    # forgotten, so allowed again


class TestCacheAgentTunneling:
    def test_sender_cache_hit_builds_8_byte_header(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        agent = CacheAgent(a)
        mh, fa = IPAddress("9.0.0.1"), net.host(2)
        agent.learn(mh, fa)
        from repro.ip.packet import IPPacket, RawPayload
        from repro.ip.protocols import MHRP, UDP

        seen = []
        b.register_protocol(MHRP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net.host(1), dst=mh, protocol=UDP, payload=RawPayload(b"x")))
        sim.run_until_idle()
        assert len(seen) == 1
        assert seen[0].payload.header.byte_length == 8
        assert seen[0].src == net.host(1)  # untouched

    def test_transit_cache_hit_builds_12_byte_header(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        agent = CacheAgent(r)
        mh = IPAddress("9.0.0.1")
        agent.learn(mh, net_b.host(1))  # "foreign agent" is B for the test
        from repro.ip.packet import IPPacket, RawPayload
        from repro.ip.protocols import MHRP, UDP

        seen = []
        b.register_protocol(MHRP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net_a.host(1), dst=mh, protocol=UDP))
        sim.run_until_idle()
        assert len(seen) == 1
        header = seen[0].payload.header
        assert header.byte_length == 12
        assert header.previous_sources == [net_a.host(1)]
        assert seen[0].src == r.primary_address

    def test_miss_means_normal_routing(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        CacheAgent(a)
        from repro.ip.packet import IPPacket
        from repro.ip.protocols import UDP

        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert len(seen) == 1
        assert seen[0].protocol == UDP

    def test_disabled_agent_does_nothing(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        agent = CacheAgent(a, enabled=False)
        agent.cache.put(net.host(2), IPAddress("9.9.9.9"))
        from repro.ip.packet import IPPacket
        from repro.ip.protocols import UDP

        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert len(seen) == 1


class TestCacheAgentUpdates:
    def test_location_update_installs_entry(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        agent = CacheAgent(a)
        send_location_update(b, net.host(1), MH, FA)
        sim.run_until_idle()
        assert agent.cache.peek(MH) == FA

    def test_zero_update_clears_entry(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        agent = CacheAgent(a)
        agent.learn(MH, FA)
        send_location_update(b, net.host(1), MH, IPAddress.zero())
        sim.run_until_idle()
        assert MH not in agent.cache

    def test_purge_update_clears_entry(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        agent = CacheAgent(a)
        agent.learn(MH, FA)
        send_location_update(b, net.host(1), MH, FA2, purge=True)
        sim.run_until_idle()
        assert MH not in agent.cache

    def test_update_ignored_by_non_mhrp_host(self, two_hosts_one_lan):
        """Backwards compatibility (Section 4.3): hosts without MHRP
        silently discard the unknown ICMP type."""
        sim, lan, a, b, net = two_hosts_one_lan
        # a has NO cache agent; the update must vanish without errors.
        errors = []
        b.on_icmp_error(lambda p, e: errors.append(e))
        send_location_update(b, net.host(1), MH, FA)
        sim.run_until_idle()
        assert errors == []

    def test_snooping_router_caches_forwarded_updates(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        agent = CacheAgent(r, examine_forwarded=True)
        send_location_update(b, net_a.host(1), MH, FA)
        sim.run_until_idle()
        assert agent.cache.peek(MH) == FA

    def test_non_snooping_router_does_not_cache(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        agent = CacheAgent(r, examine_forwarded=False)
        send_location_update(b, net_a.host(1), MH, FA)
        sim.run_until_idle()
        assert MH not in agent.cache


class TestSendLocationUpdate:
    def test_never_to_self_or_zero_or_mh(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        assert not send_location_update(a, net.host(1), MH, FA)   # self
        assert not send_location_update(a, IPAddress.zero(), MH, FA)
        assert not send_location_update(a, MH, MH, FA)            # the MH itself

    def test_rate_limited(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        limiter = UpdateRateLimiter(min_interval=10.0)
        assert send_location_update(a, net.host(2), MH, FA, limiter)
        assert not send_location_update(a, net.host(2), MH, FA, limiter)
