"""The MHRP invariant catalogue.

Each rule is a named, machine-checkable property drawn from the paper;
the :class:`~repro.invariants.auditor.InvariantAuditor` evaluates them
continuously against a running simulation and records a
:class:`Violation` for every breach.

The catalogue (rule ids are stable — regression tests pin them):

==========================  =================================================
rule id                     property
==========================  =================================================
``conservation``            every observed packet reaches a terminal: local
                            delivery, a dataplane drop with a reason, a lost
                            frame, or absorption by a crashed node
``drop-reason``             every dataplane drop names a reason from the
                            known taxonomy (no anonymous discards)
``list-bound``              the previous-source list never exceeds the
                            configured bound (Section 4.4)
``list-no-duplicates``      no duplicate addresses on the list before any
                            overflow flush / dissolution shrank it
                            (Section 5.3's loop-detection precondition)
``list-first-is-sender``    the first list entry is the packet's original
                            sender (Section 5.1), same gating
``wire-roundtrip``          the MHRP header round-trips through its wire
                            encoding exactly, and the decoder rejects
                            trailing bytes and truncation
``wire-checksum``           the decoder rejects a checksum-corrupted header
``ttl-valid``               TTL stays in (0, 255] on every forwarded hop
``loop-budget``             re-tunnels per packet are bounded; once a loop
                            is dissolved the packet takes at most a few
                            more tunnel hops (geometric contraction's
                            operational consequence, Section 5.3)
``cache-convergence``       a probe sent after caches were refreshed by an
                            identical warm probe is never re-tunneled
                            (Section 5.1's lazy convergence, made testable)
==========================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Every reason :meth:`repro.ip.dataplane.Dataplane.drop` is called with
#: anywhere in the library.  The ``drop-reason`` rule fails on anything
#: else, so a new discard path must be named here to ship.
KNOWN_DROP_REASONS = frozenset(
    {
        # dataplane pipeline
        "not-a-router",
        "ttl-expired",
        "no-route",
        "mtu-exceeded",
        "protocol-unreachable",
        # node callbacks
        "arp-failed",
        "malformed-icmp",
        # mobility roles
        "malformed-mhrp",
        "mh-disconnected",
        "mhrp-recovery",
        "mhrp-loop-dissolved",
    }
)

#: Hard ceiling on tunnel hops for one packet.  TTL (<= 255) backstops
#: real loops far below this, so the cap only fires when something
#: refreshes TTL or re-tunnels without forwarding — both bugs.
MAX_RETUNNELS_PER_PACKET = 128

#: Tunnel hops allowed *after* a dissolve event for the same packet:
#: dissolution sends the packet straight home (one hop), where the home
#: agent re-tunnels at most once to the current agent.
POST_DISSOLVE_RETUNNEL_BUDGET = 8


@dataclass(frozen=True)
class Rule:
    """One catalogue entry."""

    id: str
    section: str
    summary: str


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule("conservation", "4.1", "every packet ends delivered, dropped with a reason, or lost on a link"),
        Rule("drop-reason", "4.1", "every dataplane drop names a known reason"),
        Rule("list-bound", "4.4", "previous-source list length <= configured bound"),
        Rule("list-no-duplicates", "5.3", "no duplicate previous sources before a flush/dissolve"),
        Rule("list-first-is-sender", "5.1", "first previous source is the original sender"),
        Rule("wire-roundtrip", "4.2", "MHRP header wire encoding round-trips and rejects trailing/truncated bytes"),
        Rule("wire-checksum", "4.2", "MHRP header decoder rejects checksum corruption"),
        Rule("ttl-valid", "5.3", "TTL in (0, 255] on every forwarded hop"),
        Rule("loop-budget", "5.3", "tunnel hops per packet bounded; few hops after a dissolve"),
        Rule("cache-convergence", "5.1", "refreshed caches never re-tunnel the next packet"),
    )
}


@dataclass
class Violation:
    """One observed invariant breach."""

    rule: str
    time: float
    node: str
    uid: Optional[int] = None
    message: str = ""
    detail: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" uid={self.uid}" if self.uid is not None else ""
        return f"[{self.time:10.6f}] {self.rule:<22} {self.node:<12}{where} {self.message}"

    def to_record(self) -> dict:
        return {
            "rule": self.rule,
            "time": self.time,
            "node": self.node,
            "uid": self.uid,
            "message": self.message,
            "detail": {k: repr(v) for k, v in self.detail.items()},
        }
