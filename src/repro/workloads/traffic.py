"""Traffic generators.

All generators run over the real transport layer (UDP) so every packet
traverses the full protocol path, including tunnels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, Tuple

from repro.ip.address import IPAddress
from repro.ip.host import Host

try:  # numpy is optional: bulk generators fall back to pure python
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships in the dev image
    _np = None


@dataclass
class DeliveryLog:
    """What a receiver observed, for delivery/latency accounting."""

    received: List[Tuple[float, int]] = field(default_factory=list)  # (time, seq)

    @property
    def count(self) -> int:
        return len(self.received)

    def sequence_numbers(self) -> List[int]:
        return [seq for _, seq in self.received]

    def arrival_stats(self) -> dict:
        """Aggregate arrival accounting: count, time span, mean gap, and
        out-of-order count — vectorized over the whole log when numpy is
        available, with a float-identical pure-python fallback (both
        forms use the same left-to-right float64 reductions)."""
        if not self.received:
            return {"count": 0, "first": None, "last": None,
                    "mean_gap": None, "reordered": 0}
        if _np is not None and len(self.received) > 1:
            arr = _np.asarray(self.received, dtype=_np.float64)
            times, seqs = arr[:, 0], arr[:, 1]
            gaps = _np.diff(times)
            return {
                "count": len(self.received),
                "first": float(times[0]),
                "last": float(times[-1]),
                "mean_gap": float(gaps.sum() / len(gaps)),
                "reordered": int((_np.diff(seqs) < 0).sum()),
            }
        times = [t for t, _ in self.received]
        seqs = [s for _, s in self.received]
        gaps = [b - a for a, b in zip(times, times[1:])]
        total = 0.0
        for gap in gaps:
            total += gap
        return {
            "count": len(self.received),
            "first": times[0],
            "last": times[-1],
            "mean_gap": (total / len(gaps)) if gaps else None,
            "reordered": sum(1 for a, b in zip(seqs, seqs[1:]) if b < a),
        }


class CBRStream:
    """A constant-bit-rate UDP stream from one host to another.

    Sequence numbers ride in the payload so the receiver can measure
    loss and reordering across handoffs.
    """

    def __init__(
        self,
        sender: Host,
        receiver: Host,
        dst_address: IPAddress,
        interval: float,
        payload_size: int = 64,
        port: int = 40000,
        start_at: float = 0.0,
        count: Optional[int] = None,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.dst_address = IPAddress(dst_address)
        self.interval = interval
        self.payload_size = max(payload_size, 8)
        self.port = port
        self.start_at = start_at
        self.count = count
        self.sent = 0
        self.log = DeliveryLog()
        self._sock = sender.udp.bind()
        receiver_sock = receiver.udp.bind(port)
        receiver_sock.on_receive = self._on_receive

    def start(self) -> None:
        self.sender.sim.schedule_at(self.start_at, self._tick, label="cbr-send")

    def _tick(self) -> None:
        if self.count is not None and self.sent >= self.count:
            return
        seq = self.sent
        self.sent += 1
        payload = seq.to_bytes(8, "big") + b"\x00" * (self.payload_size - 8)
        self._sock.send_to(payload, self.dst_address, self.port)
        if self.count is None or self.sent < self.count:
            self.sender.sim.schedule(self.interval, self._tick, label="cbr-send")

    def _on_receive(self, data: bytes, src: IPAddress, src_port: int) -> None:
        seq = int.from_bytes(data[:8], "big")
        self.log.received.append((self.receiver.sim.now, seq))

    @property
    def delivery_ratio(self) -> float:
        return self.log.count / self.sent if self.sent else 0.0

    def lost_sequences(self) -> List[int]:
        got = set(self.log.sequence_numbers())
        return [seq for seq in range(self.sent) if seq not in got]


class VectorCBRStream(CBRStream):
    """A :class:`CBRStream` whose whole send schedule is precomputed and
    bulk-installed up front (``count`` is therefore mandatory).

    Meant for bulk background traffic: N sends cost one
    :meth:`~repro.netsim.simulator.Simulator.schedule_many` call of
    lightweight bulk entries instead of N self-rescheduling events, and
    the send times are generated with ``numpy.cumsum`` when numpy is
    available.  Both the vectorized and the fallback schedule perform
    the identical left-to-right float64 additions the serial stream's
    ``now + interval`` rescheduling performs, so the wire-visible send
    times are bit-equal to a serial :class:`CBRStream` with the same
    parameters.

    Note the *event interleaving* differs from the serial stream (all
    sends are enqueued at start, so they draw earlier sequence numbers
    than protocol events scheduled later) — use the serial stream when a
    pinned trace depends on exact tie-break order against other
    same-instant events.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.count is None:
            raise ValueError("VectorCBRStream needs an explicit count")

    def start(self) -> None:
        times = self._send_times(self.count)
        self.sender.sim.schedule_many(
            (t, partial(self._send_seq, seq)) for seq, t in enumerate(times)
        )

    def _send_times(self, n: int) -> List[float]:
        if _np is not None:
            steps = _np.empty(n, dtype=_np.float64)
            steps[0] = self.start_at
            steps[1:] = self.interval
            return _np.cumsum(steps).tolist()
        times: List[float] = []
        t = self.start_at
        for _ in range(n):
            times.append(t)
            t = t + self.interval
        return times

    def _send_seq(self, seq: int) -> None:
        self.sent += 1
        payload = seq.to_bytes(8, "big") + b"\x00" * (self.payload_size - 8)
        self._sock.send_to(payload, self.dst_address, self.port)


class PoissonStream(CBRStream):
    """Like :class:`CBRStream` but with exponential inter-send times."""

    def _tick(self) -> None:
        if self.count is not None and self.sent >= self.count:
            return
        seq = self.sent
        self.sent += 1
        payload = seq.to_bytes(8, "big") + b"\x00" * (self.payload_size - 8)
        self._sock.send_to(payload, self.dst_address, self.port)
        if self.count is None or self.sent < self.count:
            gap = self.sender.sim.rng.expovariate(1.0 / self.interval)
            self.sender.sim.schedule(gap, self._tick, label="poisson-send")


class _UDPEcho:
    """Echo handler as a deepcopy-safe callable (a closure would keep
    referencing the pre-fork socket after a session fork)."""

    def __init__(self, sock) -> None:
        self.sock = sock

    def __call__(self, data: bytes, src: IPAddress, src_port: int) -> None:
        self.sock.send_to(data, src, src_port)


class RequestResponseClient:
    """A UDP request/response pair measuring round-trip times.

    The server half echoes requests; the client records RTTs, which the
    E1 bench uses to show the triangle-route penalty disappearing once
    a location is cached.
    """

    def __init__(
        self,
        client: Host,
        server: Host,
        server_address: IPAddress,
        port: int = 41000,
    ) -> None:
        self.client = client
        self.server_address = IPAddress(server_address)
        self.port = port
        self.rtts: List[float] = []
        self._pending: dict[int, float] = {}
        self._next_id = 0
        self._sock = client.udp.bind()
        self._sock.on_receive = self._on_reply
        server_sock = server.udp.bind(port)
        server_sock.on_receive = _UDPEcho(server_sock)

    def send_request(self, size: int = 64) -> None:
        request_id = self._next_id
        self._next_id += 1
        self._pending[request_id] = self.client.sim.now
        payload = request_id.to_bytes(8, "big") + b"\x00" * max(size - 8, 0)
        self._sock.send_to(payload, self.server_address, self.port)

    def _on_reply(self, data: bytes, src: IPAddress, src_port: int) -> None:
        request_id = int.from_bytes(data[:8], "big")
        sent_at = self._pending.pop(request_id, None)
        if sent_at is not None:
            self.rtts.append(self.client.sim.now - sent_at)
