"""The streaming journey index — a per-packet flight recorder.

Because MHRP rewrites packets in place, a logical packet keeps its uid
across every tunneling transform; the tracer records that uid on every
send, forward, delivery, drop, and tunnel event.  A
:class:`JourneyIndex` subscribed to the tracer stitches those into
:class:`Journey` objects *incrementally* — one dict lookup and one
append per entry — instead of rescanning the whole trace per uid the
way the original ``metrics.journey`` helpers did.

Memory is bounded: a journey is marked complete when its packet is
delivered or dropped, and once more than ``max_completed`` completed
journeys exist the oldest-completed are evicted.  In-flight journeys
are never evicted.  A "completed" journey that sees further events
(e.g. an MHRP delivery at a foreign agent followed by the last-hop
transmission) is simply re-opened, so the heuristic costs nothing in
accuracy on the protocols simulated here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from repro.netsim.trace import TraceEntry, Tracer


@dataclass
class JourneyStep:
    """One observed event in a packet's life."""

    time: float
    node: str
    kind: str           # "send" | "forward" | "deliver" | "drop" | tunnel event name
    detail: dict = field(default_factory=dict)


@dataclass
class Journey:
    """Everything the trace knows about one logical packet."""

    uid: int
    steps: List[JourneyStep] = field(default_factory=list)

    @property
    def nodes_visited(self) -> List[str]:
        """Nodes in visit order (consecutive duplicates collapsed)."""
        out: List[str] = []
        for step in self.steps:
            if not out or out[-1] != step.node:
                out.append(step.node)
        return out

    @property
    def hops(self) -> int:
        """Router hops (forward events) plus the originating hop."""
        return sum(1 for s in self.steps if s.kind == "forward") + 1

    @property
    def tunnel_events(self) -> List[JourneyStep]:
        return [s for s in self.steps if s.kind.startswith("mhrp:")]

    @property
    def was_tunneled(self) -> bool:
        return bool(self.tunnel_events)

    @property
    def dropped(self) -> bool:
        return any(s.kind == "drop" for s in self.steps)

    @property
    def drop_reason(self) -> Optional[str]:
        for step in self.steps:
            if step.kind == "drop":
                return step.detail.get("reason")
        return None

    @property
    def delivered_at(self) -> Optional[str]:
        """The last node that locally delivered the packet, if any."""
        for step in reversed(self.steps):
            if step.kind == "deliver":
                return step.node
        return None

    def detoured_through(self, node: str) -> bool:
        return node in self.nodes_visited

    def __repr__(self) -> str:
        path = " -> ".join(self.nodes_visited)
        end = self.drop_reason or (f"delivered@{self.delivered_at}" if self.delivered_at else "?")
        return f"<Journey #{self.uid} {path} ({end})>"


#: Trace categories that contribute journey steps, and the step kind
#: each maps to.  ``mhrp.tunnel`` maps per-event (``mhrp:<event>``).
_KIND_BY_CATEGORY = {
    "ip.send": "send",
    "ip.forward": "forward",
    "ip.deliver": "deliver",
    "ip.drop": "drop",
}


class JourneyIndex:
    """Builds journeys incrementally from a trace-entry stream.

    Feed it through :meth:`observe` (usually via
    ``tracer.subscribe(index.observe)``), or all at once with
    :meth:`from_entries`.  Journeys are kept in first-seen order.
    """

    def __init__(self, max_completed: Optional[int] = None) -> None:
        if max_completed is not None and max_completed < 1:
            raise ValueError(f"max_completed must be positive, got {max_completed}")
        self.max_completed = max_completed
        #: uid -> Journey, insertion (= first-seen) order.
        self._journeys: "OrderedDict[int, Journey]" = OrderedDict()
        #: uids currently complete, oldest-completed first (eviction order).
        self._completed: "OrderedDict[int, None]" = OrderedDict()
        self.evicted = 0
        self.entries_seen = 0

    @classmethod
    def from_entries(
        cls, entries: Iterable[TraceEntry], max_completed: Optional[int] = None
    ) -> "JourneyIndex":
        """Build an index from already-recorded entries in one pass."""
        index = cls(max_completed=max_completed)
        for entry in entries:
            index.observe(entry)
        return index

    def attach(self, tracer: Tracer, replay: bool = True) -> "JourneyIndex":
        """Subscribe to ``tracer``; with ``replay`` also absorb whatever
        it already recorded, so mid-run attachment misses nothing."""
        if replay:
            for entry in tracer.entries:
                self.observe(entry)
        tracer.subscribe(self.observe)
        return self

    # ------------------------------------------------------------------
    # The streaming path
    # ------------------------------------------------------------------
    def observe(self, entry: TraceEntry) -> None:
        """Absorb one trace entry (listener-compatible)."""
        self.entries_seen += 1
        uid = entry.detail.get("uid")
        if uid is None:
            return
        kind = _KIND_BY_CATEGORY.get(entry.category)
        if kind is None:
            if entry.category == "mhrp.tunnel":
                kind = f"mhrp:{entry.detail.get('event', '?')}"
            else:
                return
        journey = self._journeys.get(uid)
        if journey is None:
            journey = Journey(uid=uid)
            self._journeys[uid] = journey
        elif uid in self._completed:
            # The packet kept moving after a tentative completion
            # (tunnel-endpoint delivery): re-open it.
            del self._completed[uid]
        journey.steps.append(JourneyStep(
            time=entry.time, node=entry.node, kind=kind, detail=dict(entry.detail)
        ))
        if kind == "deliver" or kind == "drop":
            self._completed[uid] = None
            if self.max_completed is not None:
                while len(self._completed) > self.max_completed:
                    old_uid, _ = self._completed.popitem(last=False)
                    del self._journeys[old_uid]
                    self.evicted += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def journey(self, uid: int) -> Optional[Journey]:
        """The journey for ``uid``, or ``None`` if unseen (or evicted)."""
        return self._journeys.get(uid)

    def journeys(self) -> List[Journey]:
        """Every retained journey, first-seen order."""
        return list(self._journeys.values())

    def matching(self, predicate: Callable[[Journey], bool]) -> List[Journey]:
        """Retained journeys satisfying ``predicate``, first-seen order."""
        return [j for j in self._journeys.values() if predicate(j)]

    def uids(self) -> List[int]:
        return list(self._journeys)

    def in_flight(self) -> List[Journey]:
        """Journeys not (yet) delivered or dropped."""
        return [j for uid, j in self._journeys.items() if uid not in self._completed]

    def is_complete(self, uid: int) -> bool:
        return uid in self._completed

    def __len__(self) -> int:
        return len(self._journeys)

    def __iter__(self) -> Iterator[Journey]:
        return iter(self._journeys.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JourneyIndex {len(self._journeys)} journeys "
            f"({len(self._completed)} complete, {self.evicted} evicted)>"
        )
