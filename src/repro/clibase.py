"""Shared command-line plumbing for ``python -m repro <cmd>``.

Every subcommand parser is built through :func:`build_parser`, which
wires in the three flags all commands understand, spelled and
documented once:

- ``--seed N`` — the simulation seed (commands define their own
  default; sweeps interpret it as "run only this seed").
- ``--json`` — emit the machine-readable result on stdout instead of
  the human panel/table (parsed into ``args.as_json``).
- ``--quiet`` / ``-q`` — suppress informational chatter; results,
  failures, and regressions still print.

Commands add their own flags on top of the returned parser as usual.
"""

from __future__ import annotations

import argparse
from typing import Optional


def common_parent(seed_help: str = "simulation seed") -> argparse.ArgumentParser:
    """The parent parser carrying the uniform ``--seed/--json/--quiet``
    trio.  Not usable standalone (``add_help=False``); pass it via
    ``parents=[...]`` or use :func:`build_parser`."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("common options")
    group.add_argument("--seed", type=int, default=None, metavar="N", help=seed_help)
    group.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit machine-readable JSON on stdout instead of the human output",
    )
    group.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress informational output (results and failures still print)",
    )
    return parent


def build_parser(
    command: str,
    description: str,
    seed_help: Optional[str] = None,
) -> argparse.ArgumentParser:
    """An :class:`argparse.ArgumentParser` for ``python -m repro
    <command>`` with the common flag trio pre-wired."""
    return argparse.ArgumentParser(
        prog=f"python -m repro {command}",
        description=description,
        parents=[common_parent(seed_help or "simulation seed")],
    )
