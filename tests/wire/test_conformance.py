"""Cross-backend conformance: simulator vs the sans-io engine driver.

The corpus (Figure-1 walkthrough + three fuzz-derived campus scenarios)
must produce the same per-node protocol-event sequences and the same
timing-free health fingerprint on both backends.  The live UDP backend
runs the same corpus in tests/live/.
"""

import pytest

from repro.wire.conformance import (
    BackendRun,
    PROJECTED_CATEGORIES,
    ROBUST_HEALTH_KEYS,
    check_spec,
    compare_runs,
    conformance_specs,
    health_fingerprint,
    project_events,
)


class _Entry:
    def __init__(self, category, node, detail):
        self.category = category
        self.node = node
        self.detail = detail


class TestProjection:
    def test_only_protocol_categories_kept(self):
        entries = [
            _Entry("mhrp.register", "HA", {"event": "registered", "kind": "ha-register"}),
            _Entry("packet.sent", "S", {}),
            _Entry("mhrp.update", "R1", {"event": "sent"}),
            _Entry("icmp.echo", "S", {"event": "reply-received"}),
        ]
        projection = project_events(entries)
        assert list(projection) == ["HA"]

    def test_retransmits_collapse(self):
        """Consecutive identical tuples are one protocol step — a
        retransmitted registration is a timing artifact, not a
        divergence."""
        send = {"event": "send", "kind": "ha-register", "to": "10.2.0.254",
                "mobile_host": "10.2.0.10"}
        entries = [
            _Entry("mhrp.register", "M", dict(send, attempt=i))
            for i in range(3)
        ]
        projection = project_events(entries)
        assert len(projection["M"]) == 1

    def test_attempt_and_timestamps_dropped(self):
        a = _Entry("mhrp.register", "M", {"event": "send", "kind": "ha-register",
                                          "attempt": 0, "seq": 7})
        b = _Entry("mhrp.register", "M", {"event": "send", "kind": "ha-register",
                                          "attempt": 4, "seq": 12})
        pa = project_events([a])["M"][0]
        pb = project_events([b])["M"][0]
        assert pa == pb

    def test_fingerprint_is_the_robust_subset(self):
        summary = {key: i for i, key in enumerate(ROBUST_HEALTH_KEYS)}
        summary["registration_ms_p95"] = 123.0  # timing metric: excluded
        fingerprint = health_fingerprint(summary)
        assert set(fingerprint) == set(ROBUST_HEALTH_KEYS)


class TestComparison:
    def run(self, projection, fingerprint, backend="x"):
        return BackendRun(backend=backend, projection=projection,
                          fingerprint=fingerprint)

    def test_identical_runs_conform(self):
        proj = {"M": [("mhrp.register", "send")]}
        fp = {key: 0 for key in ROBUST_HEALTH_KEYS}
        report = compare_runs(self.run(proj, fp, "sim"), self.run(proj, fp, "eng"))
        assert report.ok
        assert "OK" in report.render()

    def test_sequence_divergence_detected(self):
        fp = {key: 0 for key in ROBUST_HEALTH_KEYS}
        a = self.run({"M": [("mhrp.register", "send"), ("mhrp.register", "registered")]}, fp)
        b = self.run({"M": [("mhrp.register", "send")]}, fp)
        report = compare_runs(a, b)
        assert not report.ok
        assert any("diverge at #1" in m for m in report.mismatches)

    def test_health_divergence_detected(self):
        proj = {}
        a = self.run(proj, {key: 0 for key in ROBUST_HEALTH_KEYS})
        fp = {key: 0 for key in ROBUST_HEALTH_KEYS}
        fp["loops_dissolved"] = 2
        report = compare_runs(a, self.run(proj, fp))
        assert not report.ok
        assert any("loops_dissolved" in m for m in report.mismatches)

    def test_extra_node_detected(self):
        fp = {key: 0 for key in ROBUST_HEALTH_KEYS}
        a = self.run({}, fp)
        b = self.run({"FR0": [("mhrp.loop", "dissolve")]}, fp)
        assert not compare_runs(a, b).ok


class TestCorpus:
    """The real thing: every corpus scenario, simulator vs engines."""

    @pytest.mark.parametrize(
        "spec", conformance_specs(), ids=lambda s: s.name
    )
    def test_engine_conforms_to_simulator(self, spec):
        report = check_spec(spec)
        assert report.ok, report.render()

    def test_corpus_shape(self):
        specs = conformance_specs()
        assert len(specs) >= 5  # walkthrough + >=3 fuzz-derived + local-query
        names = [spec.name for spec in specs]
        assert names[0] == "figure1-walkthrough"
        assert all(
            name.startswith("fuzz-conformance-") or name.startswith("local-query-")
            for name in names[1:]
        )
        # The Section 5.2 local-query variant rides in the pinned corpus.
        assert any(name.startswith("local-query-") for name in names)

    def test_projection_categories_are_protocol_events(self):
        assert set(PROJECTED_CATEGORIES) == {
            "mhrp.register", "mhrp.tunnel", "mhrp.loop",
        }
