"""Unit tests for the IP forwarding engine."""

import pytest

from repro.errors import ConfigurationError
from repro.ip import Host, IPNetwork, Router
from repro.ip.address import IPAddress
from repro.ip.icmp import (
    CODE_NET_UNREACHABLE,
    EchoMessage,
    ICMPError,
    TYPE_DEST_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
)
from repro.ip.node import CONSUMED, NetworkLayerExtension
from repro.ip.options import LSRROption
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import UDP
from repro.link import LAN


class TestRouting:
    def test_forwarding_across_router(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        replies = []
        a.on_icmp(0, lambda p, m: replies.append(m))
        a.ping(net_b.host(1))
        sim.run_until_idle()
        assert len(replies) == 1
        assert r.packets_forwarded >= 1

    def test_host_does_not_forward(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        # Hand B a transit packet: addressed elsewhere.
        packet = IPPacket(src=net.host(1), dst="99.0.0.1", protocol=UDP)
        b.packet_received(packet, b.interfaces["eth0"])
        assert b.packets_dropped == 1
        assert b.packets_forwarded == 0

    def test_ttl_decrements_per_router_hop(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP, ttl=10))
        sim.run_until_idle()
        assert len(seen) == 1
        assert seen[0].ttl == 9

    def test_ttl_expiry_generates_time_exceeded(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        errors = []
        a.on_icmp_error(lambda p, e: errors.append(e))
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP, ttl=1))
        sim.run_until_idle()
        assert len(errors) == 1
        assert errors[0].icmp_type == TYPE_TIME_EXCEEDED

    def test_no_route_generates_net_unreachable(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        errors = []
        a.on_icmp_error(lambda p, e: errors.append(e))
        a.send(IPPacket(src=net_a.host(1), dst="203.0.113.1", protocol=UDP))
        sim.run_until_idle()
        assert len(errors) == 1
        assert errors[0].icmp_type == TYPE_DEST_UNREACHABLE
        assert errors[0].code == CODE_NET_UNREACHABLE

    def test_unknown_protocol_generates_unreachable(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        errors = []
        a.on_icmp_error(lambda p, e: errors.append(e))
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=123))
        sim.run_until_idle()
        assert len(errors) == 1

    def test_no_error_about_an_error(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        # Deliver an ICMP error to a dead protocol path: B must not reply
        # with an error about the error.
        inner = IPPacket(src=net.host(2), dst=net.host(1), protocol=UDP)
        err = ICMPError.unreachable(inner)
        from repro.ip.protocols import ICMP

        packet = IPPacket(src=net.host(1), dst=net.host(2), protocol=ICMP, payload=err)
        before = sim.tracer.count("icmp.error", node="B")
        b.packet_received(packet, b.interfaces["eth0"])
        sim.run_until_idle()
        assert sim.tracer.count("icmp.error", node="B") == before


class TestInterfaces:
    def test_duplicate_interface_name_rejected(self, sim):
        h = Host(sim, "H")
        net = IPNetwork("10.0.0.0/24")
        h.add_interface("eth0", net.host(1), net)
        with pytest.raises(ConfigurationError):
            h.add_interface("eth0", net.host(2), net)

    def test_address_must_be_in_network(self, sim):
        h = Host(sim, "H")
        with pytest.raises(ConfigurationError):
            h.add_interface("eth0", "192.168.1.1", IPNetwork("10.0.0.0/24"))

    def test_addresses_and_lookup(self, sim):
        h = Host(sim, "H")
        net = IPNetwork("10.0.0.0/24")
        h.add_interface("eth0", net.host(1), net)
        assert h.has_address(net.host(1))
        assert not h.has_address(net.host(2))
        assert h.interface_for_address(net.host(1)).name == "eth0"
        assert h.primary_address == net.host(1)

    def test_no_interface_errors(self, sim):
        h = Host(sim, "H")
        with pytest.raises(ConfigurationError):
            _ = h.primary_interface


class TestBroadcast:
    def test_limited_broadcast_delivered_to_all_on_lan(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send_broadcast("eth0", UDP, RawPayload(b"hi"))
        sim.run_until_idle()
        assert len(seen) == 1
        assert seen[0].dst == "255.255.255.255"

    def test_broadcast_not_forwarded(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send_broadcast("eth0", UDP, RawPayload(b"hi"))
        sim.run_until_idle()
        assert seen == []


class TestExtensions:
    def test_outbound_extension_can_rewrite(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan

        class Rewriter(NetworkLayerExtension):
            def handle_outbound(self, packet):
                if packet.protocol == UDP:
                    return IPPacket(
                        src=packet.src, dst=net.host(2), protocol=UDP,
                        payload=packet.payload,
                    )
                return None

        a.add_extension(Rewriter())
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net.host(1), dst="99.9.9.9", protocol=UDP))
        sim.run_until_idle()
        assert len(seen) == 1

    def test_outbound_extension_can_consume(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan

        class Sink(NetworkLayerExtension):
            def __init__(self):
                self.eaten = []

            def handle_outbound(self, packet):
                self.eaten.append(packet)
                return CONSUMED

        sink = Sink()
        a.add_extension(sink)
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP))
        sim.run_until_idle()
        assert len(sink.eaten) == 1

    def test_transit_extension_sees_forwarded_packets(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router

        class Spy(NetworkLayerExtension):
            def __init__(self):
                self.seen = []

            def handle_transit(self, packet, in_iface):
                self.seen.append(packet)
                return None

        spy = Spy()
        r.add_extension(spy)
        b.register_protocol(UDP, lambda p, i: None)
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
        sim.run_until_idle()
        assert len(spy.seen) == 1


class TestCrashAndReboot:
    def test_crashed_node_black_holes(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        r.crash()
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
        sim.run_until_idle()
        assert seen == []

    def test_reboot_clears_arp_and_restores_service(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
        sim.run_until_idle()
        assert len(seen) == 1
        r.crash()
        r.reboot()
        assert r.arp["eth0"].cache == {}
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
        sim.run_until_idle()
        assert len(seen) == 2


class TestLSRRForwarding:
    def test_lsrr_packet_visits_listed_hop(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        # Route to B "via" the router's address explicitly using LSRR:
        # dst = router, LSRR lists B.  The router consumes the entry,
        # records itself, and re-routes to B.
        seen = []
        b.register_protocol(UDP, lambda p, i: seen.append(p))
        lsrr = LSRROption(route=[net_b.host(1)])
        packet = IPPacket(
            src=net_a.host(1), dst=net_a.host(254), protocol=UDP, options=[lsrr]
        )
        a.send(packet)
        sim.run_until_idle()
        assert len(seen) == 1
        got = seen[0]
        opt = got.find_lsrr()
        assert opt.exhausted
        # The recorded route now holds the router's ingress address.
        assert opt.route[0] == net_a.host(254)
