"""``python -m repro live`` — run a scenario over real UDP sockets.

Boots a ScenarioSpec topology as sans-io engines on loopback UDP (one
socket per node interface), runs the schedule against the wall clock at
a configurable speed factor, and reports the protocol-health summary.
``--conformance`` additionally runs the same spec on the discrete-event
simulator and diffs the two observations (per-node protocol-event
sequences plus the timing-free health fingerprint), exiting 1 on any
divergence — the same gate the CI ``live-smoke`` job runs.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.clibase import build_parser

LIVE_SCENARIOS = (
    "figure1", "fuzz-1101", "fuzz-1102", "fuzz-1103", "local-query-1104",
)


def _resolve_spec(name: str):
    """A corpus name, or the path of a scenario JSON (spec v1 or fuzzer
    v1 format)."""
    from repro.scenario.spec import ScenarioSpec
    from repro.wire.conformance import (
        conformance_specs,
        figure1_walkthrough_spec,
    )

    if name in ("figure1", "walkthrough"):
        return figure1_walkthrough_spec()
    for spec in conformance_specs():
        if name in (spec.name, spec.name.replace("conformance-", "")):
            return spec
    path = Path(name)
    if not path.exists():
        raise FileNotFoundError(
            f"unknown scenario {name!r}: not one of {LIVE_SCENARIOS} "
            f"and no such file"
        )
    data = json.loads(path.read_text())
    if "topology" in data:
        return ScenarioSpec.from_dict(data)
    return ScenarioSpec.from_fuzz_v1(data)


def _render_summary(run, summary: dict, report) -> str:
    lines = [
        f"live run {run.spec.name!r}: horizon {run.horizon:g}s at "
        f"{run.speed:g}x ({run.horizon / run.speed:.2f}s wall)",
        f"  sockets: {len(run._endpoints)}  datagrams: "
        f"{run.datagrams_sent} sent, {run.datagrams_received} received, "
        f"{run.datagrams_unresolved} unresolved",
        f"  health: {summary.get('moves', 0)} moves, "
        f"{summary.get('registrations', 0)} registrations, "
        f"{summary.get('loops_dissolved', 0)} loops dissolved, "
        f"{summary.get('packets_delivered', 0)} packets delivered",
    ]
    if report is not None:
        lines.append("  " + report.render().replace("\n", "\n  "))
    return "\n".join(lines)


def live_main(argv: Optional[List[str]] = None) -> int:
    from repro.live.backend import DEFAULT_SPEED

    parser = build_parser(
        "live",
        "run a scenario on the live asyncio-UDP backend "
        "(sans-io engines over loopback sockets)",
        seed_help="override the scenario's seed",
    )
    parser.add_argument(
        "scenario", nargs="?", default="figure1",
        help="a corpus scenario (%s) or a scenario JSON path "
             "(default figure1)" % ", ".join(LIVE_SCENARIOS),
    )
    parser.add_argument(
        "--speed", type=float, default=DEFAULT_SPEED,
        help=f"virtual seconds per wall second (default {DEFAULT_SPEED:g})",
    )
    parser.add_argument(
        "--conformance", action="store_true",
        help="also run the simulator reference and diff the protocol-"
             "event projections; exit 1 on divergence",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="hard wall-clock cap in seconds "
             "(default: horizon/speed + 30)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="attach the repro.obs plane (causal spans + runtime metrics)",
    )
    parser.add_argument(
        "--metrics-dump", metavar="PATH", default=None,
        help="serve /metrics over loopback HTTP during the run, scrape "
             "it mid-run over a real socket, and write the exposition "
             "body to PATH (implies --obs)",
    )
    parser.add_argument(
        "--snapshots", metavar="PATH", default=None,
        help="append one JSONL runtime snapshot per sampler tick to "
             "PATH (implies --obs)",
    )
    parser.add_argument(
        "--dag", action="store_true",
        help="print the normalized causal span DAG as JSON after the "
             "run (implies --obs)",
    )
    args = parser.parse_args(argv)

    try:
        spec = _resolve_spec(args.scenario)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.seed is not None:
        spec.seed = args.seed

    from repro.live.backend import LiveRun
    from repro.telemetry.health import ProtocolHealth
    from repro.wire.conformance import (
        backend_run_from_events,
        check_spec,
    )

    want_obs = args.obs or args.dag or bool(args.metrics_dump or args.snapshots)
    obs = None
    if want_obs:
        from repro.obs import ObsPlane

        obs = ObsPlane()
    health = ProtocolHealth()
    run = LiveRun(
        spec, speed=args.speed, health=health, obs=obs,
        serve_metrics=bool(args.metrics_dump),
        snapshot_path=args.snapshots,
    )
    timeout = (
        args.timeout if args.timeout is not None
        else run.horizon / run.speed + 30.0
    )

    async def _self_scrape() -> str:
        # Scrape our own /metrics endpoint over a real TCP connection
        # halfway through the run — proving the exposition path works
        # while the scenario is in flight, exactly as an external
        # scraper would see it.
        from repro.obs.server import scrape

        while run.metrics_port is None:
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.5 * run.horizon / run.speed)
        return await scrape(run.metrics_port)

    async def _bounded():
        scraper = (
            asyncio.ensure_future(_self_scrape())
            if args.metrics_dump else None
        )
        try:
            await asyncio.wait_for(run.main(), timeout=timeout)
        finally:
            if scraper is not None and not scraper.done():
                scraper.cancel()
        return await scraper if scraper is not None else None

    try:
        exposition = asyncio.run(_bounded())
    except asyncio.TimeoutError:
        print(
            f"live run exceeded the {timeout:g}s wall-clock cap",
            file=sys.stderr,
        )
        return 1
    if args.metrics_dump and exposition is not None:
        Path(args.metrics_dump).write_text(exposition)

    summary = health.summary()
    report = None
    if args.conformance:
        candidate = backend_run_from_events(
            "live", (event for _, event in run.events), health=health
        )
        report = check_spec(spec, candidate=candidate)

    dag = None
    if args.dag:
        from repro.obs import normalized_dag

        dag = normalized_dag(obs.spans)

    if args.as_json:
        payload = {
            "scenario": spec.name,
            "speed": run.speed,
            "horizon": run.horizon,
            "sockets": len(run._endpoints),
            "datagrams_sent": run.datagrams_sent,
            "datagrams_received": run.datagrams_received,
            "datagrams_unresolved": run.datagrams_unresolved,
            "summary": summary,
        }
        if obs is not None:
            payload["obs"] = {
                "spans": obs.spans.summary(),
                "runtime_samples": run.runtime_samples,
                "drift_warnings": run.drift_warnings,
                "max_drift_virtual": round(run.clock.max_drift_virtual, 6),
            }
        if dag is not None:
            payload["dag"] = dag
        if report is not None:
            payload["conformance"] = {
                "ok": report.ok,
                "mismatches": report.mismatches,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not args.quiet:
        print(_render_summary(run, summary, report))
        if obs is not None:
            spans = obs.spans.summary()
            print(
                f"  obs: {spans['spans']} spans in {spans['traces']} "
                f"traces ({spans['merged']} retransmits merged); "
                f"max drift {run.clock.max_drift_virtual:.3f}s virtual "
                f"over {run.runtime_samples} samples, "
                f"{run.drift_warnings} drift warnings"
            )
        if dag is not None:
            print(json.dumps(dag, indent=2))
    return 0 if report is None or report.ok else 1
