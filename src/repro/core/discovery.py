"""Agent discovery (paper Section 3).

"Foreign agents and home agents periodically multicast an agent
advertisement message on their local networks; mobile hosts may wait to
hear the next periodic advertisement message, or may optionally multicast
an agent solicitation message."  Modelled directly on RFC 1256 router
discovery, as the paper says, with the advertisement extended by the
home-agent/foreign-agent capability bits.

Advertisements also carry a ``boot_id`` (chosen afresh each time the
advertiser starts): a mobile host that sees its current foreign agent's
boot id change knows the agent rebooted and re-registers — the proactive
half of Section 5.2's state recovery ("the foreign agent could also
broadcast ... a query for all mobile hosts to initiate reconnection").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ip.address import IPAddress
from repro.ip.icmp import (
    RouterAdvertisement,
    RouterSolicitation,
    TYPE_ROUTER_ADVERTISEMENT,
    TYPE_ROUTER_SOLICITATION,
)
from repro.ip.node import IPNode
from repro.ip.packet import IPPacket
from repro.ip.protocols import ICMP as PROTO_ICMP

#: Default advertisement period in seconds (RFC 1256 allows 3..1800;
#: mobility wants it snappy).
DEFAULT_ADVERT_PERIOD = 2.0
#: Advertised lifetime: a silent agent is presumed gone after this long.
DEFAULT_ADVERT_LIFETIME = 6.0


@dataclass
class AgentAdvertisementInfo:
    """What a mobile host learned from one advertisement."""

    agent: IPAddress
    is_home_agent: bool
    is_foreign_agent: bool
    boot_id: int
    heard_at: float
    lifetime: float = DEFAULT_ADVERT_LIFETIME


class AgentAdvertiser:
    """Periodically broadcasts agent advertisements on one interface."""

    def __init__(
        self,
        node: IPNode,
        iface_name: str,
        is_home_agent: bool,
        is_foreign_agent: bool,
        period: float = DEFAULT_ADVERT_PERIOD,
        lifetime: float = DEFAULT_ADVERT_LIFETIME,
        advertised_address=None,
    ) -> None:
        self.node = node
        self.iface_name = iface_name
        #: Address put into the advertisement; defaults to the interface
        #: address.  A replicated home agent group advertises its shared
        #: *service* address instead, whichever replica is active.
        self.advertised_address = advertised_address
        self.is_home_agent = is_home_agent
        self.is_foreign_agent = is_foreign_agent
        self.period = period
        self.lifetime = lifetime
        self.boot_id = node.sim.rng.randrange(1, 2**31)
        self._timer = node.sim.timer(self._advertise, label=f"advert-{node.name}")
        self.running = False
        # Answer solicitations immediately rather than waiting a period.
        node.on_icmp(TYPE_ROUTER_SOLICITATION, self._on_solicitation)

    def start(self) -> None:
        """Begin periodic advertising (first advert goes out immediately)."""
        if self.running:
            return
        self.running = True
        self._advertise()

    def stop(self) -> None:
        self.running = False
        self._timer.cancel()

    def restart_with_new_boot_id(self) -> None:
        """Called after a reboot so mobile hosts notice and re-register."""
        self.boot_id = self.node.sim.rng.randrange(1, 2**31)
        self.running = False
        self.start()

    def _advertise(self) -> None:
        if not self.running or not self.node.up:
            return
        self._broadcast()
        # Small jitter decorrelates advertisers that started together.
        jitter = self.node.sim.rng.uniform(0, self.period * 0.05)
        self._timer.start(self.period + jitter)

    def _on_solicitation(self, packet: IPPacket, message: object) -> None:
        if self.running and self.node.up:
            self._broadcast()

    def _broadcast(self) -> None:
        iface = self.node.interfaces[self.iface_name]
        advert = RouterAdvertisement(
            router_address=self.advertised_address or iface.ip_address,
            lifetime=self.lifetime,
            is_home_agent=self.is_home_agent,
            is_foreign_agent=self.is_foreign_agent,
            boot_id=self.boot_id,
        )
        # The low byte also rides in the reserved code field, mirroring
        # how an extension-less RFC 1256 implementation would smuggle it.
        advert.code = self.boot_id & 0xFF
        self.node.send_broadcast(self.iface_name, PROTO_ICMP, advert)


class AgentDiscovery:
    """A mobile host's view of agents reachable on its current link.

    ``on_agent(info)`` fires for every advertisement heard; the mobile
    host decides whether it implies a move, a reboot, or nothing.
    """

    def __init__(
        self,
        node: IPNode,
        on_agent: Callable[[AgentAdvertisementInfo], None],
    ) -> None:
        self.node = node
        self.on_agent = on_agent
        self.last_heard: Optional[AgentAdvertisementInfo] = None
        node.on_icmp(TYPE_ROUTER_ADVERTISEMENT, self._on_advertisement)

    def solicit(self, iface_name: Optional[str] = None) -> None:
        """Multicast a solicitation instead of waiting for the period."""
        name = iface_name or self.node.primary_interface.name
        self.node.send_broadcast(name, PROTO_ICMP, RouterSolicitation())

    def _on_advertisement(self, packet: IPPacket, message: object) -> None:
        if not isinstance(message, RouterAdvertisement):
            return
        info = AgentAdvertisementInfo(
            agent=message.router_address,
            is_home_agent=message.is_home_agent,
            is_foreign_agent=message.is_foreign_agent,
            boot_id=message.boot_id or message.code,
            heard_at=self.node.sim.now,
            lifetime=message.lifetime,
        )
        self.last_heard = info
        self.on_agent(info)
