"""Routing tables with longest-prefix match and host-specific routes.

The table supports exactly what the reproduced protocols need:

- connected routes (deliver on-link via ARP),
- next-hop routes to remote prefixes,
- /32 host-specific routes, which MHRP's routing-domain variant
  (Section 3, last paragraphs) injects and withdraws as mobile hosts move,
- a default route.

Lookup is longest-prefix-first, so a host route always beats a network
route which always beats the default — the property the paper's
host-specific-route mechanism depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.ip.address import IPAddress, IPNetwork


@dataclass(frozen=True)
class Route:
    """One routing table entry.

    ``next_hop`` of ``None`` marks a connected route: the destination is
    on-link through ``interface_name`` and should be ARP-resolved
    directly.
    """

    network: IPNetwork
    interface_name: str
    next_hop: Optional[IPAddress] = None
    metric: int = 1
    #: Free-form tag so protocols can withdraw exactly their own routes
    #: (e.g. "mhrp-host-route").
    tag: str = ""

    @property
    def is_connected(self) -> bool:
        return self.next_hop is None

    @property
    def is_host_route(self) -> bool:
        return self.network.prefix_len == 32

    def __str__(self) -> str:
        via = "connected" if self.is_connected else f"via {self.next_hop}"
        return f"{self.network} dev {self.interface_name} {via} metric {self.metric}"

    # Frozen value type: shared, not duplicated, by session snapshots.
    def __deepcopy__(self, memo: dict) -> "Route":
        return self


#: Bound on memoized lookup results; past it the memo is reset wholesale
#: (workloads touch far fewer distinct destinations than this).
LOOKUP_CACHE_MAX = 4096

#: Sentinel distinguishing "not memoized" from a memoized miss (None).
_MISS = object()


class RoutingTable:
    """A longest-prefix-match IPv4 routing table.

    Lookups are memoized per destination address: the forwarding engine
    resolves the same destinations for every packet of a flow, so after
    the first longest-prefix scan each hop costs one dict probe.  Any
    mutation invalidates the memo (routes move under mobile hosts
    constantly — correctness beats retention).
    """

    def __init__(self) -> None:
        # prefix_len -> {network -> route}; scanned from /32 down so the
        # longest prefix wins.  Dict-of-dicts keeps withdrawal O(1).
        self._by_prefix: Dict[int, Dict[IPNetwork, Route]] = {}
        #: Prefix lengths present, presorted longest-first for lookup.
        self._prefix_order: List[int] = []
        #: destination value -> Route | None (memoized misses included).
        self._lookup_cache: Dict[int, object] = {}

    def _invalidate(self) -> None:
        self._prefix_order = sorted(self._by_prefix, reverse=True)
        self._lookup_cache.clear()

    def __deepcopy__(self, memo: dict) -> "RoutingTable":
        # Routes and the networks/addresses keying them are immutable
        # value types (identity-deepcopied), so a table copy is two
        # levels of fresh dicts over shared values.  The lookup memo is
        # *derived* data — rebuilt on demand, deterministically — so a
        # fork starts with it empty instead of paying to duplicate up to
        # LOOKUP_CACHE_MAX entries per table.
        clone = RoutingTable.__new__(RoutingTable)
        memo[id(self)] = clone
        clone._by_prefix = {
            plen: dict(bucket) for plen, bucket in self._by_prefix.items()
        }
        clone._prefix_order = list(self._prefix_order)
        clone._lookup_cache = {}
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, route: Route) -> None:
        """Install ``route``, replacing any same-prefix route with a higher
        (worse) metric; an existing better route is kept."""
        bucket = self._by_prefix.setdefault(route.network.prefix_len, {})
        existing = bucket.get(route.network)
        if existing is not None and existing.metric < route.metric:
            return
        bucket[route.network] = route
        self._invalidate()

    def add_connected(self, network: IPNetwork, interface_name: str) -> None:
        self.add(Route(network=network, interface_name=interface_name))

    def add_next_hop(
        self,
        network: IPNetwork,
        next_hop: IPAddress,
        interface_name: str,
        metric: int = 1,
        tag: str = "",
    ) -> None:
        self.add(
            Route(
                network=network,
                interface_name=interface_name,
                next_hop=next_hop,
                metric=metric,
                tag=tag,
            )
        )

    def add_host_route(
        self,
        host: IPAddress,
        next_hop: Optional[IPAddress],
        interface_name: str,
        tag: str = "",
    ) -> None:
        """Install a /32 route for one host (paper §3, routing-domain variant)."""
        network = IPNetwork(host.value, 32)
        self.add(
            Route(
                network=network,
                interface_name=interface_name,
                next_hop=next_hop,
                tag=tag,
            )
        )

    def set_default(self, next_hop: IPAddress, interface_name: str) -> None:
        self.add(
            Route(
                network=IPNetwork(0, 0),
                interface_name=interface_name,
                next_hop=next_hop,
            )
        )

    def remove(self, network: IPNetwork) -> bool:
        """Withdraw the route for exactly ``network``; returns whether one existed."""
        bucket = self._by_prefix.get(network.prefix_len)
        if bucket is None:
            return False
        removed = bucket.pop(network, None) is not None
        if not bucket:
            del self._by_prefix[network.prefix_len]
        if removed:
            self._invalidate()
        return removed

    def remove_host_route(self, host: IPAddress) -> bool:
        return self.remove(IPNetwork(host.value, 32))

    def remove_tagged(self, tag: str) -> int:
        """Withdraw every route carrying ``tag``; returns the count removed."""
        removed = 0
        for prefix_len in list(self._by_prefix):
            bucket = self._by_prefix[prefix_len]
            for network in [n for n, r in bucket.items() if r.tag == tag]:
                del bucket[network]
                removed += 1
            if not bucket:
                del self._by_prefix[prefix_len]
        if removed:
            self._invalidate()
        return removed

    def clear(self) -> None:
        self._by_prefix.clear()
        self._invalidate()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, destination: IPAddress) -> Optional[Route]:
        """Longest-prefix-match lookup; ``None`` if no route covers it."""
        key = destination.value
        cache = self._lookup_cache
        hit = cache.get(key, _MISS)
        if hit is not _MISS:
            return hit  # type: ignore[return-value]
        result: Optional[Route] = None
        for prefix_len in self._prefix_order:
            bucket = self._by_prefix[prefix_len]
            masked = key & IPNetwork._mask_for(prefix_len)
            route = bucket.get(IPNetwork(masked, prefix_len))
            if route is not None:
                result = route
                break
        if len(cache) >= LOOKUP_CACHE_MAX:
            cache.clear()
        cache[key] = result
        return result

    def require(self, destination: IPAddress) -> Route:
        """Like :meth:`lookup` but raises :class:`RoutingError` on a miss."""
        route = self.lookup(destination)
        if route is None:
            raise RoutingError(f"no route to {destination}")
        return route

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def routes(self) -> List[Route]:
        """All installed routes, longest prefix first."""
        out: List[Route] = []
        for prefix_len in sorted(self._by_prefix, reverse=True):
            out.extend(self._by_prefix[prefix_len].values())
        return out

    def host_routes(self) -> List[Route]:
        return [r for r in self.routes() if r.is_host_route]

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able table contents for the session snapshot/diff contract."""
        return {
            "routes": [
                {
                    "network": str(r.network),
                    "interface": r.interface_name,
                    "next_hop": str(r.next_hop) if r.next_hop is not None else None,
                    "metric": r.metric,
                    "tag": r.tag,
                }
                for r in self.routes()
            ]
        }

    def load_state(self, state: dict) -> None:
        """Replace the table contents with those from :meth:`state_dict`."""
        self.clear()
        for entry in state["routes"]:
            next_hop = entry["next_hop"]
            self.add(
                Route(
                    network=IPNetwork(entry["network"]),
                    interface_name=entry["interface"],
                    next_hop=IPAddress(next_hop) if next_hop is not None else None,
                    metric=entry["metric"],
                    tag=entry["tag"],
                )
            )

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_prefix.values())

    def __str__(self) -> str:
        return "\n".join(str(route) for route in self.routes()) or "<empty table>"
