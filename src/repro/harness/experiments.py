"""The built-in experiment catalogue.

Each cell function takes ``seed`` plus grid parameters, builds a fresh
deterministic :class:`~repro.netsim.simulator.Simulator` world, and
returns a flat dict of metrics.  They are addressed by dotted path in
the specs so sweep worker processes can import them directly.

Registered sweeps:

- ``loop-contraction`` — the Section 5.3 loop laboratory (E3): loop
  size × previous-source list bound, plus the TTL-only counterfactual.
- ``scalability`` — the Section 7 broadcast argument (E4a): control
  cost of one location-discovery event vs infrastructure size, per
  protocol.
- ``scalability-state`` — the Section 7 state argument (E4b): per-node
  MHRP state as the mobile-host population grows.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.spec import ExperimentSpec, register


# ----------------------------------------------------------------------
# loop-contraction (E3)
# ----------------------------------------------------------------------
def loop_contraction_cell(
    seed: int, loop_size: int, max_list: int, mechanism: str = "list", ttl: int = 64
) -> Dict[str, object]:
    """One injected packet around a ring of ``loop_size`` mis-seeded
    cache agents, with the previous-source list bounded at ``max_list``.

    ``mechanism="ttl"`` is the Section 7 counterfactual: the list check
    is disabled, so only TTL decay ends the loop.
    """
    from unittest import mock

    from repro.core.header import MHRPHeader
    from repro.workloads.loops import run_loop_experiment

    if mechanism == "ttl":
        with mock.patch.object(MHRPHeader, "contains_source", lambda self, a: False):
            run = run_loop_experiment(loop_size, max_list=255, ttl=ttl, seed=seed)
    elif mechanism == "list":
        run = run_loop_experiment(loop_size, max_list, ttl=ttl, seed=seed)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    resolved = run.detected or run.escaped_home or run.retunnels <= 3 * loop_size
    return {
        "retunnels": run.retunnels,
        "detected": int(run.detected),
        "escaped_home": int(run.escaped_home),
        "loop_bytes": run.loop_bytes,
        "updates_sent": run.updates_sent,
        "resolved": int(resolved),
    }


LOOP_CONTRACTION = register(
    ExperimentSpec(
        name="loop-contraction",
        cell_fn="repro.harness.experiments:loop_contraction_cell",
        description="E3: loop detection/contraction vs TTL-only (Section 5.3)",
        grid=[
            {"loop_size": [2, 4, 8], "max_list": [2, 4, 8, 16], "mechanism": ["list"]},
            {"loop_size": [4, 8], "max_list": [16], "mechanism": ["ttl"]},
        ],
        seeds=(3, 5, 7),
        quick_grid=[{"loop_size": [2], "max_list": [2, 4], "mechanism": ["list"]}],
        quick_seeds=(3,),
        directions={"retunnels": "lower", "loop_bytes": "lower", "resolved": "higher"},
    )
)


# ----------------------------------------------------------------------
# scalability (E4)
# ----------------------------------------------------------------------
_SCENARIOS = {
    "mhrp": "repro.baselines.mhrp_scenario:MHRPScenario",
    "sunshine-postel": "repro.baselines.sunshine_postel:SunshinePostelScenario",
    "columbia": "repro.baselines.columbia:ColumbiaScenario",
    "sony-vip": "repro.baselines.sony_vip:SonyVIPScenario",
}


def _scenario_class(protocol: str):
    from repro.harness.runner import resolve_cell_fn

    try:
        return resolve_cell_fn(_SCENARIOS[protocol])
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r}") from None


def _control_cost_of_one_move(scenario) -> int:
    """Control messages for: attach at cell 0, one packet, move to
    cell 1, one packet."""
    scenario.move_to_cell(0)
    scenario.settle()
    if hasattr(scenario, "prime"):
        scenario.prime()
        scenario.settle(3.0)
    scenario.send_packet()
    scenario.settle(3.0)
    before = scenario.stats.control_messages
    scenario.move_to_cell(1)
    scenario.settle()
    scenario.send_packet()
    scenario.settle(3.0)
    return scenario.stats.control_messages - before


def _columbia_cold_lookup_cost(scenario) -> int:
    """Control messages for the first packet to an uncached host: the
    nearest MSR must multicast its search to every peer MSR."""
    scenario.move_to_cell(1)  # not the nearest MSR: forces a tunnel
    scenario.settle()
    before = scenario.stats.control_messages
    scenario.send_packet()
    scenario.settle(4.0)
    assert scenario.stats.packets_delivered == 1
    return scenario.stats.control_messages - before


def scalability_move_cell(seed: int, protocol: str, n_cells: int) -> Dict[str, object]:
    """Control cost of the protocol's location-discovery event on an
    ``n_cells`` infrastructure (Columbia measures its cold lookup, the
    others a move — the event Section 7 argues about)."""
    scenario = _scenario_class(protocol)(n_cells=n_cells, seed=seed)
    if protocol == "columbia":
        cost = _columbia_cold_lookup_cost(scenario)
    else:
        cost = _control_cost_of_one_move(scenario)
    return {"control_cost": cost}


SCALABILITY = register(
    ExperimentSpec(
        name="scalability",
        cell_fn="repro.harness.experiments:scalability_move_cell",
        description="E4a: control cost of location discovery vs infrastructure size",
        grid={
            "protocol": ["mhrp", "sunshine-postel", "columbia", "sony-vip"],
            "n_cells": [2, 6, 12],
        },
        seeds=(7, 11, 13),
        quick_grid={"protocol": ["mhrp", "columbia"], "n_cells": [2, 6]},
        quick_seeds=(7,),
        directions={"control_cost": "lower"},
    )
)


def scalability_state_cell(seed: int, n_hosts: int, n_cells: int = 4) -> Dict[str, object]:
    """MHRP per-node state with ``n_hosts`` mobile hosts spread over
    ``n_cells`` cells of one organization."""
    from repro.netsim.simulator import Simulator
    from repro.workloads.topology import build_campus

    topo = build_campus(
        n_cells=n_cells,
        n_mobile_hosts=n_hosts,
        sim=Simulator(seed=seed),
        advertise=True,
    )
    for index, host in enumerate(topo.mobile_hosts):
        host.attach(topo.cells[index % len(topo.cells)])
    topo.sim.run(until=20.0)
    return {
        "db_size": len(topo.home_roles.home_agent.database),
        "max_visitors": max(
            len(roles.foreign_agent.visitors) for roles in topo.cell_roles
        ),
        "global_structures": 0,
    }


SCALABILITY_STATE = register(
    ExperimentSpec(
        name="scalability-state",
        cell_fn="repro.harness.experiments:scalability_state_cell",
        description="E4b: MHRP per-node state vs mobile-host population",
        grid={"n_hosts": [4, 16, 48], "n_cells": [4]},
        seeds=(5, 9, 17),
        quick_grid={"n_hosts": [4], "n_cells": [4]},
        quick_seeds=(5,),
        directions={"db_size": "both", "max_visitors": "lower"},
    )
)
