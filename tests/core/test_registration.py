"""Unit tests for the registration control protocol."""

import pytest

from repro.core.registration import (
    ACK,
    ControlDispatcher,
    FA_CONNECT,
    HA_REGISTER,
    RegistrationMessage,
    ReliableRegistrar,
    next_seq,
)
from repro.errors import RegistrationError
from repro.ip.address import IPAddress

MH = IPAddress("10.2.0.10")


def make_message(kind=FA_CONNECT, **kw):
    defaults = dict(kind=kind, seq=next_seq(), mobile_host=MH)
    defaults.update(kw)
    return RegistrationMessage(**defaults)


class TestMessageFormat:
    def test_fixed_wire_size(self):
        msg = make_message(agent=IPAddress("10.4.0.254"), hw_value=0x020000000001)
        assert msg.byte_length == 18
        assert len(msg.to_bytes()) == 18

    def test_fields_in_wire(self):
        msg = make_message(agent=IPAddress("10.4.0.254"))
        wire = msg.to_bytes()
        assert IPAddress.from_bytes(wire[4:8]) == MH
        assert IPAddress.from_bytes(wire[8:12]) == "10.4.0.254"


class TestDispatcher:
    def test_for_node_is_singleton_per_node(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        d1 = ControlDispatcher.for_node(a)
        d2 = ControlDispatcher.for_node(a)
        assert d1 is d2

    def test_duplicate_kind_rejected(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        d = ControlDispatcher.for_node(a)
        d.on(FA_CONNECT, lambda p, m: None)
        with pytest.raises(RegistrationError):
            d.on(FA_CONNECT, lambda p, m: None)

    def test_kinds_route_to_handlers(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        got = {"fa": [], "ha": []}
        d = ControlDispatcher.for_node(b)
        d.on(FA_CONNECT, lambda p, m: got["fa"].append(m))
        d.on(HA_REGISTER, lambda p, m: got["ha"].append(m))
        ControlDispatcher.for_node(a)
        from repro.ip.packet import IPPacket
        from repro.ip.protocols import MOBILE_CONTROL

        for kind in (FA_CONNECT, HA_REGISTER):
            a.send(IPPacket(src=net.host(1), dst=net.host(2),
                            protocol=MOBILE_CONTROL, payload=make_message(kind)))
        sim.run_until_idle()
        assert len(got["fa"]) == 1
        assert len(got["ha"]) == 1


class TestReliableRegistrar:
    def test_delivery_and_ack(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        received, acked = [], []
        d = ControlDispatcher.for_node(b)
        d.on(FA_CONNECT, lambda p, m: (received.append(m),
                                       d.send_ack(p.src, m)))
        registrar = ReliableRegistrar(a)
        registrar.send(net.host(2), make_message(), on_ack=acked.append)
        sim.run_until_idle()
        assert len(received) == 1
        assert len(acked) == 1
        assert acked[0].kind == ACK

    def test_retransmits_through_loss(self, sim):
        from repro.ip import Host, IPNetwork
        from repro.link import LAN

        # Deterministic for the fixture's fixed seed; the retry schedule
        # (6 attempts) rides out 25% per-delivery loss comfortably.
        lan = LAN(sim, "lossy", latency=0.001, loss_rate=0.25)
        net = IPNetwork("10.0.0.0/24")
        a, b = Host(sim, "A"), Host(sim, "B")
        a.add_interface("eth0", net.host(1), net, medium=lan)
        b.add_interface("eth0", net.host(2), net, medium=lan)
        d = ControlDispatcher.for_node(b)
        d.on(FA_CONNECT, lambda p, m: d.send_ack(p.src, m))
        acked = []
        # Several attempts in a row; with 50% loss each direction the
        # retry schedule must still land at least one.
        ReliableRegistrar(a).send(net.host(2), make_message(), on_ack=acked.append)
        sim.run(until=60.0)
        assert len(acked) == 1  # exactly one: ack callback fires once

    def test_gives_up_when_peer_absent(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        failed = []
        ReliableRegistrar(a).send(
            net.host(99), make_message(), on_fail=lambda: failed.append(True)
        )
        sim.run(until=60.0)
        assert failed == [True]

    def test_duplicate_acks_ignored(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        acked = []
        d = ControlDispatcher.for_node(b)

        def handler(p, m):
            d.send_ack(p.src, m)
            d.send_ack(p.src, m)  # duplicate

        d.on(FA_CONNECT, handler)
        ReliableRegistrar(a).send(net.host(2), make_message(), on_ack=acked.append)
        sim.run_until_idle()
        assert len(acked) == 1
