"""Exporters: journey index → JSONL timeline or Chrome trace events.

Two formats, both derived from a :class:`JourneyIndex`:

- **JSONL timeline** (:func:`export_jsonl`): one JSON object per
  journey step, in time order — trivially grep-able and diff-able.
- **Chrome trace-event JSON** (:func:`export_chrome_trace`): the
  format consumed by ``chrome://tracing`` and https://ui.perfetto.dev.
  Every packet uid becomes a track (a "thread"), every hop or tunnel
  operation a span on that track, so a Figure-1 run renders as a
  swim-lane diagram of packets flowing through the topology.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from repro.telemetry.journeys import JourneyIndex

#: Simulated seconds → trace-event microseconds.
_US = 1_000_000.0


def timeline_records(index: JourneyIndex) -> List[Dict[str, object]]:
    """Flat per-step records for every retained journey, time-ordered.

    Each record carries the packet uid, the step's simulated time, the
    node it happened at, the step kind (``send`` / ``forward`` /
    ``deliver`` / ``drop`` / ``mhrp:<event>``), and the raw detail
    dict minus the redundant uid.
    """
    records: List[Dict[str, object]] = []
    for journey in index:
        for step in journey.steps:
            detail = {k: v for k, v in step.detail.items() if k != "uid"}
            records.append({
                "uid": journey.uid,
                "time": step.time,
                "node": step.node,
                "kind": step.kind,
                "detail": detail,
            })
    records.sort(key=lambda r: (r["time"], r["uid"]))
    return records


def export_jsonl(index: JourneyIndex, out: Union[str, IO[str]]) -> int:
    """Write the timeline as JSON Lines; returns the record count."""
    records = timeline_records(index)
    if isinstance(out, str):
        with open(out, "w") as handle:
            return export_jsonl(index, handle)
    for record in records:
        out.write(json.dumps(record, default=str) + "\n")
    return len(records)


def chrome_trace(index: JourneyIndex) -> Dict[str, object]:
    """Build a Chrome trace-event document from the journey index.

    Layout: one process (``pid`` 1, named for the simulation), one
    "thread" per packet uid (``tid`` = uid, named ``packet <uid>``
    with its node path).  Each step becomes a complete ("X") event
    whose duration runs to the journey's next step — the final step of
    a journey is rendered as a zero-duration marker.  Times are
    simulated seconds scaled to microseconds, which Perfetto displays
    back as seconds.
    """
    events: List[Dict[str, object]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": "repro simulation"},
    }]
    for journey in index:
        path = " -> ".join(journey.nodes_visited)
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": journey.uid,
            "args": {"name": f"packet {journey.uid} [{path}]"},
        })
        steps = journey.steps
        for i, step in enumerate(steps):
            end = steps[i + 1].time if i + 1 < len(steps) else step.time
            args = {k: v for k, v in step.detail.items() if k != "uid"}
            events.append({
                "name": f"{step.kind} @ {step.node}",
                "cat": "tunnel" if step.kind.startswith("mhrp:") else "ip",
                "ph": "X",
                "pid": 1,
                "tid": journey.uid,
                "ts": step.time * _US,
                "dur": max(0.0, (end - step.time) * _US),
                "args": {str(k): str(v) for k, v in args.items()},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(index: JourneyIndex, out: Union[str, IO[str]]) -> int:
    """Write the Chrome/Perfetto trace; returns the event count."""
    document = chrome_trace(index)
    if isinstance(out, str):
        with open(out, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, out)
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# Causal span DAG → Chrome trace events (repro.obs)
# ----------------------------------------------------------------------

def _span_subtree_end(span, spans_by_id) -> float:
    """Latest timestamp anywhere in a span's subtree — the "X" event
    duration that keeps parent/child spans properly nested."""
    end = span.time
    for child_id in span.children:
        child = spans_by_id.get(child_id)
        if child is None:
            continue
        child_end = _span_subtree_end(child, spans_by_id)
        if child_end > end:
            end = child_end
    return end


def span_chrome_trace(recorder) -> Dict[str, object]:
    """Build a Chrome trace-event document from a causal span recorder
    (:class:`repro.obs.SpanRecorder`).

    Layout: one process (``pid`` 2, "mhrp causal spans"), one "thread"
    per trace (``tid`` = trace id, named for the root span's event).
    Each span is a complete ("X") event lasting until its latest
    descendant, so causality renders as nesting; every parent→child
    edge additionally carries a flow arrow (``"s"``/``"f"`` events
    keyed by the child's span id), which Perfetto draws as an arrow
    from cause to effect even across tracks.
    """
    events: List[Dict[str, object]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 2,
        "args": {"name": "mhrp causal spans"},
    }]
    for spans in recorder.traces():
        root = spans[0]
        trace_id = root.trace_id
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 2,
            "tid": trace_id,
            "args": {"name": f"trace {trace_id}: {root.category} {root.event}"},
        })
        for span in spans:
            args = {str(k): str(v) for k, v in span.detail.items()}
            if span.count > 1:
                args["repeats"] = str(span.count)
            events.append({
                "name": f"{span.event} @ {span.node}",
                "cat": span.category,
                "ph": "X",
                "pid": 2,
                "tid": trace_id,
                "ts": span.time * _US,
                "dur": max(
                    0.0,
                    (_span_subtree_end(span, recorder.spans) - span.time) * _US,
                ),
                "args": args,
            })
            for child_id in span.children:
                child = recorder.spans.get(child_id)
                if child is None:
                    continue
                flow = {
                    "name": "causes",
                    "cat": span.category,
                    "pid": 2,
                    "tid": trace_id,
                    "id": child.span_id,
                }
                events.append({**flow, "ph": "s", "ts": span.time * _US})
                events.append({
                    **flow, "ph": "f", "bp": "e", "ts": child.time * _US,
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_span_chrome_trace(recorder, out: Union[str, IO[str]]) -> int:
    """Write the span DAG as a Chrome/Perfetto trace; returns the
    event count."""
    document = span_chrome_trace(recorder)
    if isinstance(out, str):
        with open(out, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, out)
    return len(document["traceEvents"])
