"""E4 — scalability to very large numbers of mobile hosts
(paper Section 7, last paragraphs).

Claims measured:

1. **No broadcast growth.**  MHRP's control cost for one move is
   independent of how big the infrastructure is.  Columbia's MSR search
   multicasts to every MSR; Sony VIP floods every router — both grow
   linearly with the infrastructure.
2. **No global database.**  Sunshine–Postel concentrates one entry per
   mobile host *worldwide* in a single registry, plus a query there per
   (sender, move); MHRP's state lives at each organization's own home
   agent, and nothing anywhere else grows with the global host count.
3. **Per-node state stays small.**  MHRP caches are finite/LRU; the
   home agent's database is "one entry per own mobile host".
"""

from __future__ import annotations

from repro.baselines.columbia import ColumbiaScenario
from repro.baselines.mhrp_scenario import MHRPScenario
from repro.baselines.sony_vip import SonyVIPScenario
from repro.baselines.sunshine_postel import SunshinePostelScenario
from repro.metrics import Table
from repro.netsim.simulator import Simulator
from repro.workloads.topology import build_campus


def control_cost_of_one_move(scenario_cls, n_cells: int, **kwargs) -> int:
    """Control messages for: attach at cell 0, one packet, move to
    cell 1, one packet."""
    scenario = scenario_cls(n_cells=n_cells, **kwargs)
    scenario.move_to_cell(0)
    scenario.settle()
    if hasattr(scenario, "prime"):
        scenario.prime()
        scenario.settle(3.0)
    scenario.send_packet()
    scenario.settle(3.0)
    before = scenario.stats.control_messages
    scenario.move_to_cell(1)
    scenario.settle()
    scenario.send_packet()
    scenario.settle(3.0)
    return scenario.stats.control_messages - before


def columbia_cold_lookup_cost(n_cells: int) -> int:
    """Control messages for the first packet to an uncached host: the
    nearest MSR must multicast its search to every peer MSR."""
    scenario = ColumbiaScenario(n_cells=n_cells)
    scenario.move_to_cell(1)       # not the nearest MSR: forces a tunnel
    scenario.settle()
    before = scenario.stats.control_messages
    scenario.send_packet()
    scenario.settle(4.0)
    assert scenario.stats.packets_delivered == 1
    return scenario.stats.control_messages - before


def build_broadcast_table():
    table = Table(
        "E4a  Control cost of the protocol's location-discovery event "
        "vs infrastructure size",
        ["protocol", "event measured", "2 cells", "6 cells", "12 cells", "growth"],
    )
    series = {}
    for label, event, measure in [
        ("MHRP", "move (registrations+updates)",
         lambda n: control_cost_of_one_move(MHRPScenario, n_cells=n)),
        ("Sunshine-Postel", "move (re-query global DB)",
         lambda n: control_cost_of_one_move(SunshinePostelScenario, n_cells=n)),
        ("Columbia", "cold lookup (MSR multicast)", columbia_cold_lookup_cost),
        ("Sony VIP", "move (flood invalidation)",
         lambda n: control_cost_of_one_move(SonyVIPScenario, n_cells=n)),
    ]:
        costs = [measure(n) for n in (2, 6, 12)]
        series[label] = costs
        growth = "grows" if costs[2] > costs[0] + 3 else "constant"
        table.add_row(label, event, *costs, growth)
    return table, series


def build_state_table():
    """MHRP per-node state with N mobile hosts on one home agent."""
    table = Table(
        "E4b  MHRP state with N mobile hosts (one organization)",
        ["N hosts", "home agent DB", "max FA visitors", "global structures"],
    )
    rows = []
    for n_hosts in (4, 16, 48):
        topo = build_campus(
            n_cells=4,
            n_mobile_hosts=n_hosts,
            sim=Simulator(seed=5),
            advertise=True,
        )
        sim = topo.sim
        # Spread the hosts over the cells.
        for index, host in enumerate(topo.mobile_hosts):
            host.attach(topo.cells[index % len(topo.cells)])
        sim.run(until=20.0)
        db_size = len(topo.home_roles.home_agent.database)
        max_visitors = max(
            len(roles.foreign_agent.visitors) for roles in topo.cell_roles
        )
        table.add_row(n_hosts, db_size, max_visitors, 0)
        rows.append((n_hosts, db_size, max_visitors))
    return table, rows


def test_scalability(benchmark, record):
    def build():
        return build_broadcast_table(), build_state_table()

    (broadcast_table, series), (state_table, rows) = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    record("E4_scalability", broadcast_table, state_table)
    # MHRP's move cost is flat in infrastructure size.
    mhrp = series["MHRP"]
    assert max(mhrp) - min(mhrp) <= 2
    # The broadcast/flooding protocols grow with it.
    assert series["Columbia"][2] > series["Columbia"][0]
    assert series["Sony VIP"][2] > series["Sony VIP"][0]
    # Home agent database holds exactly its own registered hosts; each
    # foreign agent holds only its current visitors.
    for n_hosts, db_size, max_visitors in rows:
        assert db_size == n_hosts
        assert max_visitors <= -(-n_hosts // 4) + 1  # ~N/4 per cell
