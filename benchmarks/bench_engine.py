#!/usr/bin/env python
"""The engine-backend perf trajectory (repo-root ``BENCH_engine.json``).

Measures the simulator kernel and the sans-io engine stack end to end
and records three kinds of numbers, appended per PR to a committed
*trajectory* (a list of entries, one per PR that re-measured):

- **deterministic** — event/datagram counts from fixed-seed scenario
  runs.  CI regenerates these and fails on any drift against the last
  committed entry (a changed count means changed protocol behaviour,
  not a slower runner).
- **perf** — events/sec through the simulator core (serial and batched
  kernels), events/sec through the engine driver, packets/sec with
  health tracing on and off, packets/sec with the ``repro.obs``
  span-tracing plane attached and detached, and scenario fork latency
  from the PR 5 snapshot machinery.
- **stages** — wall seconds per bench stage (scheduling vs draining,
  per scenario run), recorded through the obs plane's stage timers so
  a gate failure can print *where* the time went, not just that it
  grew.

The simulator microbenches run **first**, after a ``gc.collect()``,
best-of-:data:`SIM_REPS`: the committed PR-7 "regression"
(783k -> 700k events/s) turned out to be process-context pollution —
the sim bench used to run last, against an allocator and GC dirtied by
the preceding engine scenario runs, so the committed number moved with
the *engine's* allocation behaviour rather than the kernel's speed.

CI gates (``--check``):

- deterministic counts must match the last committed entry exactly;
- the measured ``sim_events_per_sec`` may not fall below
  :data:`SIM_GATE` x the last committed entry's (on failure the
  committed-vs-measured stage-timing diff is printed);
- between the last two *committed* entries (same machine, same
  process, so runner-independent), ``engine_events_per_sec`` may not
  regress below :data:`OVERHEAD_GATE`;
- a committed entry carrying the batched column must show the batched
  kernel at least matching the serial one in its own process;
- (schema 3) the partitioned engine's parallel run must stay
  byte-identical to its serial reference, and ``partition_speedup``
  must be >= 1.0x serial *when the host has >= 2 CPUs* — single-core
  runners record the honest sub-1.0 ratio and skip the gate.

The engine/sim adapter ratio is still printed for trend-watching but
no longer gated: the batched-kernel work moves ``sim_events_per_sec``
independently of the engines, which would trip any ratio gate without
an engine regression existing.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py               # print
    PYTHONPATH=src python benchmarks/bench_engine.py --write --pr 9  # append
    PYTHONPATH=src python benchmarks/bench_engine.py --check       # CI gate
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

GOLDEN = Path(__file__).parent.parent / "BENCH_engine.json"

#: Committed-entries perf gate: the newest entry's engine events/sec may
#: not fall below this fraction of the previous entry's.
OVERHEAD_GATE = 0.95

#: Measured-vs-committed gate on the simulator kernel itself.
SIM_GATE = 0.95

#: Ping storm used for the pps measurements: large enough to time, small
#: enough to keep the bench under a couple of seconds.
PPS_PINGS = 400
PPS_HORIZON = 120.0
FORK_ROUNDS = 20

#: Self-rescheduling ticks for the serial kernel bench and same-tick
#: bulk actions for the batched kernel bench.
SIM_TICKS = 50_000
SIM_REPS = 5


def _pps_spec():
    from repro.wire.conformance import figure1_walkthrough_spec

    spec = figure1_walkthrough_spec()
    spec.name = "figure1-ping-storm"
    spec.horizon = PPS_HORIZON
    # Steady-state storm: M sits in netD from t=5; pings every 0.25 s.
    spec.moves = [
        {"t": 0.0, "host": 0, "to": -1},
        {"t": 5.0, "host": 0, "to": 0},
    ]
    spec.pings = [
        {"t": 10.0 + 0.25 * i, "src": 0, "host": 0} for i in range(PPS_PINGS)
    ]
    return spec


def _run_engine(spec, with_health, with_obs=False):
    from repro.telemetry.health import ProtocolHealth
    from repro.wire.driver import _run_engine_spec

    health = ProtocolHealth() if with_health else None
    obs = None
    if with_obs:
        from repro.obs import ObsPlane

        obs = ObsPlane()
    start = time.perf_counter()
    driver = _run_engine_spec(spec, health=health, obs=obs)
    elapsed = time.perf_counter() - start
    return driver, elapsed, obs


#: Partitioned-engine scale scenario: 4 campuses x 25k modeled hosts =
#: a 100k-host registration/traffic workload (the E4 regime).
PARTITION_HOSTS_PER_CAMPUS = 25_000
PARTITION_CAMPUSES = 4


def _measure_partitioned():
    """Serial-vs-parallel partitioned run of the 100k-host load model.

    Returns deterministic facts (event count, byte-identity of the two
    executions) and perf columns.  ``partition_speedup`` is the honest
    serial-wall / parallel-wall ratio *on this machine*: on a
    single-core host four worker processes time-slice one CPU and the
    ratio sits below 1.0 by construction, so the CI gate only applies
    it where it is measurable (``cpu_count >= 2``)."""
    import os

    from repro.partition import partition_load_spec, run_partitioned

    def _spec():
        return partition_load_spec(
            partitions=PARTITION_CAMPUSES,
            hosts_per_campus=PARTITION_HOSTS_PER_CAMPUS,
        )

    serial = run_partitioned(_spec(), workers=0)
    parallel = run_partitioned(_spec(), workers=PARTITION_CAMPUSES)
    deterministic = {
        "partition_events": parallel.events,
        "partition_identity": parallel.fingerprint() == serial.fingerprint(),
    }
    perf = {
        "partitioned_events_per_sec": round(
            parallel.events / parallel.wall_seconds
        ),
        "partition_speedup": round(
            serial.wall_seconds / parallel.wall_seconds, 3
        ),
        "cpu_count": os.cpu_count() or 1,
    }
    stages = {
        "partition_serial": serial.wall_seconds,
        "partition_parallel": parallel.wall_seconds,
    }
    return deterministic, perf, stages


def _sim_events_per_sec(plane):
    """Serial kernel: self-rescheduling ticks, one event per heap pop."""
    from repro.netsim import Simulator

    best_rate, best_elapsed = 0.0, 0.0
    for _ in range(SIM_REPS):
        gc.collect()
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < SIM_TICKS:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run_until_idle(max_events=SIM_TICKS + 10_000)
        elapsed = time.perf_counter() - start
        if count[0] / elapsed > best_rate:
            best_rate, best_elapsed = count[0] / elapsed, elapsed
    plane.time_stage("sim-bench", "serial-run", best_elapsed)
    return best_rate, {"sim_serial_run": best_elapsed}


def _sim_events_per_sec_batched(plane):
    """Batched kernel: one bulk same-tick storm drained by a single
    :meth:`Simulator.run_batched` sweep.  The measured window includes
    the scheduling cost (``schedule_bulk``), so the number is the
    honest end-to-end cost per pre-planned event."""
    from repro.netsim import Simulator

    best_rate = 0.0
    best_stages = {"sim_batched_schedule": 0.0, "sim_batched_drain": 0.0}
    for _ in range(SIM_REPS):
        gc.collect()
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1

        start = time.perf_counter()
        sim.schedule_bulk(0.001, [tick] * SIM_TICKS)
        scheduled = time.perf_counter()
        sim.run_batched()
        end = time.perf_counter()
        rate = count[0] / (end - start)
        if rate > best_rate:
            best_rate = rate
            best_stages = {
                "sim_batched_schedule": scheduled - start,
                "sim_batched_drain": end - scheduled,
            }
    plane.time_stage("sim-bench", "batched-schedule",
                     best_stages["sim_batched_schedule"])
    plane.time_stage("sim-bench", "batched-drain",
                     best_stages["sim_batched_drain"])
    return best_rate, best_stages


def _fork_latency_ms():
    from repro.scenario.spec import ScenarioSpec
    from repro.scenario.session import Session

    spec = ScenarioSpec.from_fuzz_v1({
        "seed": 9, "n_cells": 2, "n_hosts": 2,
        "max_previous_sources": 4, "horizon": 10.0,
        "moves": [], "pings": [],
    })
    session = Session(spec)
    session.run_to_checkpoint()
    snapshot = session.snapshot()
    gc.collect()
    start = time.perf_counter()
    for _ in range(FORK_ROUNDS):
        snapshot.fork()
    return (time.perf_counter() - start) / FORK_ROUNDS * 1000.0


def measure() -> dict:
    from repro.obs import ObsPlane
    from repro.wire.conformance import figure1_walkthrough_spec

    plane = ObsPlane()
    # Kernel microbenches first, on a clean allocator (see module
    # docstring for why the old run-last ordering lied).
    sim_rate, sim_stages = _sim_events_per_sec(plane)
    batched_rate, batched_stages = _sim_events_per_sec_batched(plane)

    walkthrough, walk_elapsed, _ = _run_engine(figure1_walkthrough_spec(), False)
    _, fig_obs_elapsed, fig_obs = _run_engine(
        figure1_walkthrough_spec(), False, with_obs=True
    )
    storm_off, off_elapsed, _ = _run_engine(_pps_spec(), False)
    storm_on, on_elapsed, _ = _run_engine(_pps_spec(), True)
    storm_spans, spans_elapsed, storm_obs = _run_engine(
        _pps_spec(), False, with_obs=True
    )
    part_det, part_perf, part_stages = _measure_partitioned()

    deterministic = {
        **part_det,
        "figure1_engine_events": len(walkthrough.events),
        "figure1_engine_datagrams": walkthrough.datagrams_delivered,
        "figure1_span_count": len(fig_obs.spans),
        "pingstorm_engine_datagrams": storm_off.datagrams_delivered,
        "pingstorm_tracing_invariant":
            storm_on.datagrams_delivered == storm_off.datagrams_delivered,
        "pingstorm_spans_invariant":
            storm_spans.datagrams_delivered == storm_off.datagrams_delivered,
    }
    perf = {
        "sim_events_per_sec": round(sim_rate),
        "sim_events_per_sec_batched": round(batched_rate),
        "engine_events_per_sec": round(len(walkthrough.events) / walk_elapsed),
        "engine_pps_tracing_off": round(storm_off.datagrams_delivered / off_elapsed),
        "engine_pps_tracing_on": round(storm_on.datagrams_delivered / on_elapsed),
        # Span-tracing overhead: the same storm with the obs plane
        # attached (spans + per-category counters) vs fully detached.
        "engine_pps_spans_off": round(storm_off.datagrams_delivered / off_elapsed),
        "engine_pps_spans_on": round(
            storm_spans.datagrams_delivered / spans_elapsed
        ),
        "fork_latency_ms": round(_fork_latency_ms(), 3),
        **part_perf,
    }
    stages = {
        **sim_stages,
        **batched_stages,
        **part_stages,
        "engine_walkthrough": walk_elapsed,
        "engine_storm_tracing_off": off_elapsed,
        "engine_storm_tracing_on": on_elapsed,
        "engine_storm_spans_on": spans_elapsed,
    }
    return {
        "deterministic": deterministic,
        "perf": perf,
        "stages": {key: round(value, 6) for key, value in stages.items()},
    }


def _load_trajectory() -> dict:
    if not GOLDEN.exists():
        return {"schema": 3, "trajectory": []}
    return json.loads(GOLDEN.read_text())


def _adapter_ratio(entry: dict) -> float:
    return entry["perf"]["engine_events_per_sec"] / entry["perf"]["sim_events_per_sec"]


def _stage_diff(committed: dict, measured: dict) -> str:
    """Committed-vs-measured stage table; shows where the time went."""
    lines = ["  stage timings (committed -> measured, seconds):"]
    for stage in sorted(set(committed) | set(measured)):
        old, new = committed.get(stage), measured.get(stage)
        if old is None:
            lines.append(f"    {stage}: (new) {new:.6f}")
        elif new is None:
            lines.append(f"    {stage}: {old:.6f} (gone)")
        else:
            delta = f"{(new - old) / old:+.0%}" if old else "n/a"
            lines.append(f"    {stage}: {old:.6f} -> {new:.6f} ({delta})")
    return "\n".join(lines)


def render(entry: dict) -> str:
    det, perf = entry["deterministic"], entry["perf"]
    return "\n".join([
        "engine perf trajectory",
        f"  simulator core: {perf['sim_events_per_sec']} events/s serial, "
        f"{perf['sim_events_per_sec_batched']} events/s batched",
        f"  figure-1 walkthrough: {det['figure1_engine_events']} events, "
        f"{det['figure1_engine_datagrams']} datagrams "
        f"({perf['engine_events_per_sec']} events/s)",
        f"  ping storm: {perf['engine_pps_tracing_off']} pps tracing off, "
        f"{perf['engine_pps_tracing_on']} pps tracing on "
        f"({det['pingstorm_engine_datagrams']} datagrams)",
        f"  span tracing: {perf['engine_pps_spans_off']} pps detached, "
        f"{perf['engine_pps_spans_on']} pps with the obs plane "
        f"({det['figure1_span_count']} figure-1 spans)",
        f"  scenario fork: {perf['fork_latency_ms']} ms",
        f"  partitioned (4x{PARTITION_HOSTS_PER_CAMPUS // 1000}k-host load): "
        f"{det['partition_events']} events, "
        f"{perf['partitioned_events_per_sec']} events/s parallel, "
        f"speedup {perf['partition_speedup']}x on {perf['cpu_count']} cpu(s), "
        f"byte-identity {'OK' if det['partition_identity'] else 'BROKEN'}",
    ])


def _check(entry: dict) -> int:
    if not GOLDEN.exists():
        print(f"FAIL: no committed trajectory at {GOLDEN}", file=sys.stderr)
        return 1
    data = _load_trajectory()
    if not data.get("trajectory"):
        print(f"FAIL: empty trajectory at {GOLDEN}", file=sys.stderr)
        return 1
    last = data["trajectory"][-1]
    if last["deterministic"] != entry["deterministic"]:
        print("FAIL: deterministic counts drifted from the last "
              f"committed entry (pr={last.get('pr')}):", file=sys.stderr)
        print(f"  committed: {last['deterministic']}", file=sys.stderr)
        print(f"  measured:  {entry['deterministic']}", file=sys.stderr)
        print(f"  (regenerate with: python {sys.argv[0]} --write "
              f"--pr {last.get('pr')})", file=sys.stderr)
        return 1
    print(f"perf delta vs last committed entry (pr={last.get('pr')}):")
    for key, old in last["perf"].items():
        new = entry["perf"].get(key)
        if old and new is not None:
            print(f"  {key}: {old} -> {new} ({(new - old) / old:+.0%})")
    print("deterministic counts: OK")

    # Measured simulator-kernel gate, with the stage diff on failure.
    committed_sim = last["perf"]["sim_events_per_sec"]
    measured_sim = entry["perf"]["sim_events_per_sec"]
    if measured_sim < SIM_GATE * committed_sim:
        print(f"FAIL: sim_events_per_sec {measured_sim} fell below "
              f"{SIM_GATE:.0%} of the committed {committed_sim} "
              f"(pr={last.get('pr')})", file=sys.stderr)
        print(_stage_diff(last.get("stages", {}), entry.get("stages", {})),
              file=sys.stderr)
        return 1
    print(f"sim kernel: OK ({measured_sim} >= {SIM_GATE:.0%} "
          f"of committed {committed_sim})")

    if len(data["trajectory"]) >= 2:
        prev = data["trajectory"][-2]
        prev_ratio, last_ratio = _adapter_ratio(prev), _adapter_ratio(last)
        print(f"committed adapter overhead (engine/sim events ratio, "
              f"informational): pr={prev.get('pr')} {prev_ratio:.4f} -> "
              f"pr={last.get('pr')} {last_ratio:.4f} "
              f"({(last_ratio - prev_ratio) / prev_ratio:+.1%})")
        prev_engine = prev["perf"]["engine_events_per_sec"]
        last_engine = last["perf"]["engine_events_per_sec"]
        if last_engine < OVERHEAD_GATE * prev_engine:
            print(f"FAIL: committed engine_events_per_sec regressed more "
                  f"than {1 - OVERHEAD_GATE:.0%} between pr="
                  f"{prev.get('pr')} ({prev_engine}) and pr="
                  f"{last.get('pr')} ({last_engine})", file=sys.stderr)
            return 1
        print("committed engine throughput: OK")

    batched = last["perf"].get("sim_events_per_sec_batched")
    if batched is not None and batched < last["perf"]["sim_events_per_sec"]:
        print(f"FAIL: committed batched kernel ({batched}) slower than "
              f"the serial kernel ({last['perf']['sim_events_per_sec']}) "
              f"in its own process (pr={last.get('pr')})", file=sys.stderr)
        return 1
    if batched is not None:
        print("committed batched kernel: OK")

    # Partitioned-engine columns (schema 3).  Byte-identity must hold
    # everywhere; the speedup gate only applies where parallelism is
    # physically measurable (>= 2 CPUs — on one core, four workers
    # time-slice it and the ratio is below 1.0 by construction).
    if "partition_identity" in entry["deterministic"]:
        if not entry["deterministic"]["partition_identity"]:
            print("FAIL: partitioned run diverged from the serial "
                  "reference (byte-identity broken)", file=sys.stderr)
            return 1
        print("partitioned byte-identity: OK")
        speedup = entry["perf"]["partition_speedup"]
        cpus = entry["perf"].get("cpu_count", 1)
        if cpus >= 2 and speedup < 1.0:
            print(f"FAIL: partition_speedup {speedup} < 1.0x serial on a "
                  f"{cpus}-cpu host", file=sys.stderr)
            return 1
        print(f"partition speedup: {speedup}x on {cpus} cpu(s)"
              + ("" if cpus >= 2 else " (gate skipped: single-core host)"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--write", action="store_true",
                        help=f"append/replace this PR's entry in {GOLDEN}")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number the --write entry belongs to")
    parser.add_argument("--check", action="store_true",
                        help="fail on deterministic drift, on a measured "
                             "sim-kernel regression vs the last committed "
                             "entry, and on committed engine-throughput "
                             "regression; print the perf delta")
    args = parser.parse_args(argv)

    entry = measure()
    print(render(entry))

    if args.write:
        if args.pr is None:
            print("FAIL: --write needs --pr <number> to label the entry",
                  file=sys.stderr)
            return 1
        data = _load_trajectory()
        data["schema"] = 3
        entries = [e for e in data["trajectory"] if e.get("pr") != args.pr]
        entries.append({"pr": args.pr, **entry})
        data["trajectory"] = sorted(entries, key=lambda e: e["pr"])
        GOLDEN.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {GOLDEN} (entry pr={args.pr}, "
              f"{len(data['trajectory'])} entries)")
        return 0

    if args.check:
        return _check(entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
