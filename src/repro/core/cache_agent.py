"""Cache agents (paper Sections 2 and 4.3) — simulator adapter.

The protocol behaviour lives in :class:`repro.wire.roles.CacheAgentRole`
(one implementation shared with the sans-io engines); this module binds
it to a simulator :class:`~repro.ip.node.IPNode` via
:class:`~repro.wire.roles.SimRolePort` and re-exports the cache data
structures under their historical names.

Any host or router may cache mobile-host locations and tunnel packets
directly to the current foreign agent, skipping the home network.  The
cache is *only* an optimization: every test in
``tests/core/test_cache_agent.py`` also passes with caching disabled,
and the A2 ablation bench quantifies exactly what the caches buy.

Routers expose ``examine_forwarded`` (the paper's configuration option to
"enable or disable the capability to become a cache agent"): when on, the
router snoops location update messages it forwards and caches them too.
"""

from __future__ import annotations

from typing import Optional

from repro.ip.address import IPAddress
from repro.ip.node import IPNode
from repro.wire.roles import (
    CacheAgentRole,
    CacheEntry,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_UPDATE_MIN_INTERVAL,
    LocationCache,
    SimRolePort,
    UpdateRateLimiter,
)
from repro.wire.roles import send_location_update as _send_location_update

__all__ = [
    "CacheAgent",
    "CacheEntry",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_UPDATE_MIN_INTERVAL",
    "LocationCache",
    "UpdateRateLimiter",
    "send_location_update",
]


class CacheAgent(CacheAgentRole):
    """The simulator-facing cache agent: role + port derived from the node."""

    def __init__(
        self,
        node: IPNode,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        examine_forwarded: bool = False,
        enabled: bool = True,
    ) -> None:
        super().__init__(
            SimRolePort.of(node),
            node,
            capacity=capacity,
            examine_forwarded=examine_forwarded,
            enabled=enabled,
        )


def send_location_update(
    node: IPNode,
    destination: IPAddress,
    mobile_host: IPAddress,
    foreign_agent: IPAddress,
    limiter: Optional[UpdateRateLimiter] = None,
    purge: bool = False,
) -> bool:
    """Send one location update from ``node`` (simulator calling style)."""
    return _send_location_update(
        SimRolePort.of(node),
        node,
        destination,
        mobile_host,
        foreign_agent,
        limiter=limiter,
        purge=purge,
    )
