"""The live backend: sans-io engines on real UDP sockets.

Topology becomes a *port directory*: one loopback UDP socket per
``(node, interface)``, bound to an OS-assigned port.  A medium is the
set of member endpoints; unicast resolves the engine's requested
next-hop address to a member's port, broadcast fans out to every other
member.  Time is a :class:`VirtualClock` — wall seconds scaled by a
speed factor — so a 32-virtual-second scenario finishes in under two
wall seconds at the default speed while every engine-visible duration
(advertisement periods, registration retries, departure grace) keeps
its simulated value.

Known simplifications versus the simulator (documented in PROTOCOL.md):
no ARP (address resolution is the directory lookup), no link-layer
loss, and timer/datagram timing carries real scheduler jitter — which
is exactly why the conformance projections compare per-node event
*order* and timing-free counts, not timestamps.
"""

from __future__ import annotations

import asyncio
import json
import logging
from functools import partial
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.wire.driver import HealthFeed, ScheduleActions
from repro.wire.engine import Datagram, EngineEvent, EngineOutput, NodeEngine
from repro.wire.topo import EngineTopology, build_engine_world

#: Default virtual-seconds-per-wall-second factor.  20x runs the 32 s
#: Figure-1 walkthrough in 1.6 s of wall clock while leaving ~50 ms of
#: wall time per virtual second — orders of magnitude above loopback
#: RTT and scheduler jitter.
DEFAULT_SPEED = 20.0

LOOPBACK = "127.0.0.1"

#: Wall seconds between runtime samples (event-loop lag, clock drift,
#: timer-wheel depth, JSONL snapshot rows).
RUNTIME_SAMPLE_WALL = 0.25

#: Sustained-drift warning: virtual seconds of wall-vs-virtual slip
#: that count as "behind", and how many consecutive behind samples
#: trigger the logged warning.  At high ``--speed`` factors the wall
#: scheduler cannot keep up and every timer lands late by
#: ``lag x speed`` virtual seconds — silently, before this existed.
DRIFT_WARN_VIRTUAL = 1.0
DRIFT_WARN_SAMPLES = 3

_log = logging.getLogger("repro.live")


class VirtualClock:
    """Wall time scaled into virtual scenario time.

    ``now()`` is virtual seconds since :meth:`start`; ``wall_delay``
    converts a virtual delay into the wall-clock delay to hand to the
    event loop.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, speed: float = DEFAULT_SPEED) -> None:
        if speed <= 0:
            raise ValueError("speed factor must be positive")
        self._loop = loop
        self.speed = speed
        self._start = loop.time()
        #: Latest / worst observed wall-vs-virtual slip, in *virtual*
        #: seconds: how far behind the virtual timeline the scheduler is
        #: actually running.  Updated by the runtime sampler via
        #: :meth:`note_lag`.
        self.drift_virtual = 0.0
        self.max_drift_virtual = 0.0

    def start(self) -> None:
        self._start = self._loop.time()

    def now(self) -> float:
        return (self._loop.time() - self._start) * self.speed

    def wall_delay(self, virtual_delay: float) -> float:
        return max(0.0, virtual_delay / self.speed)

    def note_lag(self, wall_lag: float) -> float:
        """Record a scheduler lag sample (wall seconds a callback ran
        late) and return the equivalent virtual-time slip."""
        drift = max(0.0, wall_lag) * self.speed
        self.drift_virtual = drift
        if drift > self.max_drift_virtual:
            self.max_drift_virtual = drift
        return drift


class _IfaceEndpoint(asyncio.DatagramProtocol):
    """The datagram protocol behind one (node, interface) socket."""

    def __init__(self, run: "LiveRun", node_name: str, iface_name: str) -> None:
        self.run = run
        self.node_name = node_name
        self.iface_name = iface_name

    def datagram_received(self, data: bytes, addr) -> None:
        self.run._on_datagram(self.node_name, self.iface_name, data)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-dependent
        pass


class LiveRun(ScheduleActions):
    """One scenario executed over loopback UDP.

    Build, then ``asyncio.run(run.main())`` — or use
    :func:`run_live_spec`, which does both.  After the run, ``events``
    holds the full time-stamped protocol-event log in the same shape
    the deterministic driver produces, so the conformance harness can
    diff the two backends directly.
    """

    def __init__(
        self,
        spec,
        speed: float = DEFAULT_SPEED,
        health=None,
        obs=None,
        serve_metrics: bool = False,
        snapshot_path: Optional[str] = None,
        drift_warn_virtual: float = DRIFT_WARN_VIRTUAL,
        drift_warn_samples: int = DRIFT_WARN_SAMPLES,
    ) -> None:
        self.spec = spec
        self.speed = speed
        self.topo: EngineTopology = build_engine_world(spec.topology)
        self.world = self.topo.world
        self.horizon = float(spec.horizon)
        self.events: List[Tuple[float, EngineEvent]] = []
        self.feed = HealthFeed(health) if health is not None else None
        #: An :class:`repro.obs.ObsPlane` (or None); same is-None hot-path
        #: discipline as the simulator's ``sim.obs``.
        self.obs = obs
        #: Serve ``/metrics`` over loopback HTTP while running (needs obs).
        self.serve_metrics = serve_metrics
        self.metrics_port: Optional[int] = None
        self._metrics_server = None
        #: JSONL runtime snapshots, one row per sampler tick.
        self.snapshot_path = snapshot_path
        self._snapshot_file = None
        self.clock: Optional[VirtualClock] = None
        #: (node, iface) -> (transport, port); the medium directory
        #: resolves engine next-hops onto these.
        self._endpoints: Dict[Tuple[str, str], Tuple[asyncio.DatagramTransport, int]] = {}
        self._timer_gen: Dict[Tuple[str, str], int] = {}
        self._handles: List[asyncio.TimerHandle] = []
        self._closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.datagrams_unresolved = 0
        # Runtime sampler state (always on: the drift warning does not
        # require an obs plane).
        self.drift_warn_virtual = drift_warn_virtual
        self.drift_warn_samples = drift_warn_samples
        self.drift_warnings = 0
        self.runtime_samples = 0
        self._drift_streak = 0
        self._sampler_expected = 0.0
        #: (node, iface, direction) -> cached obs counter.
        self._endpoint_counters: Dict[Tuple[str, str, str], object] = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return 0.0 if self.clock is None else min(self.clock.now(), self.horizon)

    def port_of(self, node_name: str, iface_name: str) -> int:
        return self._endpoints[(node_name, iface_name)][1]

    # ------------------------------------------------------------------
    # Engine output processing
    # ------------------------------------------------------------------
    def process(self, node: NodeEngine, output: EngineOutput) -> None:
        now = self.now
        obs = self.obs
        for event in output.events:
            self.events.append((now, event))
            if self.feed is not None:
                self.feed.consume(now, event)
            if obs is not None:
                obs.consume_event(now, event)
        for op in output.timers:
            slot = (node.name, op.key)
            generation = self._timer_gen.get(slot, 0) + 1
            self._timer_gen[slot] = generation
            if op.delay is not None:
                loop = asyncio.get_running_loop()
                wall = self.clock.wall_delay(op.delay)
                handle = loop.call_later(
                    wall,
                    partial(
                        self._fire_timer, node.name, op.key, generation,
                        loop.time() + wall,
                    ),
                )
                self._handles.append(handle)
        for datagram in output.datagrams:
            self._transmit(node, datagram)

    def _endpoint_counter(self, node_name: str, iface_name: str, direction: str):
        """Cached per-endpoint datagram counter (obs attached only)."""
        key = (node_name, iface_name, direction)
        counter = self._endpoint_counters.get(key)
        if counter is None:
            counter = self.obs.metrics.counter(
                "live_datagrams_total",
                "datagrams per (node, interface, direction) endpoint",
                node=node_name, iface=iface_name, direction=direction,
            )
            self._endpoint_counters[key] = counter
        return counter

    def _transmit(self, node: NodeEngine, datagram: Datagram) -> None:
        obs = self.obs
        medium = self.world.medium_of(node.name, datagram.iface)
        if medium is None:
            self.datagrams_unresolved += 1
            if obs is not None:
                self._endpoint_counter(node.name, datagram.iface, "unresolved").inc()
            return
        transport = self._endpoints[(node.name, datagram.iface)][0]
        if datagram.broadcast:
            fanout = 0
            for member_node, member_iface in self.world.media[medium]:
                if member_node == node.name and member_iface == datagram.iface:
                    continue
                port = self.port_of(member_node, member_iface)
                transport.sendto(datagram.data, (LOOPBACK, port))
                fanout += 1
            self.datagrams_sent += fanout
            if obs is not None and fanout:
                self._endpoint_counter(node.name, datagram.iface, "tx").inc(fanout)
            return
        target = self.world.resolve(medium, datagram.next_hop)
        if target is None:
            self.datagrams_unresolved += 1
            if obs is not None:
                self._endpoint_counter(node.name, datagram.iface, "unresolved").inc()
            return
        transport.sendto(datagram.data, (LOOPBACK, self.port_of(*target)))
        self.datagrams_sent += 1
        if obs is not None:
            self._endpoint_counter(node.name, datagram.iface, "tx").inc()

    # ------------------------------------------------------------------
    # Inbound paths
    # ------------------------------------------------------------------
    def _on_datagram(self, node_name: str, iface_name: str, data: bytes) -> None:
        if self._closed or self.clock.now() > self.horizon:
            return
        obs = self.obs
        # The socket outlives medium membership; bits that arrive after
        # the interface left its medium are lost, like the driver's.
        if self.world.medium_of(node_name, iface_name) is None:
            self.datagrams_unresolved += 1
            if obs is not None:
                self._endpoint_counter(node_name, iface_name, "detached").inc()
            return
        self.datagrams_received += 1
        node = self.world.nodes[node_name]
        if obs is None:
            self.process(node, node.datagram_received(self.now, data, iface_name))
            return
        self._endpoint_counter(node_name, iface_name, "rx").inc()
        started = perf_counter()
        self.process(node, node.datagram_received(self.now, data, iface_name))
        obs.time_stage("live", "datagram", perf_counter() - started)

    def _fire_timer(
        self, node_name: str, key: str, generation: int,
        deadline: Optional[float] = None,
    ) -> None:
        if self._closed or self.clock.now() > self.horizon:
            return
        if self._timer_gen.get((node_name, key)) != generation:
            return
        node = self.world.nodes[node_name]
        obs = self.obs
        if obs is None:
            self.process(node, node.timer_fired(self.now, key))
            return
        if deadline is not None:
            lateness = asyncio.get_running_loop().time() - deadline
            obs.time_stage("live", "timer-lateness", max(0.0, lateness))
        started = perf_counter()
        self.process(node, node.timer_fired(self.now, key))
        obs.time_stage("live", "timer", perf_counter() - started)

    # ------------------------------------------------------------------
    # Runtime sampling
    # ------------------------------------------------------------------
    def _schedule_sample(self) -> None:
        loop = asyncio.get_running_loop()
        self._sampler_expected = loop.time() + RUNTIME_SAMPLE_WALL
        self._handles.append(loop.call_later(RUNTIME_SAMPLE_WALL, self._sample_runtime))

    def _sample_runtime(self) -> None:
        """One runtime sampler tick.

        Always on: measures how late the loop ran this callback (pure
        scheduler lag — the sample itself is the probe), converts it to
        virtual-time drift, and logs a warning after
        ``drift_warn_samples`` consecutive ticks over the threshold.
        With an obs plane attached it additionally publishes gauges,
        prunes the timer wheel, and appends a JSONL snapshot row.
        """
        if self._closed:
            return
        loop = asyncio.get_running_loop()
        now_wall = loop.time()
        wall_lag = max(0.0, now_wall - self._sampler_expected)
        self.runtime_samples += 1
        drift = self.clock.note_lag(wall_lag)
        if drift >= self.drift_warn_virtual:
            self._drift_streak += 1
            if self._drift_streak == self.drift_warn_samples:
                self.drift_warnings += 1
                _log.warning(
                    "virtual clock slipping: %.2fs virtual behind wall "
                    "(%d consecutive samples over %.2fs; speed=%gx) — "
                    "the event loop cannot keep up; lower --speed",
                    drift, self._drift_streak, self.drift_warn_virtual,
                    self.speed,
                )
        else:
            self._drift_streak = 0
        # Prune fired/cancelled handles so the wheel-depth gauge is honest
        # and long runs do not accumulate dead handles.
        self._handles = [
            h for h in self._handles
            if not h.cancelled() and h.when() > now_wall
        ]
        obs = self.obs
        if obs is not None:
            metrics = obs.metrics
            metrics.gauge(
                "event_loop_lag_seconds", "sampler callback scheduling lag"
            ).set(wall_lag)
            metrics.gauge(
                "clock_drift_virtual_seconds",
                "wall-vs-virtual slip in virtual seconds",
            ).set(drift)
            metrics.gauge(
                "timer_wheel_depth", "live pending timer handles"
            ).set(len(self._handles))
            metrics.gauge(
                "live_datagrams_sent", "total datagrams sent on loopback"
            ).set(self.datagrams_sent)
            metrics.gauge(
                "live_datagrams_received", "total datagrams received"
            ).set(self.datagrams_received)
            self._write_snapshot(drift, wall_lag)
        if self.clock.now() <= self.horizon:
            self._schedule_sample()

    def _write_snapshot(self, drift: float, wall_lag: float) -> None:
        obs = self.obs
        if obs is None or self._snapshot_file is None:
            return
        record = {
            "t_virtual": round(self.now, 6),
            "drift_virtual": round(drift, 6),
            "event_loop_lag": round(wall_lag, 6),
            "timer_wheel_depth": len(self._handles),
            "datagrams_sent": self.datagrams_sent,
            "datagrams_received": self.datagrams_received,
            "datagrams_unresolved": self.datagrams_unresolved,
            "spans": len(obs.spans),
            "metrics": obs.metrics.snapshot(),
        }
        if self.feed is not None:
            record["health"] = self.feed.health.summary()
        self._snapshot_file.write(json.dumps(record) + "\n")
        self._snapshot_file.flush()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _open_endpoints(self) -> None:
        loop = asyncio.get_running_loop()
        for node in self.world.nodes.values():
            for iface_name in node.interfaces:
                transport, _ = await loop.create_datagram_endpoint(
                    partial(_IfaceEndpoint, self, node.name, iface_name),
                    local_addr=(LOOPBACK, 0),
                )
                port = transport.get_extra_info("sockname")[1]
                self._endpoints[(node.name, iface_name)] = (transport, port)

    def _install_schedule(self) -> None:
        from repro.scenario.spec import PROBE_GAP

        loop = asyncio.get_running_loop()
        entries = (
            [("move", e["t"], (e["host"], e["to"])) for e in self.spec.moves]
            + [("fault", e["t"], (e["node"], e["kind"])) for e in self.spec.faults]
            + [("flow", e["start"], (i, e)) for i, e in enumerate(self.spec.flows)]
            + [("probe", e["t"], (e["src"], e["host"])) for e in self.spec.probes]
            + [("probe", e["t"] + PROBE_GAP, (e["src"], e["host"]))
               for e in self.spec.probes]
            + [("ping", e["t"], (e["src"], e["host"])) for e in self.spec.pings]
        )
        actions = {
            "move": self._apply_move,
            "fault": self._apply_fault,
            "flow": self._apply_flow,
            "probe": self._apply_probe,
            "ping": self._apply_ping,
        }
        for kind, t, args in entries:
            handle = loop.call_later(
                self.clock.wall_delay(float(t)), partial(actions[kind], *args)
            )
            self._handles.append(handle)

    async def main(self) -> "LiveRun":
        """Open sockets, boot the engines, run the schedule to the
        horizon, tear down."""
        loop = asyncio.get_running_loop()
        self.clock = VirtualClock(loop, self.speed)
        await self._open_endpoints()
        if self.serve_metrics and self.obs is not None:
            from repro.obs.server import MetricsServer

            self._metrics_server = MetricsServer(self.obs.metrics)
            self.metrics_port = await self._metrics_server.start()
        if self.snapshot_path is not None:
            self._snapshot_file = open(self.snapshot_path, "w")
        self.clock.start()
        for node in self.world.nodes.values():
            self.process(node, node.start(self.now))
        self._install_schedule()
        self._schedule_sample()
        await asyncio.sleep(self.clock.wall_delay(self.horizon))
        # Drain one scheduler beat so in-flight datagrams at the horizon
        # are observed (or rejected by the horizon gate), then close.
        await asyncio.sleep(0)
        self._closed = True
        for handle in self._handles:
            handle.cancel()
        for transport, _ in self._endpoints.values():
            transport.close()
        if self._metrics_server is not None:
            await self._metrics_server.stop()
        if self._snapshot_file is not None:
            # One complete final row after the run is fully drained:
            # under load the periodic sampler can trail the horizon, so
            # tail-mode readers would otherwise see a mid-run row last.
            if self.obs is not None:
                self.runtime_samples += 1
                self._write_snapshot(self.clock.drift_virtual, 0.0)
            self._snapshot_file.close()
            self._snapshot_file = None
        await asyncio.sleep(0)
        return self


def _run_live_spec(
    spec,
    speed: float = DEFAULT_SPEED,
    health=None,
    obs=None,
    serve_metrics: bool = False,
    snapshot_path: Optional[str] = None,
) -> LiveRun:
    """Execute a ScenarioSpec over loopback UDP and return the finished
    :class:`LiveRun` (its ``events`` log feeds the conformance diff).
    Internal entry point behind :func:`repro.backend.run`."""
    run = LiveRun(
        spec, speed=speed, health=health, obs=obs,
        serve_metrics=serve_metrics, snapshot_path=snapshot_path,
    )
    asyncio.run(run.main())
    return run


def run_live_spec(
    spec,
    speed: float = DEFAULT_SPEED,
    health=None,
    obs=None,
    serve_metrics: bool = False,
    snapshot_path: Optional[str] = None,
) -> LiveRun:
    """Deprecated one-call entry point; use ``repro.backend.run(spec,
    backend="live")`` instead.  Kept (warning) for one release."""
    import warnings

    warnings.warn(
        "run_live_spec() is deprecated; use "
        "repro.backend.run(spec, backend='live') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_live_spec(
        spec, speed=speed, health=health, obs=obs,
        serve_metrics=serve_metrics, snapshot_path=snapshot_path,
    )
