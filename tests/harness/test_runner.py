"""The sweep executor: determinism, caching, crash isolation, timeouts."""

import pytest

from repro.harness.aggregate import aggregate, summary_table
from repro.harness.runner import run_sweep
from repro.harness.spec import ExperimentSpec
from repro.harness.store import ResultStore


def _spec(**overrides):
    base = dict(
        name="runner-test",
        cell_fn="tests.harness.cells:ok_cell",
        grid={"x": [1, 2, 3], "factor": [2]},
        seeds=(0, 1),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSerial:
    def test_all_cells_run_in_spec_order(self):
        report = run_sweep(_spec(), jobs=1)
        assert report.executed == 6 and report.cached == 0
        assert all(r.ok for r in report.results)
        assert [(r.params["x"], r.seed) for r in report.results] == [
            (1, 0), (1, 1), (2, 0), (2, 1), (3, 0), (3, 1),
        ]
        assert report.find(x=2, seed=1).metrics["value"] == 5

    def test_cell_exception_is_isolated(self):
        spec = _spec(cell_fn="tests.harness.cells:flaky_cell", grid={"x": [12, 13, 14]})
        report = run_sweep(spec, jobs=1)
        assert len(report.failures) == 2  # x=13 under both seeds
        assert all(f.params["x"] == 13 for f in report.failures)
        assert "unlucky cell" in report.failures[0].error
        assert report.find(x=12, seed=0).ok

    def test_non_dict_return_is_flagged(self):
        spec = _spec(cell_fn="tests.harness.cells:bad_return_cell", grid={"x": [1]})
        report = run_sweep(spec, jobs=1)
        assert not report.results[0].ok
        assert "not dict" in report.results[0].error

    def test_timeout_marks_cell(self):
        spec = _spec(
            cell_fn="tests.harness.cells:slow_cell",
            grid={"delay": [0.0, 5.0]},
            seeds=(0,),
        )
        report = run_sweep(spec, jobs=1, timeout=0.3)
        assert report.find(delay=0.0, seed=0).ok
        slow = report.find(delay=5.0, seed=0)
        assert slow.status == "timeout"


class TestParallel:
    def test_matches_serial_byte_for_byte(self):
        serial = run_sweep(_spec(), jobs=1)
        fanned = run_sweep(_spec(), jobs=3)
        render = lambda rep: summary_table(aggregate(rep.results), "t").render()
        assert render(serial) == render(fanned)
        assert [r.to_record() for r in serial.results] == [
            {**r.to_record(), "duration": s.duration}
            for r, s in zip(fanned.results, serial.results)
        ]

    def test_failures_survive_fan_out(self):
        spec = _spec(cell_fn="tests.harness.cells:flaky_cell", grid={"x": [13, 14]})
        report = run_sweep(spec, jobs=2)
        assert len(report.failures) == 2
        assert report.find(x=14, seed=0).ok


class TestCaching:
    def test_second_run_is_fully_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_sweep(_spec(), jobs=1, store=store)
        assert first.executed == 6
        second = run_sweep(_spec(), jobs=1, store=store)
        assert second.executed == 0 and second.cached == 6
        assert second.cache_hit_rate == 1.0
        assert all(r.cached for r in second.results)
        # Cached results carry the same metrics.
        assert [r.metrics for r in second.results] == [r.metrics for r in first.results]

    def test_version_bump_dirties_every_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(_spec(), jobs=1, store=store)
        rerun = run_sweep(_spec(version=2), jobs=1, store=store)
        assert rerun.executed == 6 and rerun.cached == 0

    def test_grid_growth_only_runs_new_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(_spec(), jobs=1, store=store)
        grown = run_sweep(_spec(grid={"x": [1, 2, 3, 4], "factor": [2]}), store=store)
        assert grown.executed == 2 and grown.cached == 6

    def test_failures_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec(cell_fn="tests.harness.cells:flaky_cell", grid={"x": [13]})
        run_sweep(spec, jobs=1, store=store)
        retry = run_sweep(spec, jobs=1, store=store)
        assert retry.executed == 2 and retry.cached == 0

    def test_use_cache_false_reruns_but_persists(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(_spec(), jobs=1, store=store)
        forced = run_sweep(_spec(), jobs=1, store=store, use_cache=False)
        assert forced.executed == 6 and forced.cached == 0
        assert run_sweep(_spec(), jobs=1, store=store).cached == 6


class TestRegisteredExperiments:
    """Smoke the real catalogue at its smallest cell."""

    def test_loop_contraction_cell(self):
        from repro.harness.experiments import loop_contraction_cell

        metrics = loop_contraction_cell(seed=3, loop_size=2, max_list=2)
        assert metrics["resolved"] == 1
        assert metrics["retunnels"] >= 1
        assert metrics["loop_bytes"] > 0

    def test_unknown_mechanism_rejected(self):
        from repro.harness.experiments import loop_contraction_cell

        with pytest.raises(ValueError):
            loop_contraction_cell(seed=3, loop_size=2, max_list=2, mechanism="wat")

    def test_catalogue_is_registered(self):
        from repro.harness.spec import experiment_names, get_experiment

        names = experiment_names()
        assert {"loop-contraction", "scalability", "scalability-state"} <= set(names)
        assert get_experiment("loop-contraction").cells(quick=True)
        with pytest.raises(KeyError):
            get_experiment("no-such-sweep")
