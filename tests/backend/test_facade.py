"""The unified backend facade: one ``run()`` for five executions."""

import pytest

from repro import backend
from repro.backend import BACKENDS, RunResult, run, run_main
from repro.partition import partition_handoff_spec
from repro.wire.conformance import figure1_walkthrough_spec


class TestRun:
    def test_sim_and_batched_agree(self):
        sim = run(figure1_walkthrough_spec(), backend="sim")
        batched = run(figure1_walkthrough_spec(), backend="batched")
        for result in (sim, batched):
            assert isinstance(result, RunResult)
            assert result.ok
            assert result.spec_name == "figure1-walkthrough"
            assert result.events > 0
            assert result.sim_time == pytest.approx(32.0)
            assert result.health is not None and result.health["moves"] == 3
        assert batched.events == sim.events
        assert batched.health == sim.health

    def test_engine_backend(self):
        result = run(figure1_walkthrough_spec(), backend="engine")
        assert result.backend == "engine"
        assert result.ok and result.events > 0
        assert result.health["registrations"] >= 2
        # trace is the (time, event) log the conformance projection eats
        assert all(len(item) == 2 for item in result.trace)

    def test_engine_until_stops_the_clock(self):
        full = run(figure1_walkthrough_spec(), backend="engine")
        early = run(figure1_walkthrough_spec(), backend="engine", until=10.0)
        assert early.sim_time == pytest.approx(10.0)
        assert early.events < full.events

    def test_live_backend(self):
        result = run(figure1_walkthrough_spec(), backend="live", speed=40.0)
        assert result.backend == "live"
        assert result.counters["datagrams_sent"] > 0
        assert result.health["moves"] == 3

    def test_partitioned_backend(self):
        result = run(partition_handoff_spec(), backend="partitioned", workers=0)
        assert result.backend == "partitioned"
        assert result.counters["partitions"] == 4
        assert result.counters["mode"] == "window"
        assert result.health["moves"] > 0
        # trace carries the byte-identity fingerprint
        assert set(result.trace) == {"trace", "health", "mobile_state"}

    def test_seed_override_does_not_mutate_the_spec(self):
        spec = figure1_walkthrough_spec()
        result = run(spec, backend="sim", seed=7)
        assert result.ok
        assert spec.seed == 42

    def test_health_instrument_is_appended_without_mutation(self):
        spec = figure1_walkthrough_spec()
        assert spec.instruments == []
        result = run(spec, backend="sim")
        assert result.health is not None
        assert spec.instruments == []


class TestRejections:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run(figure1_walkthrough_spec(), backend="quantum")

    def test_live_rejects_until(self):
        with pytest.raises(ValueError, match="horizon"):
            run(figure1_walkthrough_spec(), backend="live", until=5.0)

    def test_partitioned_rejects_until_and_obs(self):
        with pytest.raises(ValueError, match="horizon"):
            run(partition_handoff_spec(), backend="partitioned", until=5.0)
        with pytest.raises(ValueError, match="obs"):
            run(partition_handoff_spec(), backend="partitioned", obs=True)

    def test_partitioned_requires_partitions_field(self):
        with pytest.raises(ValueError, match="partitions"):
            run(figure1_walkthrough_spec(), backend="partitioned")


class TestDeprecatedEntrypoints:
    def test_run_engine_spec_warns_but_works(self):
        from repro.wire.driver import run_engine_spec

        with pytest.warns(DeprecationWarning, match="repro.backend.run"):
            driver = run_engine_spec(figure1_walkthrough_spec())
        assert len(driver.events) > 0

    def test_run_live_spec_warns_but_works(self):
        from repro.live.backend import run_live_spec

        with pytest.warns(DeprecationWarning, match="repro.backend.run"):
            live = run_live_spec(figure1_walkthrough_spec(), speed=40.0)
        assert len(live.events) > 0


class TestCli:
    def test_every_backend_name_is_offered(self):
        assert BACKENDS == ("sim", "batched", "engine", "live", "partitioned")

    def test_run_main_engine(self, capsys):
        assert run_main(["figure1", "--backend", "engine"]) == 0
        out = capsys.readouterr().out
        assert "engine run 'figure1-walkthrough'" in out
        assert "registrations" in out

    def test_run_main_partitioned_serial(self, capsys):
        assert run_main(
            ["partition-handoff", "--backend", "partitioned", "--workers", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "partitions: 4" in out

    def test_run_main_json(self, capsys):
        import json

        assert run_main(["figure1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sim"
        assert payload["events"] > 0
        assert payload["health"]["moves"] == 3

    def test_run_main_unknown_scenario(self, capsys):
        assert run_main(["no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_main_invalid_combo(self, capsys):
        assert run_main(["figure1", "--backend", "live", "--until", "5"]) == 2
        assert "horizon" in capsys.readouterr().err

    def test_facade_module_is_the_cli_entry(self):
        # ``python -m repro run`` dispatches here.
        import repro.__main__ as main_mod

        assert "run" in main_mod._COMMANDS
        assert backend.run_main is run_main
