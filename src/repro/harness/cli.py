"""``python -m repro sweep`` — run a registered experiment sweep.

::

    python -m repro sweep                      # list experiments
    python -m repro sweep loop-contraction --jobs 4
    python -m repro sweep scalability --no-cache --quick
    python -m repro sweep loop-contraction --write-baseline
    python -m repro sweep loop-contraction --check-baseline

Exit codes: 0 on success, 1 on failed cells or regressions, 2 on usage
errors (unknown experiment, missing baseline).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.clibase import build_parser
from repro.harness.aggregate import aggregate, rows_json, select_metrics, summary_table
from repro.harness.regress import (
    compare_to_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.harness.runner import run_sweep
from repro.harness.spec import experiment_names, get_experiment
from repro.harness.store import ResultStore, default_store


def _build_parser() -> argparse.ArgumentParser:
    parser = build_parser(
        "sweep",
        "Run a multi-seed parameter sweep over the simulator.",
        seed_help="run only this seed instead of the spec's seed list",
    )
    parser.add_argument("experiment", nargs="?", help="registered experiment name")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and bypass the result cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache directory (default benchmarks/results/cache/)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="sweep the reduced CI grid instead of the full one",
    )
    parser.add_argument(
        "--warm-start", action="store_true",
        help="share checkpointed warm-ups between cells with equal "
             "scenario prefixes (results unchanged, wall clock smaller)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="gate the sweep against the stored baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="store this sweep's means as the new baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05, metavar="FRACTION",
        help="relative drift allowed by --check-baseline (default 0.05)",
    )
    parser.add_argument(
        "--metrics", metavar="PATTERNS",
        help="comma-separated shell-style patterns selecting the metric "
             "columns to show (e.g. 'latency_ms_p*,blackout*'); default: all",
    )
    return parser


def _list_experiments() -> None:
    print("Registered experiments:")
    for name in experiment_names():
        spec = get_experiment(name)
        cells = len(spec.cells())
        print(f"  {name:20s} {spec.description}  ({cells} cells)")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.experiment:
        _list_experiments()
        return 0
    try:
        spec = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.seed is not None:
        spec = spec.with_seeds([args.seed])

    if args.no_cache:
        store = None
    elif args.cache_dir:
        store = ResultStore(args.cache_dir)
    else:
        store = default_store()

    report = run_sweep(
        spec,
        jobs=args.jobs,
        store=store,
        use_cache=not args.no_cache,
        timeout=args.timeout,
        quick=args.quick,
        warm_start=args.warm_start,
    )
    rows = aggregate(report.results)
    n_seeds = max((r.n_seeds for r in rows), default=0)
    shown = None
    if args.metrics:
        patterns = [p.strip() for p in args.metrics.split(",") if p.strip()]
        shown = select_metrics(rows, patterns)
        if not shown:
            print(f"no metrics match {args.metrics!r}", file=sys.stderr)
    if args.as_json:
        print(rows_json(rows, metrics=shown))
    elif not args.quiet:
        table = summary_table(
            rows,
            f"{spec.name} — across-seed aggregates ({n_seeds} seeds/point)",
            metrics=shown,
        )
        table.print()
        print()
    if not args.quiet:
        print(
            f"{len(report.results)} cells: {report.executed} executed, "
            f"{report.cached} cached ({report.cache_hit_rate:.0%} hit rate), "
            f"{len(report.failures)} failed; "
            f"{report.wall_seconds:.2f}s wall at --jobs {report.jobs}"
        )
        if report.warm_stats is not None:
            ws = report.warm_stats
            print(
                f"warm-start: {ws['checkpoints_built']} checkpoint(s) built, "
                f"{ws['forks_served']} fork(s) served; "
                f"{ws['warmup_events_saved']} warm-up events skipped "
                f"({ws['warmup_events_run']} run)"
            )

    status = 0
    for failure in report.failures:
        settings = " ".join(f"{k}={v}" for k, v in sorted(failure.params.items()))
        first_line = (failure.error or "?").splitlines()[0]
        print(f"FAILED [{settings} seed={failure.seed}] {failure.status}: {first_line}")
        status = 1

    if args.write_baseline:
        path = write_baseline(spec.name, rows)
        print(f"baseline written: {path}")
    if args.check_baseline:
        path = default_baseline_path(spec.name)
        if not path.exists():
            print(
                f"no baseline at {path}; run with --write-baseline first",
                file=sys.stderr,
            )
            return 2
        regressions = compare_to_baseline(
            rows, load_baseline(path),
            tolerance=args.tolerance, directions=spec.directions,
        )
        if regressions:
            print(f"{len(regressions)} regression(s) vs {path}:")
            for regression in regressions:
                print(f"  REGRESSION {regression}")
            status = 1
        else:
            print(f"baseline check passed ({path})")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
