"""Integration tests for the foreign agent over the Figure 1 topology."""

import pytest

from repro.ip.address import IPAddress


class TestVisitorList:
    def test_connect_adds_visitor_with_hw(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        fa = topo.r4_roles.foreign_agent
        assert fa.is_serving(topo.m.home_address)
        record = fa.visitors[topo.m.home_address]
        assert record.hw_value == topo.m.iface.hw_address.value
        # Section 2: hardware address saved from the connect notification.
        learned = topo.r4.arp["cell"].lookup(topo.m.home_address)
        assert learned is not None
        assert learned.value == record.hw_value

    def test_disconnect_removes_visitor(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        topo.m.attach(topo.net_e)
        topo.sim.run(until=10.0)
        assert not topo.r4_roles.foreign_agent.is_serving(topo.m.home_address)
        assert topo.r5_roles.foreign_agent.is_serving(topo.m.home_address)

    def test_forwarding_pointer_created_on_move(self, figure1_m_at_r4):
        """Section 2: the old foreign agent may cache the new location."""
        topo = figure1_m_at_r4
        topo.m.attach(topo.net_e)
        topo.sim.run(until=10.0)
        pointer = topo.r4_roles.cache_agent.cache.peek(topo.m.home_address)
        assert pointer == topo.fa5_address

    def test_no_forwarding_pointer_on_return_home(self, figure1_m_at_r4):
        """Section 6.3: 'R4 does not create a forwarding pointer cache
        entry for M in this case.'"""
        topo = figure1_m_at_r4
        topo.m.attach_home(topo.net_b)
        topo.sim.run(until=10.0)
        assert topo.r4_roles.cache_agent.cache.peek(topo.m.home_address) is None

    def test_forwarding_pointers_can_be_disabled(self, figure1):
        """With the option off, the disconnect notification alone must
        not create a cache entry.  (R4 may still learn the location
        later through ordinary location updates — e.g. after its own ack
        to M is intercepted by the home agent — so the node's cache
        agent is disabled to isolate the registration-time pointer.)"""
        topo = figure1
        topo.r4_roles.foreign_agent.keep_forwarding_pointers = False
        topo.r4_roles.cache_agent.enabled = False
        topo.m.attach(topo.net_d)
        topo.sim.run(until=5.0)
        topo.m.attach(topo.net_e)
        topo.sim.run(until=10.0)
        assert topo.r4_roles.cache_agent.cache.peek(topo.m.home_address) is None


class TestTunnelDelivery:
    def test_delivers_to_visitor_over_last_hop(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        replies = []
        topo.s.on_icmp(0, lambda p, m: replies.append(m))
        topo.s.ping(topo.m.home_address)
        topo.sim.run(until=10.0)
        assert len(replies) == 1
        assert topo.r4_roles.foreign_agent.delivered_to_visitors >= 1

    def test_retunnels_via_forwarding_pointer(self, figure1_m_at_r4):
        """Section 6.3: stale tunnel to R4 is forwarded straight to R5."""
        topo = figure1_m_at_r4
        sim = topo.sim
        topo.s.ping(topo.m.home_address)
        sim.run(until=10.0)
        home_retunnels_before = topo.r2_roles.home_agent.packets_retunneled
        topo.m.attach(topo.net_e)
        sim.run(until=15.0)
        replies = []
        topo.s.on_icmp(0, lambda p, m: replies.append(m))
        topo.s.ping(topo.m.home_address)  # S's cache still says R4
        sim.run(until=25.0)
        assert len(replies) == 1
        assert topo.r4_roles.foreign_agent.retunneled_forward >= 1
        # The forwarding pointer kept the packet away from the home agent.
        assert topo.r2_roles.home_agent.packets_retunneled == home_retunnels_before

    def test_retunnels_home_without_pointer(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        sim = topo.sim
        topo.s.ping(topo.m.home_address)
        sim.run(until=10.0)
        topo.m.attach(topo.net_e)
        sim.run(until=15.0)
        topo.r4_roles.cache_agent.cache.delete(topo.m.home_address)
        replies = []
        topo.s.on_icmp(0, lambda p, m: replies.append(m))
        topo.s.ping(topo.m.home_address)
        sim.run(until=25.0)
        assert len(replies) == 1
        assert topo.r4_roles.foreign_agent.retunneled_home >= 1

    def test_correct_fa_updates_stale_caches(self, figure1_m_at_r4):
        """Section 5.1: the delivering foreign agent sends a location
        update to every address on the previous-source list."""
        topo = figure1_m_at_r4
        sim = topo.sim
        topo.s.ping(topo.m.home_address)
        sim.run(until=10.0)
        topo.m.attach(topo.net_e)
        sim.run(until=15.0)
        # S's stale cache -> tunnel to R4 -> pointer -> R5 delivers and
        # updates S directly.
        topo.s.ping(topo.m.home_address)
        sim.run(until=25.0)
        assert topo.s.cache_agent.cache.peek(topo.m.home_address) == topo.fa5_address


class TestLocalDeliveryShortcut:
    def test_local_host_to_visitor_bypasses_home(self, figure1_m_at_r4):
        """Section 4.3: the foreign agent recognizes packets it routes
        for locally visiting hosts and transmits them directly."""
        topo = figure1_m_at_r4
        sim = topo.sim
        from repro.ip import Host

        local = Host(sim, "L")
        local.add_interface(
            "eth0", topo.net_d_prefix.host(7), topo.net_d_prefix, medium=topo.net_d
        )
        local.set_gateway(topo.net_d_prefix.host(254))
        intercepted_before = topo.r2_roles.home_agent.packets_intercepted
        replies = []
        local.on_icmp(0, lambda p, m: replies.append(m))
        local.ping(topo.m.home_address)
        sim.run(until=10.0)
        assert len(replies) == 1
        # The packet never crossed the internetwork to the home agent.
        assert topo.r2_roles.home_agent.packets_intercepted == intercepted_before


class TestRebootRecovery:
    def prime(self, topo):
        """S caches M@R4 so packets keep flowing after the crash."""
        topo.s.ping(topo.m.home_address)
        topo.sim.run(until=10.0)
        assert topo.s.cache_agent.cache.peek(topo.m.home_address) == topo.fa4_address

    def test_reboot_clears_visitor_list(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        topo.r4.crash()
        topo.r4.reboot()
        assert not topo.r4_roles.foreign_agent.is_serving(topo.m.home_address)

    def test_data_driven_recovery_via_home_agent(self, figure1_m_at_r4):
        """Section 5.2: a tunneled packet arriving at the forgetful agent
        bounces to the home agent, which recognizes the agent as current
        and sends it an update; the agent re-adds the visitor."""
        topo = figure1_m_at_r4
        sim = topo.sim
        self.prime(topo)
        # Crash/reboot R4 but suppress the advertisement-driven recovery
        # so the data-driven path is what we observe.
        topo.r4_roles.foreign_agent.advertiser.stop()
        topo.r4.crash()
        sim.run(until=12.0)
        topo.r4.reboot()
        topo.r4_roles.foreign_agent.advertiser.stop()
        assert not topo.r4_roles.foreign_agent.is_serving(topo.m.home_address)
        # S tunnels (stale cache): R4 lacks the visitor AND any pointer,
        # so the packet goes to the home agent, which triggers recovery.
        topo.s.ping(topo.m.home_address)
        sim.run(until=20.0)
        assert topo.r2_roles.home_agent.recoveries >= 1
        assert topo.r4_roles.foreign_agent.is_serving(topo.m.home_address)
        # The *next* packet is delivered normally.
        replies = []
        topo.s.on_icmp(0, lambda p, m: replies.append(m))
        topo.s.ping(topo.m.home_address)
        sim.run(until=30.0)
        assert len(replies) == 1

    def test_advertisement_driven_recovery(self, figure1_m_at_r4):
        """The proactive half of Section 5.2: a fresh boot id in the
        post-reboot advertisements makes the visitor re-register."""
        topo = figure1_m_at_r4
        sim = topo.sim
        topo.r4.crash()
        sim.run(until=10.0)
        topo.r4.reboot()
        sim.run(until=20.0)  # next periodic advertisement carries new boot id
        assert topo.r4_roles.foreign_agent.is_serving(topo.m.home_address)
        record = topo.r4_roles.foreign_agent.visitors[topo.m.home_address]
        assert record.hw_value == topo.m.iface.hw_address.value  # full re-register

    def test_verify_with_query_mode(self, figure1_m_at_r4):
        """Section 5.2's cautious option: verify presence before
        re-adding the visitor."""
        topo = figure1_m_at_r4
        sim = topo.sim
        fa = topo.r4_roles.foreign_agent
        fa.believe_home_agent = False
        self.prime(topo)
        fa.advertiser.stop()
        topo.r4.crash()
        sim.run(until=12.0)
        topo.r4.reboot()
        fa.advertiser.stop()
        topo.s.ping(topo.m.home_address)
        sim.run(until=30.0)
        # M is actually present on net D, so the query succeeds.
        assert fa.is_serving(topo.m.home_address)
