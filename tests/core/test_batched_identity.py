"""Batched-vs-serial byte identity at scenario scale.

``Simulator.run_batched`` claims to execute the exact serial
``(time, sequence)`` order; ``tests/netsim/test_batched_kernel.py``
pins that on synthetic schedules.  This suite forces *every* simulator
in real scenario code through the batched kernel (via
``Simulator.default_batched``) and requires byte-for-byte agreement
with the pinned artifacts and with serial runs:

- the committed golden Figure-1 trace,
- health fingerprints and protocol-event projections across the
  conformance corpus,
- full traces and session state dicts over 25 fuzzed campus seeds,
- fork-vs-cold identity (the snapshot contract) with batching on.
"""

from __future__ import annotations

import json

import pytest

from repro.invariants import fuzz
from repro.netsim import Simulator
from repro.scenario import ScenarioSpec, Session
from repro.wire.conformance import conformance_specs, run_simulator_reference

from tests.core.test_golden_trace import GOLDEN_PATH, scenario_trace

FUZZ_SEEDS = range(25)


@pytest.fixture
def force_batched():
    """Route every ``run()`` in scenario code through ``run_batched``."""
    Simulator.default_batched = True
    try:
        yield
    finally:
        Simulator.default_batched = False


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def trace_json(session: Session) -> str:
    return json.dumps(
        [
            {
                "time": entry.time,
                "category": entry.category,
                "node": entry.node,
                "detail": _jsonable(entry.detail),
            }
            for entry in session.sim.tracer
        ]
    )


def fuzzed_campus_spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec.from_fuzz_v1(fuzz.make_scenario(seed, "quick"))


# ----------------------------------------------------------------------
# Golden Figure-1 trace
# ----------------------------------------------------------------------
def test_figure1_golden_trace_identical_under_batching(force_batched):
    """The batched kernel replays the committed pre-batching golden
    trace entry for entry — the strongest single witness that
    coalesced broadcast delivery and batch sweeps change nothing."""
    golden = json.loads(GOLDEN_PATH.read_text())
    current = scenario_trace()
    assert len(current) == len(golden)
    for index, (want, got) in enumerate(zip(golden, current)):
        assert got == want, (
            f"batched trace diverges at entry {index}:\n"
            f"  golden: {want}\n  batched: {got}"
        )


# ----------------------------------------------------------------------
# Conformance corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", conformance_specs(), ids=lambda s: s.name)
def test_conformance_runs_identical_batched_vs_serial(spec):
    serial = run_simulator_reference(spec)
    Simulator.default_batched = True
    try:
        batched = run_simulator_reference(spec)
    finally:
        Simulator.default_batched = False
    assert batched.fingerprint == serial.fingerprint
    assert batched.projection == serial.projection
    assert batched.summary == serial.summary


# ----------------------------------------------------------------------
# Fuzzed campus sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_campus_identical_batched_vs_serial(seed):
    serial = Session(fuzzed_campus_spec(seed)).run_full()
    Simulator.default_batched = True
    try:
        batched = Session(fuzzed_campus_spec(seed)).run_full()
    finally:
        Simulator.default_batched = False
    assert trace_json(batched) == trace_json(serial)
    assert batched.state_dict() == serial.state_dict()


# ----------------------------------------------------------------------
# Snapshot contract with batching on
# ----------------------------------------------------------------------
def test_fork_is_byte_identical_to_cold_under_batching(force_batched):
    spec = fuzzed_campus_spec(seed=3)
    spec.checkpoint = 10.0
    cold = Session(fuzzed_campus_spec(seed=3)).run_full()
    cold_spec_checkpointed = fuzzed_campus_spec(seed=3)
    cold_spec_checkpointed.checkpoint = 10.0

    snapshot = Session(spec).run_to_checkpoint().snapshot()
    forked = snapshot.fork()
    forked.install_tail()
    forked.run()

    checkpointed_cold = Session(cold_spec_checkpointed).run_full()
    assert trace_json(forked) == trace_json(checkpointed_cold)
    assert forked.state_dict() == checkpointed_cold.state_dict()
