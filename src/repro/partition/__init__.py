"""Partitioned parallel simulation (conservative synchronization).

The E4 scalability layer: a hierarchical world is sharded one campus
per partition, each partition runs in its own simulator (optionally its
own OS process), and the engine advances them under a lookahead-derived
window or global-barrier protocol such that a parallel run is
byte-identical to the serial reference.  See
:mod:`repro.partition.engine` for the synchronization protocols,
:mod:`repro.partition.runtime` for the per-partition world slice and
the ``state_dict`` host-migration format, and
:mod:`repro.partition.corpus` for the pinned byte-identity scenarios.
"""

from repro.partition.engine import PartitionedResult, run_partitioned
from repro.partition.runtime import PartitionRuntime, derive_partition_seed
from repro.partition.corpus import (
    partition_corpus_specs,
    partition_faults_spec,
    partition_handoff_spec,
    partition_load_spec,
)

__all__ = [
    "PartitionedResult",
    "PartitionRuntime",
    "run_partitioned",
    "derive_partition_seed",
    "partition_corpus_specs",
    "partition_faults_spec",
    "partition_handoff_spec",
    "partition_load_spec",
]
