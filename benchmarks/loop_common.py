"""Shared machinery for the loop experiments (E3, A1).

The implementation moved into the package as
:mod:`repro.workloads.loops` so the sweep harness's worker processes can
import it by dotted path; this module re-exports it for the benches.
"""

from __future__ import annotations

from repro.workloads.loops import (  # noqa: F401
    LoopRun,
    build_loop,
    inject_and_measure,
    run_loop_experiment,
)

__all__ = ["LoopRun", "build_loop", "inject_and_measure", "run_loop_experiment"]
