"""Parallel experiment orchestration.

The paper's evaluation is a pile of multi-seed parameter sweeps over
deterministic :class:`~repro.netsim.simulator.Simulator` runs — an
embarrassingly parallel workload.  This package turns each sweep into a
declarative :class:`ExperimentSpec` (scenario factory × parameter grid ×
seed range) and provides:

- :mod:`repro.harness.spec` — specs, grid expansion, and a stable
  content hash per cell;
- :mod:`repro.harness.runner` — a sharded executor that fans cells out
  over a process pool (workers rebuild the simulator from the spec, so
  determinism is preserved) with serial fallback, per-cell timeouts, and
  crash isolation;
- :mod:`repro.harness.store` — a JSON-lines result cache keyed by cell
  hash, so re-running a sweep only executes dirty cells;
- :mod:`repro.harness.aggregate` — across-seed aggregation feeding
  :class:`repro.metrics.Table`;
- :mod:`repro.harness.regress` — baseline comparison with tolerances;
- :mod:`repro.harness.cli` — ``python -m repro sweep``.

Registered experiments live in :mod:`repro.harness.experiments`.
"""

from repro.harness.aggregate import AggregateRow, aggregate, summary_table
from repro.harness.regress import Regression, compare_to_baseline, write_baseline
from repro.harness.runner import CellResult, SweepReport, run_sweep
from repro.harness.spec import (
    Cell,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register,
)
from repro.harness.store import ResultStore, default_store

__all__ = [
    "AggregateRow",
    "Cell",
    "CellResult",
    "ExperimentSpec",
    "Regression",
    "ResultStore",
    "SweepReport",
    "aggregate",
    "compare_to_baseline",
    "default_store",
    "experiment_names",
    "get_experiment",
    "register",
    "run_sweep",
    "summary_table",
    "write_baseline",
]
