"""The five prior mobile-host protocols MHRP is compared against
(paper Section 7), reimplemented from their published descriptions:

- :mod:`.sunshine_postel` — IEN 135 forwarders + a global registry (1980)
- :mod:`.columbia`        — Ioannidis et al., IPIP tunnels between
  Mobile Support Routers with campus multicast search (SIGCOMM '91)
- :mod:`.sony_vip`        — Teraoka et al., two-address Virtual IP with
  en-route caching and flooding invalidation (SIGCOMM '91 / ICDCS '92)
- :mod:`.matsushita`      — Wada et al., Packet Forwarding Servers and
  the IPTP tunnel (1992 draft)
- :mod:`.ibm_lsrr`        — Perkins & Rekhter, loose-source-route-based
  mobility (1992/93 drafts)

Every baseline exposes ``build_scenario(...)`` returning a
:class:`~repro.baselines.interface.Scenario`, so the benchmark harness
runs the identical workload over MHRP and every competitor.
"""

from repro.baselines.interface import Scenario, ScenarioStats

__all__ = ["Scenario", "ScenarioStats"]
