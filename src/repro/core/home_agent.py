"""The home agent (paper Sections 2, 3, 5.1, 5.2) — simulator adapter.

The protocol behaviour lives in :class:`repro.wire.roles.HomeAgentRole`
(one implementation shared with the sans-io engines); this module binds
it to a simulator :class:`~repro.ip.node.IPNode` via
:class:`~repro.wire.roles.SimRolePort`.

A home agent lives on a mobile host's home network and:

- keeps the **location database** mapping each of its mobile hosts to the
  foreign agent currently serving it (durable across reboots),
- **intercepts** packets on the home network addressed to away hosts —
  with proxy ARP plus a broadcast gratuitous ARP binding the host's IP
  to the agent's own hardware address (Section 2),
- **tunnels** intercepted packets to the current foreign agent, sending
  the original sender a location update so it can start tunneling
  directly (Section 6.1),
- processes packets **tunneled back to the home network** by stale
  agents: it updates every out-of-date cache named on the packet's
  previous-source list and re-tunnels the packet to the correct foreign
  agent (Section 5.1) — or, if the packet shows the "correct" foreign
  agent simply forgot the host (a reboot), it runs the Section 5.2 state
  recovery instead.

The role composes onto any router or host; nothing about the node class
changes, matching the paper's deployment story.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cache_agent import UpdateRateLimiter
from repro.core.header import DEFAULT_MAX_PREVIOUS_SOURCES
from repro.core.persistence import LocationStore
from repro.ip.node import CONSUMED, IPNode  # noqa: F401  (CONSUMED re-exported)
from repro.wire.logic import DISCONNECTED_ADDRESS
from repro.wire.roles import HomeAgentRole, SimRolePort

__all__ = ["DISCONNECTED_ADDRESS", "HomeAgent"]


class HomeAgent(HomeAgentRole):
    """The simulator-facing home agent: role + port derived from the node.

    Args:
        node: the router or host providing the service.
        home_iface_name: interface on the home network.
        store: durable storage for the location database; without one the
            database is volatile and lost on reboot (the paper recommends
            a disk copy; the E5 bench demonstrates why).
        max_previous_sources: bound on the MHRP previous-source list used
            when re-tunneling.
    """

    def __init__(
        self,
        node: IPNode,
        home_iface_name: str,
        store: Optional[LocationStore] = None,
        advertise: bool = True,
        max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
        update_limiter: Optional[UpdateRateLimiter] = None,
    ) -> None:
        super().__init__(
            SimRolePort.of(node),
            node,
            home_iface_name,
            store=store,
            max_previous_sources=max_previous_sources,
            update_limiter=update_limiter,
        )
        self._should_advertise = advertise

    @classmethod
    def attach(
        cls,
        node: IPNode,
        home_iface_name: str,
        store: Optional[LocationStore] = None,
        advertise: bool = True,
        max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
        update_limiter: Optional[UpdateRateLimiter] = None,
    ) -> "HomeAgent":
        """Create the role and wire it into the node."""
        agent = cls(
            node,
            home_iface_name,
            store=store,
            advertise=advertise,
            max_previous_sources=max_previous_sources,
            update_limiter=update_limiter,
        )
        agent._wire(advertise=advertise)
        return agent
