"""E2 — cache consistency convergence (paper Sections 5.1, 6.3).

Claim: when a mobile host moves, every cache agent that a packet
consults is corrected *by that packet* — the previous-source list names
exactly the stale agents, and the correct foreign agent (or the home
agent) sends each one a location update.  So a single packet through a
chain of k stale caches fixes all k, and the second packet takes the
direct path.

The bench builds chains of k stale cache agents (forwarding pointers
left by k rapid moves), sends packets, and reports packets-to-
convergence and how many stale caches one packet repaired.
"""

from __future__ import annotations

from repro.baselines.mhrp_scenario import MHRPScenario
from repro.metrics import Table


def build_stale_chain(n_moves: int):
    """Move the host through cells 0..n_moves; every old foreign agent
    keeps a forwarding pointer to the next, and the correspondent's
    cache is primed at cell 0 — a chain of n_moves stale caches."""
    scenario = MHRPScenario(n_cells=n_moves + 1)
    scenario.move_to_cell(0)
    scenario.settle()
    scenario.send_packet()      # primes the correspondent's cache
    scenario.settle(3.0)
    for index in range(1, n_moves + 1):
        scenario.move_to_cell(index)
        scenario.settle()
    # Freeze the rate limiters' view: from here only data packets drive
    # the updates we want to observe.
    return scenario


def packets_until_direct(scenario, direct_hops: int, budget: int = 6) -> tuple:
    """Send packets until one takes the direct path; returns
    (packets_needed, hops_series)."""
    hops = []
    for i in range(budget):
        before = len(scenario.stats.hop_counts)
        scenario.send_packet()
        scenario.settle(4.0)
        got = scenario.stats.hop_counts[before:]
        hops.extend(got)
        if got and got[-1] <= direct_hops:
            return i + 1, hops
    return budget, hops


def stale_cache_count(scenario) -> int:
    """How many caches still point somewhere other than the current FA."""
    current = scenario.mobile.current_foreign_agent
    mh = scenario.topo.mobile_home_address
    stale = 0
    for roles in scenario.cell_roles:
        pointer = roles.cache_agent.cache.peek(mh)
        if pointer is not None and pointer != current:
            stale += 1
    sender_cache = scenario.correspondent.cache_agent.cache.peek(mh)
    if sender_cache is not None and sender_cache != current:
        stale += 1
    return stale


def build_convergence_table():
    table = Table(
        "E2  Convergence after k-move stale-cache chains",
        ["stale chain length", "stale caches before", "stale after 1 pkt",
         "packets to direct path", "hops of packet #1"],
    )
    results = []
    for n_moves in (1, 2, 4, 6):
        scenario = build_stale_chain(n_moves)
        before = stale_cache_count(scenario)
        first_before = len(scenario.stats.hop_counts)
        scenario.send_packet()
        scenario.settle(5.0)
        after = stale_cache_count(scenario)
        first_hops = scenario.stats.hop_counts[first_before]
        packets, _ = packets_until_direct(scenario, direct_hops=2)
        table.add_row(n_moves, before, after, 1 + packets, first_hops)
        results.append((n_moves, before, after, packets))
    return table, results


def test_cache_convergence(benchmark, record):
    table, results = benchmark.pedantic(build_convergence_table, rounds=1, iterations=1)
    record("E2_cache_convergence", table)
    for n_moves, before, after, packets in results:
        # One packet repairs the whole chain it traversed...
        assert after == 0, f"chain {n_moves}: {after} stale caches remain"
        # ...and the direct path is restored within one more packet.
        assert packets <= 1
