"""Cooperative per-cell deadlines for nested-worker execution.

The sweep runner's original per-cell timeout was a ``SIGALRM`` interval
timer.  That works for single-process cells but is unsound the moment a
cell spawns its own worker pool (the partitioned backend does): the
alarm only fires in the parent's main thread while the real work is in
children, a retriggered alarm can interrupt ``multiprocessing``'s
internal locks mid-acquire, and a cell that forks *inherits* the
pending alarm into every worker.

This module replaces the signal with a plain wall-clock deadline that
well-behaved long-running loops *poll*: :func:`set_deadline` arms it,
:func:`check` raises :class:`DeadlineExceeded` once it has passed, and
:func:`clear` disarms it.  The runner arms the deadline around each
cell; cooperative execution kernels (the partition engine's window loop,
any cell marked ``cooperative_timeout``) call :func:`check` at natural
barriers.  Workers forked *after* the deadline is armed inherit the
armed value, which is exactly right — a child of a timed cell shares
the cell's budget.

The deadline is process-global (one cell runs per process at a time,
matching the runner's execution model) and monotonic-clock based.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = [
    "DeadlineExceeded",
    "set_deadline",
    "clear_deadline",
    "active_deadline",
    "remaining",
    "check",
]


class DeadlineExceeded(Exception):
    """Raised by :func:`check` when the armed deadline has passed."""


#: Monotonic-clock instant the current cell must finish by, or ``None``.
_deadline: Optional[float] = None


def set_deadline(seconds: float) -> float:
    """Arm a deadline ``seconds`` from now; returns the absolute instant."""
    global _deadline
    _deadline = time.monotonic() + float(seconds)
    return _deadline


def clear_deadline() -> None:
    """Disarm the deadline (idempotent)."""
    global _deadline
    _deadline = None


def active_deadline() -> Optional[float]:
    """The armed absolute deadline (monotonic clock), or ``None``."""
    return _deadline


def remaining() -> Optional[float]:
    """Seconds left before the deadline, or ``None`` when disarmed.

    May be negative once the deadline has passed."""
    if _deadline is None:
        return None
    return _deadline - time.monotonic()


def check() -> None:
    """Raise :class:`DeadlineExceeded` if an armed deadline has passed.

    Cheap enough to call at every cooperative barrier (one clock read);
    a no-op when no deadline is armed.
    """
    if _deadline is not None and time.monotonic() > _deadline:
        raise DeadlineExceeded(
            f"cooperative deadline exceeded by {-remaining():.3f}s"
        )
