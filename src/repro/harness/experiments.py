"""The built-in experiment catalogue.

Each cell function takes ``seed`` plus grid parameters, builds a fresh
deterministic :class:`~repro.netsim.simulator.Simulator` world, and
returns a flat dict of metrics.  They are addressed by dotted path in
the specs so sweep worker processes can import them directly.

Registered sweeps:

- ``loop-contraction`` — the Section 5.3 loop laboratory (E3): loop
  size × previous-source list bound, plus the TTL-only counterfactual.
- ``scalability`` — the Section 7 broadcast argument (E4a): control
  cost of one location-discovery event vs infrastructure size, per
  protocol.
- ``scalability-state`` — the Section 7 state argument (E4b): per-node
  MHRP state as the mobile-host population grows.
- ``dataplane`` — per-hop pipeline microbench: packets/sec through a
  line of routers, tracing on and off, plus the deterministic packet
  accounting the CI baseline gates on.
- ``handoff-telemetry`` — Figure-1 under a continuous ping stream with
  a :class:`~repro.telemetry.health.ProtocolHealth` hub attached:
  end-to-end latency / path stretch / handoff blackout / registration
  latency distributions vs wireless link latency and ping rate.
- ``registration-storm`` — a campus-wide relocation storm whose run is
  ~98% shared warm-up; the showcase (and CI proof) for ``--warm-start``
  checkpoint sharing.
- ``invariant-fuzz`` — seeded random mobility/fault/traffic scenarios
  executed under the :mod:`repro.invariants` auditor; ``python -m
  repro fuzz`` drives it and shrinks violations to minimal repros.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.spec import ExperimentSpec, register


# ----------------------------------------------------------------------
# loop-contraction (E3)
# ----------------------------------------------------------------------
def loop_contraction_cell(
    seed: int, loop_size: int, max_list: int, mechanism: str = "list", ttl: int = 64
) -> Dict[str, object]:
    """One injected packet around a ring of ``loop_size`` mis-seeded
    cache agents, with the previous-source list bounded at ``max_list``.

    ``mechanism="ttl"`` is the Section 7 counterfactual: the list check
    is disabled, so only TTL decay ends the loop.
    """
    from unittest import mock

    from repro.core.header import MHRPHeader
    from repro.workloads.loops import run_loop_experiment

    if mechanism == "ttl":
        with mock.patch.object(MHRPHeader, "contains_source", lambda self, a: False):
            run = run_loop_experiment(loop_size, max_list=255, ttl=ttl, seed=seed)
    elif mechanism == "list":
        run = run_loop_experiment(loop_size, max_list, ttl=ttl, seed=seed)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    resolved = run.detected or run.escaped_home or run.retunnels <= 3 * loop_size
    return {
        "retunnels": run.retunnels,
        "detected": int(run.detected),
        "escaped_home": int(run.escaped_home),
        "loop_bytes": run.loop_bytes,
        "updates_sent": run.updates_sent,
        "resolved": int(resolved),
    }


LOOP_CONTRACTION = register(
    ExperimentSpec(
        name="loop-contraction",
        cell_fn="repro.harness.experiments:loop_contraction_cell",
        description="E3: loop detection/contraction vs TTL-only (Section 5.3)",
        grid=[
            {"loop_size": [2, 4, 8], "max_list": [2, 4, 8, 16], "mechanism": ["list"]},
            {"loop_size": [4, 8], "max_list": [16], "mechanism": ["ttl"]},
        ],
        seeds=(3, 5, 7),
        quick_grid=[{"loop_size": [2], "max_list": [2, 4], "mechanism": ["list"]}],
        quick_seeds=(3,),
        directions={"retunnels": "lower", "loop_bytes": "lower", "resolved": "higher"},
    )
)


# ----------------------------------------------------------------------
# scalability (E4)
# ----------------------------------------------------------------------
_SCENARIOS = {
    "mhrp": "repro.baselines.mhrp_scenario:MHRPScenario",
    "sunshine-postel": "repro.baselines.sunshine_postel:SunshinePostelScenario",
    "columbia": "repro.baselines.columbia:ColumbiaScenario",
    "sony-vip": "repro.baselines.sony_vip:SonyVIPScenario",
}


def _scenario_class(protocol: str):
    from repro.harness.runner import resolve_cell_fn

    try:
        return resolve_cell_fn(_SCENARIOS[protocol])
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r}") from None


def _control_cost_of_one_move(scenario) -> int:
    """Control messages for: attach at cell 0, one packet, move to
    cell 1, one packet."""
    scenario.move_to_cell(0)
    scenario.settle()
    if hasattr(scenario, "prime"):
        scenario.prime()
        scenario.settle(3.0)
    scenario.send_packet()
    scenario.settle(3.0)
    before = scenario.stats.control_messages
    scenario.move_to_cell(1)
    scenario.settle()
    scenario.send_packet()
    scenario.settle(3.0)
    return scenario.stats.control_messages - before


def _columbia_cold_lookup_cost(scenario) -> int:
    """Control messages for the first packet to an uncached host: the
    nearest MSR must multicast its search to every peer MSR."""
    scenario.move_to_cell(1)  # not the nearest MSR: forces a tunnel
    scenario.settle()
    before = scenario.stats.control_messages
    scenario.send_packet()
    scenario.settle(4.0)
    assert scenario.stats.packets_delivered == 1
    return scenario.stats.control_messages - before


def scalability_move_cell(seed: int, protocol: str, n_cells: int) -> Dict[str, object]:
    """Control cost of the protocol's location-discovery event on an
    ``n_cells`` infrastructure (Columbia measures its cold lookup, the
    others a move — the event Section 7 argues about)."""
    scenario = _scenario_class(protocol)(n_cells=n_cells, seed=seed)
    if protocol == "columbia":
        cost = _columbia_cold_lookup_cost(scenario)
    else:
        cost = _control_cost_of_one_move(scenario)
    return {"control_cost": cost}


SCALABILITY = register(
    ExperimentSpec(
        name="scalability",
        cell_fn="repro.harness.experiments:scalability_move_cell",
        description="E4a: control cost of location discovery vs infrastructure size",
        grid={
            "protocol": ["mhrp", "sunshine-postel", "columbia", "sony-vip"],
            "n_cells": [2, 6, 12],
        },
        seeds=(7, 11, 13),
        quick_grid={"protocol": ["mhrp", "columbia"], "n_cells": [2, 6]},
        quick_seeds=(7,),
        directions={"control_cost": "lower"},
    )
)


def scalability_state_cell(seed: int, n_hosts: int, n_cells: int = 4) -> Dict[str, object]:
    """MHRP per-node state with ``n_hosts`` mobile hosts spread over
    ``n_cells`` cells of one organization."""
    from repro.netsim.simulator import Simulator
    from repro.workloads.topology import build_campus

    topo = build_campus(
        n_cells=n_cells,
        n_mobile_hosts=n_hosts,
        sim=Simulator(seed=seed),
        advertise=True,
    )
    for index, host in enumerate(topo.mobile_hosts):
        host.attach(topo.cells[index % len(topo.cells)])
    topo.sim.run(until=20.0)
    return {
        "db_size": len(topo.home_roles.home_agent.database),
        "max_visitors": max(
            len(roles.foreign_agent.visitors) for roles in topo.cell_roles
        ),
        "global_structures": 0,
    }


SCALABILITY_STATE = register(
    ExperimentSpec(
        name="scalability-state",
        cell_fn="repro.harness.experiments:scalability_state_cell",
        description="E4b: MHRP per-node state vs mobile-host population",
        grid={"n_hosts": [4, 16, 48], "n_cells": [4]},
        seeds=(5, 9, 17),
        quick_grid={"n_hosts": [4], "n_cells": [4]},
        quick_seeds=(5,),
        directions={"db_size": "both", "max_visitors": "lower"},
    )
)


# ----------------------------------------------------------------------
# dataplane (pipeline microbench)
# ----------------------------------------------------------------------
def _build_line(sim, n_routers: int):
    """A — R0 — R1 — … — R(n-1) — B over zero-ish-latency LANs."""
    from repro.ip.address import IPNetwork
    from repro.ip.host import Host
    from repro.ip.router import Router
    from repro.link.medium import LAN

    nets = [IPNetwork((10 << 24) | (i << 16), 24) for i in range(n_routers + 1)]
    lans = [LAN(sim, f"lan{i}", latency=0.0001) for i in range(n_routers + 1)]
    routers = []
    for i in range(n_routers):
        r = Router(sim, f"R{i}")
        r.add_interface("left", nets[i].host(254), nets[i], medium=lans[i])
        r.add_interface("right", nets[i + 1].host(253), nets[i + 1], medium=lans[i + 1])
        routers.append(r)
    for i, r in enumerate(routers):
        if i + 1 < n_routers:
            r.routing_table.add_next_hop(nets[-1], nets[i + 1].host(254), "right")
        if i > 0:
            r.routing_table.add_next_hop(nets[0], nets[i].host(253), "left")
    a = Host(sim, "A")
    a.add_interface("eth0", nets[0].host(1), nets[0], medium=lans[0])
    a.set_gateway(nets[0].host(254))
    b = Host(sim, "B")
    b.add_interface("eth0", nets[-1].host(1), nets[-1], medium=lans[-1])
    b.set_gateway(nets[-1].host(253))
    return a, b, routers


def dataplane_cell(
    seed: int, tracing: bool = False, n_routers: int = 4, n_packets: int = 5000
) -> Dict[str, object]:
    """A burst of ``n_packets`` UDP packets across a line of
    ``n_routers`` routers; measures wall-clock packets/sec through the
    per-hop pipeline and returns the deterministic packet accounting
    (``delivered``/``forwarded``/``events``) that the committed baseline
    gates on — ``pps`` is machine-dependent and deliberately absent from
    the baseline.
    """
    import time

    from repro.ip.packet import IPPacket, RawPayload
    from repro.ip.protocols import UDP
    from repro.netsim.simulator import Simulator

    sim = Simulator(seed=seed)
    sim.tracer.enabled = tracing
    a, b, routers = _build_line(sim, n_routers)
    delivered = [0]
    b.register_protocol(UDP, lambda p, i: delivered.__setitem__(0, delivered[0] + 1))
    # Warm ARP caches end to end so the timed burst measures forwarding.
    a.send(IPPacket(src=a.primary_address, dst=b.primary_address, protocol=UDP))
    sim.run_until_idle()
    warm = delivered[0]
    payload = RawPayload(b"x" * 64)
    src, dst = a.primary_address, b.primary_address

    def burst() -> None:
        for _ in range(n_packets):
            a.send(IPPacket(src=src, dst=dst, protocol=UDP, payload=payload))

    sim.schedule(0.0, burst)
    t0 = time.perf_counter()
    sim.run_until_idle(max_events=20_000_000)
    wall = time.perf_counter() - t0
    return {
        "pps": n_packets / wall,
        "delivered": delivered[0] - warm,
        "forwarded": sum(r.packets_forwarded for r in routers),
        "events": sim.events_processed,
    }


# ----------------------------------------------------------------------
# handoff-telemetry (the PR 3 observability sweep)
# ----------------------------------------------------------------------
def handoff_telemetry_spec(
    seed: int,
    wireless_latency: float = 0.003,
    ping_interval: float = 0.5,
    duration: float = 40.0,
):
    """The Figure-1 handoff scenario as a :class:`ScenarioSpec`.

    The attach-home + first-handoff warm-up (t < 4) is identical for
    every ``ping_interval``, so all cells of one ``(wireless_latency,
    seed)`` point share a prefix hash — under ``--warm-start`` they fork
    one checkpoint instead of re-running the warm-up per cell.
    """
    from repro.scenario import ScenarioSpec

    pings = []
    t = 4.0
    while t < duration - 1.0:
        pings.append({"t": round(t, 6), "src": 0, "host": 0})
        t += ping_interval
    return ScenarioSpec(
        name="handoff-telemetry",
        seed=seed,
        topology={"kind": "figure1", "wireless_latency": wireless_latency},
        horizon=duration,
        checkpoint=4.0,
        # Bound trace storage: the hub's listeners see every entry anyway.
        trace_limit=10_000,
        instruments=[{"kind": "health", "max_completed_journeys": 256}],
        moves=[
            {"t": 0.0, "host": 0, "to": -1},
            {"t": 2.0, "host": 0, "to": 0},
            {"t": 15.0, "host": 0, "to": 1},
            {"t": 28.0, "host": 0, "to": 0},
        ],
        pings=pings,
    )


def handoff_telemetry_cell(
    seed: int,
    wireless_latency: float = 0.003,
    ping_interval: float = 0.5,
    duration: float = 40.0,
) -> Dict[str, object]:
    """Figure-1 with a telemetry hub attached and a steady ping stream
    from the correspondent across two handoffs (B -> D -> E -> D).

    Returns the hub's full flat summary, so the aggregator rolls the
    latency/stretch/blackout/registration percentiles up across seeds
    (every value is simulation-time-derived, hence deterministic per
    seed).
    """
    from repro.scenario import warmstart

    session = warmstart.session_at_checkpoint(
        handoff_telemetry_spec(seed, wireless_latency, ping_interval, duration)
    )
    session.install_tail()
    session.run()
    return session.telemetry.summary()


HANDOFF_TELEMETRY = register(
    ExperimentSpec(
        name="handoff-telemetry",
        cell_fn="repro.harness.experiments:handoff_telemetry_cell",
        description="handoff latency/stretch/blackout distributions on Figure-1",
        grid={
            "wireless_latency": [0.003, 0.01, 0.03],
            "ping_interval": [0.5, 0.25, 0.1],
        },
        seeds=(42, 43, 44),
        version=2,  # cell rebuilt on the scenario-session API
        quick_grid={"wireless_latency": [0.003], "ping_interval": [0.5]},
        quick_seeds=(42,),
        directions={
            "latency_ms_p95": "lower",
            "stretch_p95": "lower",
            "blackout_ms_max": "lower",
            "registration_ms_p95": "lower",
            "packets_delivered": "higher",
            "packets_dropped": "lower",
        },
    )
)


# ----------------------------------------------------------------------
# registration-storm (the warm-start showcase)
# ----------------------------------------------------------------------
def registration_storm_spec(seed: int, probe_cell: int = 0, n_hosts: int = 30):
    """A campus under a registration storm, with a tiny probe tail.

    Thirty mobile hosts attach home, then move through three full
    relocation waves — tens of thousands of registration / update / ARP
    events, all before the checkpoint at t=15.  The tail (one extra
    move wave into ``probe_cell`` plus two convergence probes) is a few
    dozen events, so virtually the whole run is shareable warm-up: the
    shape that makes warm-start sweeps pay.
    """
    from repro.scenario import ScenarioSpec

    n_cells = 6
    moves = [
        {"t": round(0.2 + 0.1 * i, 3), "host": i, "to": -1} for i in range(n_hosts)
    ]
    for i in range(n_hosts):
        moves.append({"t": round(4.0 + 0.1 * i, 3), "host": i, "to": i % n_cells})
        moves.append(
            {"t": round(8.0 + 0.1 * i, 3), "host": i, "to": (i + 1) % n_cells}
        )
        moves.append(
            {"t": round(12.0 + 0.1 * i, 3), "host": i, "to": (i + 2) % n_cells}
        )
    # Tail: a short third wave of the first few hosts into probe_cell.
    for i in range(4):
        moves.append({"t": round(15.5 + 0.2 * i, 3), "host": i, "to": probe_cell})
    return ScenarioSpec(
        name="registration-storm",
        seed=seed,
        topology={
            "kind": "campus",
            "n_cells": n_cells,
            "n_mobile_hosts": n_hosts,
            "n_correspondents": 2,
            "advertise": True,
        },
        horizon=20.0,
        checkpoint=15.0,
        trace_limit=10_000,
        moves=moves,
        probes=[{"t": 17.0, "src": 0, "host": 0}, {"t": 17.5, "src": 1, "host": 1}],
    )


def registration_storm_cell(
    seed: int, probe_cell: int = 0, n_hosts: int = 30
) -> Dict[str, object]:
    """One storm cell: the deterministic packet/event accounting after
    the probe tail.  Every metric is simulation-state-derived, so a
    warm-started cell is byte-identical to a cold one."""
    from repro.scenario import warmstart

    session = warmstart.session_at_checkpoint(
        registration_storm_spec(seed, probe_cell=probe_cell, n_hosts=n_hosts)
    )
    session.install_tail()
    session.run()
    counters = [node.dataplane.counters for node in session.world.nodes]
    return {
        "events": session.sim.events_processed,
        "delivered": sum(c.delivered for c in counters),
        "forwarded": sum(c.forwarded for c in counters),
        "tunneled": sum(c.tunneled for c in counters),
        "dropped": sum(c.dropped_total for c in counters),
        "db_size": len(session.world.home_roles.home_agent.database),
    }


REGISTRATION_STORM = register(
    ExperimentSpec(
        name="registration-storm",
        cell_fn="repro.harness.experiments:registration_storm_cell",
        description="campus registration storm; warmup-heavy warm-start showcase",
        grid={"probe_cell": [0, 1, 2, 3, 4, 5]},
        seeds=(42, 43),
        quick_grid={"probe_cell": [0, 1, 2, 3, 4, 5]},
        quick_seeds=(42,),
        directions={"delivered": "higher", "dropped": "lower", "events": "both"},
    )
)


# ----------------------------------------------------------------------
# invariant-fuzz (the correctness-tooling sweep)
# ----------------------------------------------------------------------
INVARIANT_FUZZ = register(
    ExperimentSpec(
        name="invariant-fuzz",
        cell_fn="repro.invariants.fuzz:fuzz_cell",
        description="seeded random scenarios under the protocol-invariant auditor",
        grid={"profile": ["default"]},
        seeds=tuple(range(20)),
        quick_grid={"profile": ["quick"]},
        quick_seeds=tuple(range(5)),
        directions={"violations": "lower"},
    )
)


DATAPLANE = register(
    ExperimentSpec(
        name="dataplane",
        cell_fn="repro.harness.experiments:dataplane_cell",
        description="per-hop pipeline throughput microbench (tracing on/off)",
        grid={"tracing": [False, True], "n_routers": [4], "n_packets": [5000]},
        seeds=(1, 2, 3),
        quick_grid={"tracing": [False], "n_routers": [4], "n_packets": [5000]},
        quick_seeds=(1,),
        directions={
            "pps": "higher",
            "delivered": "both",
            "forwarded": "both",
            "events": "both",
        },
    )
)
