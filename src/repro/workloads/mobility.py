"""Mobility models.

Each model drives one mobile host's movement between media (wireless
cells, LANs, or its home network).  Movement is physical re-attachment;
the MHRP registration machinery reacts on its own, exactly as the
protocol intends.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.core.mobile_host import MobileHost
from repro.link.medium import Medium
from repro.netsim.simulator import Simulator


@dataclass
class MoveEvent:
    """One scripted movement."""

    time: float
    medium: Medium


class ScriptedMobility:
    """Replay an explicit list of ``(time, medium)`` moves.

    The workhorse for tests and benches that need exact reproducibility.
    """

    def __init__(
        self,
        host: MobileHost,
        moves: Sequence[Tuple[float, Medium]],
        solicit: bool = True,
    ) -> None:
        self.host = host
        self.moves = [MoveEvent(time=t, medium=m) for t, m in moves]
        self.solicit = solicit

    def start(self) -> None:
        sim = self.host.sim
        for move in self.moves:
            sim.schedule_at(
                move.time,
                partial(self._apply, move.medium),
                label=f"move-{self.host.name}",
            )

    def _apply(self, medium: Medium) -> None:
        self.host.attach(medium, solicit=self.solicit)


class PingPongMobility:
    """Bounce between two media every ``dwell`` seconds.

    Models the pathological "frequently moving host" of Section 2's
    forwarding-pointer discussion.
    """

    def __init__(
        self,
        host: MobileHost,
        media: Sequence[Medium],
        dwell: float,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ) -> None:
        if len(media) < 2:
            raise ValueError("ping-pong needs at least two media")
        self.host = host
        self.media = list(media)
        self.dwell = dwell
        self.start_at = start_at
        self.stop_at = stop_at
        self._index = 0
        self.moves_made = 0

    def start(self) -> None:
        self.host.sim.schedule_at(self.start_at, self._hop, label=f"pingpong-{self.host.name}")

    def _hop(self) -> None:
        if self.stop_at is not None and self.host.sim.now >= self.stop_at:
            return
        medium = self.media[self._index % len(self.media)]
        self._index += 1
        self.moves_made += 1
        self.host.attach(medium)
        self.host.sim.schedule(self.dwell, self._hop, label=f"pingpong-{self.host.name}")


class RandomWaypointMobility:
    """Move to a uniformly random medium after an exponential dwell time.

    The network-level analogue of the classic random-waypoint model:
    "waypoints" are attachment points rather than coordinates, which is
    the granularity MHRP observes.
    """

    def __init__(
        self,
        host: MobileHost,
        media: Sequence[Medium],
        mean_dwell: float,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ) -> None:
        if not media:
            raise ValueError("need at least one medium")
        self.host = host
        self.media = list(media)
        self.mean_dwell = mean_dwell
        self.start_at = start_at
        self.stop_at = stop_at
        self.moves_made = 0
        self._current: Optional[Medium] = None

    def start(self) -> None:
        self.host.sim.schedule_at(self.start_at, self._hop, label=f"rwp-{self.host.name}")

    def _hop(self) -> None:
        sim = self.host.sim
        if self.stop_at is not None and sim.now >= self.stop_at:
            return
        choices = [m for m in self.media if m is not self._current] or self.media
        medium = sim.rng.choice(choices)
        self._current = medium
        self.moves_made += 1
        self.host.attach(medium)
        dwell = sim.rng.expovariate(1.0 / self.mean_dwell)
        sim.schedule(dwell, self._hop, label=f"rwp-{self.host.name}")
