"""Routers: IP nodes with forwarding enabled."""

from __future__ import annotations

from repro.ip.node import IPNode
from repro.netsim.simulator import Simulator


class Router(IPNode):
    """A packet-forwarding node.

    Backbone routers in the reproduced topologies are plain
    :class:`Router` instances — the paper requires "no changes to
    backbone routers", and the benches verify MHRP works with exactly
    this class in the core.  Agents (home/foreign/cache) are built *on*
    routers by attaching extensions and protocol handlers.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name, forwarding=True)
