"""Every MHRP control-message type, through the wire and the engines.

Extends the PR 4 trailing-bytes strictness suite (tests/core/
test_header.py) from the MHRP header to the *whole* control vocabulary:
each message type is round-tripped through ``encode_packet`` /
``decode_packet``, and then pushed through a live engine node under
seeded corruption — bit flips, truncations, trailing bytes — where the
contract is that an engine turn never raises: undetectable corruption
is processed as a (different but valid) message, detectable corruption
becomes a ``packet.dropped`` event with reason ``decode-error``.
"""

import random

import pytest

from repro.core.encapsulation import MHRPPayload
from repro.core.header import MHRPHeader
from repro.core.registration import (
    ACK,
    FA_CONNECT,
    FA_DISCONNECT,
    HA_REGISTER,
    RegistrationMessage,
)
from repro.errors import PacketError
from repro.ip.address import IPAddress
from repro.ip.icmp import (
    EchoMessage,
    ICMPError,
    LocationUpdate,
    RouterAdvertisement,
    RouterSolicitation,
    TYPE_DEST_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
)
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import ICMP, MHRP, MOBILE_CONTROL, TCP, UDP
from repro.wire.codec import decode_packet, encode_packet
from repro.wire.engine import EngineOutput
from repro.wire.topo import build_engine_world


def _ip(rng):
    return IPAddress(rng.randrange(1, 2**32))


def control_packets(rng):
    """One representative packet per control-message type (labelled)."""
    quoted = IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=UDP,
        payload=RawPayload(bytes(rng.randrange(256) for _ in range(12))),
        identification=rng.randrange(1, 2**16),
    )
    packets = []
    for kind in (FA_CONNECT, FA_DISCONNECT, HA_REGISTER, ACK):
        packets.append((f"registration-{kind}", IPPacket(
            src=_ip(rng), dst=_ip(rng), protocol=MOBILE_CONTROL,
            payload=RegistrationMessage(
                kind=kind, seq=rng.randrange(2**16),
                mobile_host=_ip(rng), agent=_ip(rng),
                hw_value=rng.randrange(2**48), ok=bool(rng.randrange(2)),
            ),
        )))
    packets.append(("location-update", IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=ICMP,
        payload=LocationUpdate(mobile_host=_ip(rng), foreign_agent=_ip(rng)),
    )))
    packets.append(("location-update-purge", IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=ICMP,
        payload=LocationUpdate(mobile_host=_ip(rng), purge=True),
    )))
    packets.append(("router-advertisement", IPPacket(
        src=_ip(rng), dst=IPAddress("255.255.255.255"), protocol=ICMP,
        payload=RouterAdvertisement(
            router_address=_ip(rng), lifetime=30.0,
            is_home_agent=True, is_foreign_agent=bool(rng.randrange(2)),
            boot_id=rng.randrange(2**32),
        ),
    )))
    packets.append(("router-solicitation", IPPacket(
        src=_ip(rng), dst=IPAddress("255.255.255.255"), protocol=ICMP,
        payload=RouterSolicitation(),
    )))
    packets.append(("echo-request", IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=ICMP,
        payload=EchoMessage.request(
            identifier=rng.randrange(2**16), sequence=rng.randrange(2**16),
            data=bytes(rng.randrange(256) for _ in range(8)),
        ),
    )))
    packets.append(("echo-reply", IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=ICMP,
        payload=EchoMessage.reply_to(EchoMessage.request(
            identifier=rng.randrange(2**16), sequence=rng.randrange(2**16),
            data=bytes(rng.randrange(256) for _ in range(8)),
        )),
    )))
    packets.append(("icmp-error-full-quote", IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=ICMP,
        payload=ICMPError(
            icmp_type=rng.choice([TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED]),
            code=1, quoted=quoted, quote_full=True,
        ),
    )))
    packets.append(("mhrp-tunnel", IPPacket(
        src=_ip(rng), dst=_ip(rng), protocol=MHRP,
        payload=MHRPPayload(
            header=MHRPHeader(
                orig_protocol=TCP, mobile_host=_ip(rng),
                previous_sources=[_ip(rng) for _ in range(rng.randrange(5))],
            ),
            inner=RawPayload(bytes(rng.randrange(256) for _ in range(16))),
        ),
    )))
    return packets


class TestCodecRoundTrip:
    """decode(encode(p)) reproduces the wire image for every type."""

    def test_reencode_is_byte_identical(self):
        rng = random.Random("control-roundtrip")
        for _ in range(25):
            for label, packet in control_packets(rng):
                wire = encode_packet(packet)
                again = encode_packet(decode_packet(wire))
                assert again == wire, label

    def test_protocol_fields_survive(self):
        rng = random.Random("control-fields")
        for label, packet in control_packets(rng):
            parsed = decode_packet(encode_packet(packet))
            assert parsed.src == packet.src, label
            assert parsed.dst == packet.dst, label
            assert parsed.protocol == packet.protocol, label
            assert parsed.ttl == packet.ttl, label
            assert type(parsed.payload) is type(packet.payload), label

    def test_every_truncation_rejected(self):
        rng = random.Random("control-truncation")
        for label, packet in control_packets(rng):
            wire = encode_packet(packet)
            for cut in range(len(wire)):
                with pytest.raises(PacketError):
                    decode_packet(wire[:cut])

    def test_trailing_bytes_rejected(self):
        rng = random.Random("control-trailing")
        for label, packet in control_packets(rng):
            wire = encode_packet(packet)
            for tail in (b"\x00", b"\x00\x00\x00\x00", b"\xff"):
                with pytest.raises(PacketError):
                    decode_packet(wire + tail)


class TestEngineIngestion:
    """The same messages pushed through a real engine node."""

    def node(self):
        # R3 is a plain forwarding router in the Figure-1 world: any
        # destination gets routed, so every message type exercises the
        # full ingress path.
        topo = build_engine_world({"kind": "figure1"})
        return topo.world.nodes["R3"]

    def test_clean_messages_never_decode_error(self):
        rng = random.Random("engine-clean")
        node = self.node()
        for label, packet in control_packets(rng):
            out = node.datagram_received(1.0, encode_packet(packet), "lan")
            assert isinstance(out, EngineOutput)
            for event in out.events:
                detail = event.detail
                assert detail.get("reason") != "decode-error", label

    def test_truncation_drops_with_decode_error(self):
        rng = random.Random("engine-truncation")
        node = self.node()
        for label, packet in control_packets(rng):
            wire = encode_packet(packet)
            for cut in (0, 1, len(wire) // 2, len(wire) - 1):
                before = node.counters["dropped"]
                out = node.datagram_received(1.0, wire[:cut], "lan")
                assert node.counters["dropped"] == before + 1, label
                assert any(
                    e.category == "packet.dropped"
                    and e.detail.get("reason") == "decode-error"
                    for e in out.events
                ), label

    def test_trailing_bytes_drop_with_decode_error(self):
        rng = random.Random("engine-trailing")
        node = self.node()
        for label, packet in control_packets(rng):
            wire = encode_packet(packet)
            out = node.datagram_received(1.0, wire + b"\x00", "lan")
            assert any(
                e.detail.get("reason") == "decode-error" for e in out.events
            ), label

    def test_seeded_bit_flips_never_raise(self):
        """Single-bit corruption anywhere in the datagram: the turn must
        complete.  Detectable flips (IP/ICMP/MHRP checksums, strict
        fixed-size formats) become decode-error drops; undetectable ones
        (e.g. a registration seq bit) parse as a different valid message
        and take the normal protocol path."""
        rng = random.Random("engine-bitflip")
        node = self.node()
        decode_errors = 0
        turns = 0
        for label, packet in control_packets(rng):
            wire = encode_packet(packet)
            for _ in range(40):
                corrupt = bytearray(wire)
                bit = rng.randrange(len(wire) * 8)
                corrupt[bit // 8] ^= 1 << (bit % 8)
                out = node.datagram_received(1.0, bytes(corrupt), "lan")
                turns += 1
                if any(
                    e.detail.get("reason") == "decode-error"
                    for e in out.events
                ):
                    decode_errors += 1
        # Header flips alone guarantee a detectable fraction; if nothing
        # was ever rejected the checksums are not being verified.
        assert 0 < decode_errors < turns

    def test_random_noise_never_raises(self):
        rng = random.Random("engine-noise")
        node = self.node()
        for _ in range(200):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            out = node.datagram_received(1.0, blob, "lan")
            assert isinstance(out, EngineOutput)


class TestLocalQueryCorruption:
    """Section 5.2 ``believe_home_agent=False`` query/response traffic
    under seeded corruption.

    A location update at a foreign agent that has forgotten the visitor
    makes it *query* the local cell (an ICMP echo request on the wire
    backends) instead of trusting the home agent.  The contract under
    corruption is the ingestion suite's, specialized to this exchange:
    corrupted replies never raise and never prove presence; only a
    clean reply re-adds the visitor when the verify timer looks."""

    M = IPAddress("10.2.0.10")       # M's home address
    HA = IPAddress("10.2.0.254")     # R2's home-agent address
    FA = IPAddress("10.4.0.254")     # R4's cell-side (FA) address

    def query_fa(self):
        """R4's foreign agent in local-query mode, plus the echo query
        it emits when the home agent's update names a visitor it does
        not have."""
        topo = build_engine_world({
            "kind": "figure1", "believe_home_agent": False,
        })
        r4 = topo.world.nodes["R4"]
        fa = topo.roles["R4"].foreign_agent
        update = IPPacket(
            src=self.HA, dst=self.FA, protocol=ICMP,
            payload=LocationUpdate(mobile_host=self.M, foreign_agent=self.FA),
        )
        out = r4.datagram_received(1.0, encode_packet(update), "lan")
        queries = [
            d for d in out.datagrams
            if d.iface == "cell" and not d.broadcast
        ]
        return r4, fa, queries

    def clean_reply(self, query_datagram):
        request = decode_packet(query_datagram.data)
        return encode_packet(IPPacket(
            src=self.M, dst=self.FA, protocol=ICMP,
            payload=EchoMessage.reply_to(request.payload),
        ))

    def fire_verify_timer(self, r4, at=10.0):
        return r4.timer_fired(at, f"fa-verify-{self.M}")

    def test_update_is_answered_with_a_query_not_belief(self):
        r4, fa, queries = self.query_fa()
        assert not fa.is_serving(self.M)  # did not believe the update
        assert len(queries) == 1
        probe = decode_packet(queries[0].data)
        assert probe.dst == self.M
        assert isinstance(probe.payload, EchoMessage)

    def test_clean_reply_proves_presence_and_readds(self):
        r4, fa, queries = self.query_fa()
        r4.datagram_received(2.0, self.clean_reply(queries[0]), "cell")
        assert fa.port.neighbor_known(fa.local_iface_name, self.M)
        out = self.fire_verify_timer(r4)
        assert fa.is_serving(self.M)
        assert any(
            e.detail.get("event") == "fa-recover-visitor" for e in out.events
        )

    def test_corrupted_replies_never_raise_or_invent_neighbours(self):
        """Bit flips anywhere in the reply: the turn completes, a
        detectable fraction is dropped, and — because the source
        address sits under the IP header checksum — no flip can
        fabricate the presence of a host other than the real replier
        (flips outside the header may still count as M's answer: the
        reply genuinely came from M, with a damaged echo body)."""
        rng = random.Random("query-bitflip")
        r4, fa, queries = self.query_fa()
        wire = self.clean_reply(queries[0])
        decode_errors = 0
        for _ in range(200):
            corrupt = bytearray(wire)
            bit = rng.randrange(len(wire) * 8)
            corrupt[bit // 8] ^= 1 << (bit % 8)
            out = r4.datagram_received(2.0, bytes(corrupt), "cell")
            assert isinstance(out, EngineOutput)
            if any(
                e.detail.get("reason") == "decode-error" for e in out.events
            ):
                decode_errors += 1
        assert decode_errors > 0
        assert fa.port._heard_neighbors <= {self.M}

    def test_source_corruption_never_proves_presence(self):
        """Every single-bit flip of the reply's source address (bytes
        12..16 of the IP header) is caught by the header checksum, so a
        reply cannot be mis-attributed: M stays unproven and the verify
        timer refuses to re-add it."""
        r4, fa, queries = self.query_fa()
        wire = self.clean_reply(queries[0])
        for offset in range(12, 16):
            for bit in range(8):
                corrupt = bytearray(wire)
                corrupt[offset] ^= 1 << bit
                out = r4.datagram_received(2.0, bytes(corrupt), "cell")
                assert any(
                    e.detail.get("reason") == "decode-error"
                    for e in out.events
                ), (offset, bit)
        assert not fa.port.neighbor_known(fa.local_iface_name, self.M)
        self.fire_verify_timer(r4)
        assert not fa.is_serving(self.M)

    def test_truncated_replies_are_dropped(self):
        r4, fa, queries = self.query_fa()
        wire = self.clean_reply(queries[0])
        for cut in (0, 1, len(wire) // 2, len(wire) - 1):
            out = r4.datagram_received(2.0, wire[:cut], "cell")
            assert any(
                e.detail.get("reason") == "decode-error" for e in out.events
            ), cut
        self.fire_verify_timer(r4)
        assert not fa.is_serving(self.M)
