"""A1 — ablation: bounding the previous-source list (paper Section 4.4).

"Any finite maximum length of the list ... may be imposed."  What does
the bound buy and cost?

- header bytes: the list adds 4 bytes per tunnel hop, capped at 4*k;
- overflow traffic: hitting the cap sends a location update to every
  flushed address;
- loop handling: a smaller k means loops larger than k are resolved by
  *contraction* over several passes instead of detection in one
  (Section 5.3) — more re-tunnels before the episode ends.

Swept over stale-chain delivery (the E2 workload) and the E3 loop.
"""

from __future__ import annotations

from benchmarks.loop_common import run_loop_experiment
from repro.baselines.mhrp_scenario import MHRPScenario
from repro.metrics import Table


def run_chain_with_bound(max_list: int, chain: int = 6):
    """The E2 stale-chain workload under a list bound: the first packet
    traverses ``chain`` stale forwarding pointers."""
    scenario = MHRPScenario(n_cells=chain + 1, max_previous_sources=max_list)
    scenario.move_to_cell(0)
    scenario.settle()
    scenario.send_packet()
    scenario.settle(3.0)
    for index in range(1, chain + 1):
        scenario.move_to_cell(index)
        scenario.settle()
    updates_before = sum(
        1 for e in scenario.sim.tracer.select("mhrp.update")
        if e.detail.get("event") == "sent"
    )
    wire_before = dict(scenario._wire.max_bytes)
    scenario.send_packet()
    scenario.settle(6.0)
    delivered = scenario.stats.packets_delivered
    updates = sum(
        1 for e in scenario.sim.tracer.select("mhrp.update")
        if e.detail.get("event") == "sent"
    ) - updates_before
    max_header = max(scenario.stats.overhead_bytes[-1:], default=0)
    # Largest wire size the chained packet reached anywhere.
    new_max = max(
        (size for uid, size in scenario._wire.max_bytes.items()
         if uid not in wire_before),
        default=0,
    )
    return {
        "delivered": delivered == scenario.stats.packets_sent,
        "updates": updates,
        "peak_wire": new_max,
    }


def build_ablation_tables():
    chain_table = Table(
        "A1a  6-hop stale chain vs list bound k",
        ["k", "delivered", "updates sent", "peak packet bytes"],
    )
    chain_rows = []
    for k in (1, 2, 4, 8):
        row = run_chain_with_bound(k)
        chain_rows.append((k, row))
        chain_table.add_row(
            k, "yes" if row["delivered"] else "NO", row["updates"], row["peak_wire"]
        )

    loop_table = Table(
        "A1b  8-agent loop vs list bound k",
        ["k", "re-tunnels to resolve", "updates sent"],
    )
    loop_rows = []
    for k in (1, 2, 4, 8, 16):
        run = run_loop_experiment(loop_size=8, max_list=k)
        loop_rows.append((k, run))
        loop_table.add_row(k, run.retunnels, run.updates_sent)
    return chain_table, loop_table, chain_rows, loop_rows


def test_ablation_list_length(benchmark, record):
    chain_table, loop_table, chain_rows, loop_rows = benchmark.pedantic(
        build_ablation_tables, rounds=1, iterations=1
    )
    record("A1_list_length", chain_table, loop_table)
    # Correctness never depends on the bound: every k delivers.
    for k, row in chain_rows:
        assert row["delivered"], f"k={k} failed to deliver"
    # Smaller bounds cap the header growth...
    peaks = {k: row["peak_wire"] for k, row in chain_rows}
    assert peaks[1] <= peaks[8]
    # ...and every loop resolves under every bound — including the
    # minimum bound k=1, where the list is flushed on every re-tunnel —
    # with the larger bounds resolving in at most as many re-tunnels.
    by_k = {k: run.retunnels for k, run in loop_rows}
    assert by_k[16] <= by_k[2] <= by_k[1]
    for k, run in loop_rows:
        assert run.resolved, f"k={k} loop never resolved"
        assert run.retunnels <= 24
