"""Byte-accurate packet decoding — the inverse of ``IPPacket.to_bytes``.

The simulator ships packets as Python objects, so serialization was
write-only: every message type had a wire-exact ``to_bytes`` (the paper's
Section 7 overhead numbers are measured from them) but nothing ever
parsed bytes back.  The live UDP backend makes decoding load-bearing:
each node is a real socket endpoint and *only* bytes cross between them.

Decoding follows the same strictness rules the PR 4 trailing-bytes suite
pinned for the MHRP header: fixed-size messages reject truncation *and*
trailing bytes, checksums are verified, and unknown structure raises
:class:`~repro.errors.PacketError` rather than being papered over.

What round-trips and what does not:

- ``decode_packet(encode_packet(p))`` reproduces every protocol-visible
  field.  The ``uid`` does *not* survive — it is a per-process tracing
  handle, never on the wire — and each decode assigns a fresh one.
- IP options are rejected (the live backend routes statically and never
  emits them); fragments likewise.
- ICMP errors are decoded back into :class:`ICMPError` only when the
  quote is a complete, self-consistent packet; partial quotes decode as
  :class:`OpaqueICMP`, which re-serializes verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encapsulation import MHRPPayload
from repro.core.header import FIXED_HEADER_LEN, MHRPHeader
from repro.core.registration import RegistrationMessage
from repro.errors import PacketError
from repro.ip.address import IPAddress
from repro.ip.checksum import internet_checksum
from repro.ip.icmp import (
    EchoMessage,
    ICMPError,
    LocationUpdate,
    RouterAdvertisement,
    RouterSolicitation,
    TYPE_DEST_UNREACHABLE,
    TYPE_ECHO_REPLY,
    TYPE_ECHO_REQUEST,
    TYPE_LOCATION_UPDATE,
    TYPE_ROUTER_ADVERTISEMENT,
    TYPE_ROUTER_SOLICITATION,
    TYPE_TIME_EXCEEDED,
)
from repro.ip.packet import BASE_HEADER_LEN, IPPacket, RawPayload
from repro.ip.protocols import ICMP, MHRP, MOBILE_CONTROL

_ICMP_HEADER_LEN = 8


@dataclass(frozen=True)
class OpaqueICMP:
    """An ICMP message whose body we carry but do not interpret.

    Used for error messages with partial quotes (the quote's embedded
    length fields describe the *original* packet, not the quoted bytes,
    so a truncated quote cannot be rebuilt into an ``IPPacket``) and for
    unknown ICMP types, which RFC 1122 says to silently discard — the
    node layer does the discarding; the codec preserves the bytes.
    """

    icmp_type: int
    code: int
    body: bytes = b""

    @property
    def is_error(self) -> bool:
        return self.icmp_type in (TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED)

    @property
    def byte_length(self) -> int:
        return _ICMP_HEADER_LEN + len(self.body)

    def to_bytes(self) -> bytes:
        head = bytearray(_ICMP_HEADER_LEN)
        head[0], head[1] = self.icmp_type, self.code
        return bytes(head) + self.body


def _decode_icmp_error(data: bytes) -> object:
    """An error with a full self-consistent quote becomes an
    :class:`ICMPError`; anything shorter stays opaque."""
    quote = data[_ICMP_HEADER_LEN:]
    if len(quote) >= BASE_HEADER_LEN:
        declared = int.from_bytes(quote[2:4], "big")
        if declared == len(quote):
            try:
                quoted = decode_packet(quote)
            except PacketError:
                quoted = None
            if quoted is not None:
                return ICMPError(
                    icmp_type=data[0],
                    code=data[1],
                    quoted=quoted,
                    quote_full=True,
                )
    return OpaqueICMP(icmp_type=data[0], code=data[1], body=quote)


def _decode_icmp(data: bytes) -> object:
    if len(data) < _ICMP_HEADER_LEN:
        raise PacketError(f"ICMP message truncated ({len(data)} bytes)")
    icmp_type = data[0]
    if icmp_type in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY):
        return EchoMessage.from_bytes(data)
    if icmp_type == TYPE_LOCATION_UPDATE:
        return LocationUpdate.from_bytes(data)
    if icmp_type == TYPE_ROUTER_ADVERTISEMENT:
        return RouterAdvertisement.from_bytes(data)
    if icmp_type == TYPE_ROUTER_SOLICITATION:
        if len(data) != _ICMP_HEADER_LEN:
            raise PacketError(
                f"solicitation has {len(data) - _ICMP_HEADER_LEN} trailing byte(s)"
            )
        return RouterSolicitation(code=data[1])
    if icmp_type in (TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED):
        return _decode_icmp_error(data)
    return OpaqueICMP(icmp_type=icmp_type, code=data[1], body=bytes(data[_ICMP_HEADER_LEN:]))


def _decode_mhrp(data: bytes) -> MHRPPayload:
    """Split the self-delimiting MHRP header from the inner payload."""
    if len(data) < FIXED_HEADER_LEN:
        raise PacketError(f"MHRP payload truncated ({len(data)} bytes)")
    header_len = FIXED_HEADER_LEN + 4 * data[1]
    if len(data) < header_len:
        raise PacketError(
            f"MHRP header claims {data[1]} sources but only {len(data)} bytes present"
        )
    header = MHRPHeader.from_bytes(data[:header_len])
    if header.orig_protocol == MHRP:
        # encapsulate() refuses to nest tunnels, so a nested header can
        # only be corruption; rejecting it also bounds decode recursion.
        raise PacketError("nested MHRP encapsulation")
    inner = _decode_payload(header.orig_protocol, data[header_len:])
    return MHRPPayload(header=header, inner=inner)


def _decode_payload(protocol: int, data: bytes) -> object:
    if protocol == MHRP:
        return _decode_mhrp(data)
    if protocol == MOBILE_CONTROL:
        return RegistrationMessage.from_bytes(data)
    if protocol == ICMP:
        return _decode_icmp(data)
    return RawPayload(bytes(data))


def decode_packet(data: bytes) -> IPPacket:
    """Parse one datagram into an :class:`IPPacket`.

    Strict: bad version/IHL, length disagreement, checksum mismatch,
    fragments, and IP options all raise :class:`PacketError`, as does any
    malformed payload of a protocol the codec understands.  A fresh
    ``uid`` is assigned (uids are tracing handles, never on the wire).
    """
    if len(data) < BASE_HEADER_LEN:
        raise PacketError(f"IP packet truncated ({len(data)} bytes)")
    version, ihl_words = data[0] >> 4, data[0] & 0x0F
    if version != 4:
        raise PacketError(f"bad IP version {version}")
    if ihl_words != 5:
        # to_bytes emits options, but the live backend never does: the
        # LSRR experiments are simulator-only.  Reject rather than skip.
        raise PacketError(f"IP options not supported by codec (IHL={ihl_words})")
    total_length = int.from_bytes(data[2:4], "big")
    if total_length != len(data):
        raise PacketError(
            f"IP total length {total_length} != datagram length {len(data)}"
        )
    if data[6:8] != b"\x00\x00":
        raise PacketError("fragmented packets not supported")
    if internet_checksum(data[:BASE_HEADER_LEN]) != 0:
        raise PacketError("IP header checksum mismatch")
    protocol = data[9]
    return IPPacket(
        src=IPAddress.from_bytes(data[12:16]),
        dst=IPAddress.from_bytes(data[16:20]),
        protocol=protocol,
        payload=_decode_payload(protocol, data[BASE_HEADER_LEN:]),
        ttl=data[8],
        tos=data[1],
        identification=int.from_bytes(data[4:6], "big"),
    )


def encode_packet(packet: IPPacket) -> bytes:
    """Serialize ``packet`` for the wire (delegates to ``to_bytes``)."""
    return packet.to_bytes()
