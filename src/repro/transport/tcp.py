"""A simplified but faithful reliable TCP.

Implements the three-way handshake, cumulative acknowledgements,
go-back-N retransmission with an exponentially backed-off timer, and
FIN-based close.  Out-of-order segments are discarded (the cumulative ACK
recovers them), which keeps the receiver trivially correct at the cost of
some efficiency — irrelevant here, where TCP exists to demonstrate that
connections survive mobile-host handoffs without the endpoints noticing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.ip.address import IPAddress
from repro.ip.node import IPNode
from repro.ip.packet import IPPacket
from repro.ip.protocols import TCP as PROTO_TCP
from repro.transport.segments import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    TCPSegment,
)

#: Maximum segment size (bytes of data per segment).
MSS = 1460
#: Initial retransmission timeout and its cap.
INITIAL_RTO = 1.0
MAX_RTO = 16.0
#: Give up after this many consecutive retransmissions of one segment.
MAX_RETRIES = 12
#: Send window in segments (go-back-N).
WINDOW_SEGMENTS = 8

# Connection states.
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"

ConnKey = Tuple[int, IPAddress, int]  # (local port, remote ip, remote port)


class TCPConnection:
    """One end of a TCP connection."""

    def __init__(
        self,
        stack: "TCPStack",
        local_port: int,
        remote: IPAddress,
        remote_port: int,
    ) -> None:
        self.stack = stack
        self.node = stack.node
        self.local_port = local_port
        self.remote = remote
        self.remote_port = remote_port
        self.state = CLOSED
        # Sender state.
        self.snd_una = 0  # oldest unacknowledged sequence number
        self.snd_nxt = 0  # next sequence number to use
        self._send_buffer: bytes = b""  # data accepted but not yet segmented
        self._inflight: list[TCPSegment] = []
        self._fin_queued = False
        # Receiver state.
        self.rcv_nxt = 0
        self.received = bytearray()
        # Callbacks.
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[str], None]] = None
        # Stats.
        self.retransmissions = 0
        self.segments_sent = 0
        self._retries = 0
        self._rto = INITIAL_RTO
        self._timer = self.node.sim.timer(self._on_timeout, label=f"tcp-rto-{local_port}")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    @property
    def closed(self) -> bool:
        return self.state == CLOSED

    def send(self, data: bytes) -> None:
        """Queue application data for reliable delivery."""
        if self.state not in (ESTABLISHED, SYN_SENT, SYN_RCVD, CLOSE_WAIT):
            raise TransportError(f"cannot send in state {self.state}")
        self._send_buffer += data
        self._pump()

    def close(self) -> None:
        """Finish sending queued data, then send FIN."""
        if self.state in (CLOSED, FIN_WAIT, LAST_ACK):
            return
        self._fin_queued = True
        self._pump()

    # ------------------------------------------------------------------
    # Active / passive open
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        isn = self.node.sim.rng.randrange(0, 2**16)
        self.snd_una = self.snd_nxt = isn
        self.state = SYN_SENT
        self._transmit(TCPSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_nxt, flags=FLAG_SYN,
        ), track=True)
        self.snd_nxt += 1

    def _open_passive(self, syn: TCPSegment) -> None:
        isn = self.node.sim.rng.randrange(0, 2**16)
        self.snd_una = self.snd_nxt = isn
        self.rcv_nxt = syn.seq + 1
        self.state = SYN_RCVD
        self._transmit(TCPSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_nxt, ack=self.rcv_nxt, flags=FLAG_SYN | FLAG_ACK,
        ), track=True)
        self.snd_nxt += 1

    # ------------------------------------------------------------------
    # Segment TX
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Segment buffered data into the window and send the FIN when due."""
        while (
            self._send_buffer
            and self.state in (ESTABLISHED, CLOSE_WAIT)
            and len(self._inflight) < WINDOW_SEGMENTS
        ):
            chunk, self._send_buffer = self._send_buffer[:MSS], self._send_buffer[MSS:]
            segment = TCPSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.snd_nxt, ack=self.rcv_nxt, flags=FLAG_ACK, data=chunk,
            )
            self.snd_nxt += len(chunk)
            self._transmit(segment, track=True)
        if (
            self._fin_queued
            and not self._send_buffer
            and self.state in (ESTABLISHED, CLOSE_WAIT)
            and len(self._inflight) < WINDOW_SEGMENTS
        ):
            segment = TCPSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.snd_nxt, ack=self.rcv_nxt, flags=FLAG_FIN | FLAG_ACK,
            )
            self.snd_nxt += 1
            self._fin_queued = False
            self.state = FIN_WAIT if self.state == ESTABLISHED else LAST_ACK
            self._transmit(segment, track=True)

    def _transmit(self, segment: TCPSegment, track: bool) -> None:
        if track:
            self._inflight.append(segment)
            if not self._timer.pending:
                self._timer.start(self._rto)
        self.segments_sent += 1
        packet = IPPacket(
            src=self.node.primary_address,
            dst=self.remote,
            protocol=PROTO_TCP,
            payload=segment,
        )
        self.node.send(packet)

    def _send_ack(self) -> None:
        self._transmit(TCPSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_nxt, ack=self.rcv_nxt, flags=FLAG_ACK,
        ), track=False)

    def _on_timeout(self) -> None:
        if not self._inflight:
            return
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._fail("retransmission limit reached")
            return
        self._rto = min(self._rto * 2, MAX_RTO)
        # Go-back-N: retransmit everything unacknowledged.
        for segment in self._inflight:
            self.retransmissions += 1
            self._transmit(segment, track=False)
        self._timer.start(self._rto)

    # ------------------------------------------------------------------
    # Segment RX
    # ------------------------------------------------------------------
    def handle_segment(self, segment: TCPSegment) -> None:
        if segment.rst:
            self._fail("connection reset by peer")
            return
        if self.state == SYN_SENT:
            if segment.syn and segment.ack_flag and segment.ack == self.snd_una + 1:
                self.snd_una = segment.ack
                self.rcv_nxt = segment.seq + 1
                self._drop_acked()
                self.state = ESTABLISHED
                self._reset_rto()
                self._send_ack()
                if self.on_established:
                    self.on_established()
                self._pump()
            return
        if segment.syn:
            # Duplicate SYN (our SYN-ACK was lost): re-acknowledge it.
            if self.state == SYN_RCVD:
                self._on_timeout_retransmit_synack()
            return
        if segment.ack_flag:
            self._process_ack(segment.ack)
        if self.state == SYN_RCVD and segment.ack_flag and segment.ack == self.snd_una:
            self.state = ESTABLISHED
            self._reset_rto()
            if self.on_established:
                self.on_established()
            self._pump()
        self._process_payload(segment)

    def _on_timeout_retransmit_synack(self) -> None:
        for segment in self._inflight:
            self._transmit(segment, track=False)

    def _process_ack(self, ack: int) -> None:
        if ack > self.snd_una:
            self.snd_una = ack
            self._drop_acked()
            self._retries = 0
            self._reset_rto()
            if self._inflight:
                self._timer.start(self._rto)
            else:
                self._timer.cancel()
                if self.state == LAST_ACK:
                    self._finish()
                elif self.state == FIN_WAIT and self.snd_una == self.snd_nxt:
                    # Our FIN is acknowledged; wait for the peer's FIN.
                    pass
            self._pump()

    def _drop_acked(self) -> None:
        self._inflight = [
            s for s in self._inflight if s.seq + s.seq_span > self.snd_una
        ]

    def _reset_rto(self) -> None:
        self._rto = INITIAL_RTO

    def _process_payload(self, segment: TCPSegment) -> None:
        if segment.seq != self.rcv_nxt:
            # Out of order or duplicate: re-ACK what we have.
            if segment.data or segment.fin:
                self._send_ack()
            return
        advanced = False
        if segment.data:
            self.received += segment.data
            self.rcv_nxt += len(segment.data)
            advanced = True
            if self.on_data:
                self.on_data(segment.data)
        if segment.fin:
            self.rcv_nxt += 1
            advanced = True
            if self.state == ESTABLISHED:
                self.state = CLOSE_WAIT
            elif self.state == FIN_WAIT:
                self._send_ack()
                self._finish()
                return
            if self.on_close:
                self.on_close()
        if advanced:
            self._send_ack()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _finish(self) -> None:
        self.state = CLOSED
        self._timer.cancel()
        self.stack.forget(self)

    def _fail(self, reason: str) -> None:
        self.state = CLOSED
        self._timer.cancel()
        self.stack.forget(self)
        if self.on_error:
            self.on_error(reason)

    def __repr__(self) -> str:
        return (
            f"<TCPConnection {self.node.name}:{self.local_port} <-> "
            f"{self.remote}:{self.remote_port} {self.state}>"
        )


class TCPStack:
    """Per-node TCP: listener table, connection demux."""

    def __init__(self, node: IPNode) -> None:
        self.node = node
        self._listeners: Dict[int, Callable[[TCPConnection], None]] = {}
        self._connections: Dict[ConnKey, TCPConnection] = {}
        self._next_ephemeral = 49152
        node.register_protocol(PROTO_TCP, self._handle_packet)

    def listen(self, port: int, on_connection: Callable[[TCPConnection], None]) -> None:
        """Accept connections on ``port``; ``on_connection`` receives each
        new connection as soon as its SYN arrives (callbacks may be set
        before the handshake completes)."""
        if port in self._listeners:
            raise TransportError(f"port {port} already listening on {self.node.name}")
        self._listeners[port] = on_connection

    def connect(
        self, remote: IPAddress, remote_port: int, local_port: Optional[int] = None
    ) -> TCPConnection:
        """Open a connection; returns immediately with state SYN_SENT."""
        if local_port is None:
            local_port = self._next_ephemeral
            self._next_ephemeral += 1
        key = (local_port, IPAddress(remote), remote_port)
        if key in self._connections:
            raise TransportError(f"connection {key} already exists")
        conn = TCPConnection(self, local_port, IPAddress(remote), remote_port)
        self._connections[key] = conn
        conn.open_active()
        return conn

    def forget(self, conn: TCPConnection) -> None:
        self._connections.pop((conn.local_port, conn.remote, conn.remote_port), None)

    def _handle_packet(self, packet: IPPacket, iface: object) -> None:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment)
            return
        if segment.syn and not segment.ack_flag:
            acceptor = self._listeners.get(segment.dst_port)
            if acceptor is not None:
                conn = TCPConnection(self, segment.dst_port, packet.src, segment.src_port)
                self._connections[key] = conn
                # Open first (SYN_RCVD) so the acceptor may immediately
                # queue data with send().
                conn._open_passive(segment)
                acceptor(conn)
                return
        if not segment.rst:
            # No matching connection: send RST (keeps lost-peer cases clean).
            reset = TCPSegment(
                src_port=segment.dst_port, dst_port=segment.src_port,
                seq=segment.ack, ack=segment.seq + segment.seq_span,
                flags=FLAG_RST | FLAG_ACK,
            )
            self.node.send(IPPacket(
                src=packet.dst if self.node.has_address(packet.dst) else self.node.primary_address,
                dst=packet.src,
                protocol=PROTO_TCP,
                payload=reset,
            ))
