"""Event and event-queue primitives.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a global
insertion counter.  Two events scheduled for the same instant therefore
fire in the order they were scheduled, which keeps simulations
deterministic and makes protocol races reproducible.

The queue's heap holds ``(time, sequence, payload)`` tuples rather than
bare :class:`Event` objects: tuple comparison runs entirely in C and the
``(time, sequence)`` prefix is unique, so heap sifting never calls back
into Python.  ``payload`` is the :class:`Event` for normally scheduled
work, or a bare callable for *bulk* entries (:meth:`EventQueue.push_bulk`
/ :meth:`EventQueue.push_many`) — pre-planned workload traffic that is
never cancelled or relabelled and therefore does not pay for an Event
object at all.  :meth:`EventQueue.pop` wraps bulk payloads lazily so the
public contract (``pop`` returns an :class:`Event`) is unchanged.
"""

from __future__ import annotations

import heapq
from itertools import repeat
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        sequence: global insertion counter used as a tiebreak.
        action: zero-argument callable invoked when the event fires.
        label: optional human-readable description used in traces.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.

    Ordering compares ``(time, sequence)`` only — the same total order
    the old ``dataclass(order=True)`` generated, hand-rolled because the
    generated methods build two tuples per comparison and this type sits
    on the hottest path in the repo.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        action: Callable[[], Any],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True

    # Ordering: identical to the previous dataclass(order=True, eq=True)
    # semantics, including unhashability (eq without hash).
    def __eq__(self, other: object) -> Any:
        if other.__class__ is Event:
            return self.time == other.time and self.sequence == other.sequence
        return NotImplemented

    def __lt__(self, other: "Event") -> Any:
        if other.__class__ is Event:
            if self.time != other.time:
                return self.time < other.time
            return self.sequence < other.sequence
        return NotImplemented

    def __le__(self, other: "Event") -> Any:
        if other.__class__ is Event:
            if self.time != other.time:
                return self.time < other.time
            return self.sequence <= other.sequence
        return NotImplemented

    def __gt__(self, other: "Event") -> Any:
        if other.__class__ is Event:
            if self.time != other.time:
                return self.time > other.time
            return self.sequence > other.sequence
        return NotImplemented

    def __ge__(self, other: "Event") -> Any:
        if other.__class__ is Event:
            if self.time != other.time:
                return self.time > other.time
            return self.sequence >= other.sequence
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} #{self.sequence}{label}{state}>"


#: Label reported for bulk entries (which carry no per-event label).
BULK_LABEL = "bulk"

#: Compaction trigger: at least this many cancelled events must be
#: pending before a compaction is considered at all.
COMPACT_MIN_CANCELLED = 64

#: ...and cancelled events must make up at least this fraction of the
#: heap.  Together the two bounds amortize compaction to O(1) per cancel.
COMPACT_MIN_FRACTION = 0.5


class EventQueue:
    """A priority queue of scheduled callbacks.

    The queue assigns the insertion sequence number itself so callers can
    never violate the FIFO-among-ties invariant.

    Cancelled events are discarded lazily on :meth:`pop`, which keeps
    :meth:`Event.cancel` O(1) — but a long run that keeps restarting
    :class:`~repro.netsim.simulator.Timer`\\ s far in the future (ARP
    timeouts, registration retries) would otherwise accumulate cancelled
    events without bound.  :meth:`note_cancelled` therefore triggers a
    **compaction** (filter + re-heapify, O(n)) once cancelled events are
    both numerous (:data:`COMPACT_MIN_CANCELLED`) and a majority of the
    heap (:data:`COMPACT_MIN_FRACTION`).  Event order is untouched:
    ordering is the total order ``(time, sequence)``, independent of the
    heap's internal layout.
    """

    def __init__(self) -> None:
        #: ``(time, sequence, payload)`` tuples; payload is an Event or,
        #: for bulk entries, a bare callable (see the module docstring).
        self._heap: list = []
        self._seq = 0
        self._live = 0
        #: Estimate of cancelled events still sitting in the heap.
        self._cancelled_pending = 0
        #: Number of compaction passes run (observability for tests).
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        seq = self._seq
        self._seq = seq + 1
        time = float(time)
        event = Event(time, seq, action, label)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_bulk(self, time: float, actions: Iterable[Callable[[], Any]]) -> int:
        """Schedule many same-time actions as lightweight *bulk* entries.

        Bulk entries carry no :class:`Event` object, no label, and cannot
        be cancelled — they are meant for pre-planned workload traffic
        (CBR batches, storm generators) where the per-event bookkeeping
        is pure overhead.  FIFO-among-ties still holds: each action gets
        its own sequence number, in iteration order.

        Returns the number of entries scheduled.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        time = float(time)
        if not isinstance(actions, (list, tuple)):
            actions = list(actions)
        n = len(actions)
        seq = self._seq
        # zip over repeat/range builds the tuples entirely in C.
        entries = list(zip(repeat(time, n), range(seq, seq + n), actions))
        self._seq = seq + n
        self._insert_entries(entries)
        return n

    def push_many(self, pairs: Iterable[Tuple[float, Callable[[], Any]]]) -> int:
        """Schedule many ``(time, action)`` pairs as bulk entries.

        Same contract as :meth:`push_bulk` but each entry brings its own
        fire time; sequence numbers follow iteration order, so two pairs
        at the same time fire in the order given.
        """
        seq = self._seq
        entries = []
        for time, action in pairs:
            if time < 0:
                raise SimulationError(
                    f"cannot schedule event at negative time {time!r}"
                )
            entries.append((float(time), seq, action))
            seq += 1
        self._seq = seq
        self._insert_entries(entries)
        return len(entries)

    def _insert_entries(self, entries: list) -> None:
        # For large batches a single O(n) heapify beats n O(log n)
        # pushes; for a handful of entries into a big heap the pushes
        # win.  The crossover is roughly where the batch stops being
        # small relative to the heap.
        heap = self._heap
        if len(entries) >= 4 and len(entries) * 8 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                heapq.heappush(heap, entry)
        self._live += len(entries)

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None`` if empty.

        Cancelled events are lazily discarded here rather than removed from
        the heap at cancel time, keeping :meth:`Event.cancel` O(1).  Bulk
        entries are wrapped in a transient :class:`Event` so callers see
        one uniform type.
        """
        heap = self._heap
        while heap:
            time, seq, payload = heapq.heappop(heap)
            if payload.__class__ is Event:
                if payload.cancelled:
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                self._live -= 1
                return payload
            self._live -= 1
            return Event(time, seq, payload, BULK_LABEL)
        self._live = 0
        self._cancelled_pending = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the next live event without removing it."""
        heap = self._heap
        while heap:
            payload = heap[0][2]
            if payload.__class__ is Event and payload.cancelled:
                heapq.heappop(heap)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                continue
            return heap[0][0]
        self._live = 0
        return None

    def note_cancelled(self) -> None:
        """Inform the queue that one pushed event was cancelled.

        Called by the simulator so ``len()`` stays an upper bound that
        converges to the true count; exactness is restored lazily by
        :meth:`pop`/:meth:`peek_time`.  Also drives the compaction
        heuristic (see the class docstring).
        """
        if self._live > 0:
            self._live -= 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= COMPACT_MIN_CANCELLED
            and self._cancelled_pending >= len(self._heap) * COMPACT_MIN_FRACTION
        ):
            self.compact()

    @property
    def cancelled_pending(self) -> int:
        """Estimated cancelled events still occupying heap slots."""
        return self._cancelled_pending

    @property
    def heap_size(self) -> int:
        """Physical heap size including not-yet-discarded cancelled events."""
        return len(self._heap)

    def compact(self) -> None:
        """Drop every cancelled event from the heap now (O(n))."""
        if self._cancelled_pending == 0:
            return
        self._heap = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self.compactions += 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._cancelled_pending = 0

    def iter_pending(self) -> Iterator[Event]:
        """Yield every live pending event, in arbitrary (heap) order.

        Bulk entries are wrapped in transient :class:`Event` views, so
        consumers (snapshot validation, diagnostics) see one type.
        """
        for time, seq, payload in self._heap:
            if payload.__class__ is Event:
                if not payload.cancelled:
                    yield payload
            else:
                yield Event(time, seq, payload, BULK_LABEL)

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    @property
    def sequence(self) -> int:
        """The next sequence number this queue would assign."""
        return self._seq

    def state_dict(self) -> dict:
        """JSON-able *diagnostic* state: the queue's counters, never its
        callables.  Pending events ride a deepcopy of the whole graph in
        session snapshots (see :mod:`repro.scenario.session`); this dict
        exists so restored-vs-cold runs can be diffed field by field.
        """
        return {
            "pending": self._live,
            "heap_size": len(self._heap),
            "cancelled_pending": self._cancelled_pending,
            "compactions": self.compactions,
            "sequence": self._seq,
        }

    def load_state(self, state: dict) -> None:
        """Restore the queue's counters from :meth:`state_dict`.

        The heap itself (callables) rides the session deepcopy and is
        intentionally untouched; what this restores is the bookkeeping
        that is *not* derivable from the heap — the sequence counter and
        the cancelled-pending estimate that drives compaction.  Before
        this existed a restored queue silently kept whatever estimate it
        happened to have, so a restored run could compact earlier or
        later than the run it was diffed against.
        """
        self._seq = int(state["sequence"])
        self._cancelled_pending = int(state["cancelled_pending"])
        self.compactions = int(state["compactions"])
