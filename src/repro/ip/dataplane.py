"""The per-hop dataplane pipeline.

Every packet a node touches — locally originated, transit, or inbound —
flows through one explicit pipeline of named stages:

::

    ingress ──► extension hooks ──► local-delivery
       │          (outbound /           ▲
       │           transit)             │ self-pointing route
       │              │                 │
       └──────────────┴──────► ttl/route ──► arp-resolve ──► egress

- **ingress** — entry point for packets received from the link layer
  (or injected by tests): broadcast and local-address classification,
  RFC 791 loose-source-route advancement.
- **extension hooks** — the mobility protocols' seam.  Hooks are
  registered per stage (``outbound`` for locally originated packets,
  ``transit`` for packets being forwarded) and keep the historical
  tri-state contract: return ``None`` to pass, a rewritten
  :class:`~repro.ip.packet.IPPacket` to route instead, or
  :data:`CONSUMED` when the packet was fully handled.
- **local-delivery** — protocol-handler dispatch for packets addressed
  to this node.
- **ttl/route** — TTL decrement/expiry and the longest-prefix-match
  lookup.
- **arp-resolve** — next-hop hardware address resolution (may queue the
  packet inside the ARP service).
- **egress** — MTU enforcement and hand-off to the interface.

The pipeline also owns the node's :class:`DataplaneCounters`; the
``python -m repro netstat`` CLI renders them per node and per stage.

:class:`~repro.ip.node.IPNode` drives the pipeline; the mobility roles
in ``repro.core`` register themselves as stage hooks instead of being
scanned through a bespoke extension interface.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.ip import icmp as icmp_mod
from repro.ip.address import IPAddress
from repro.ip.packet import IPPacket
from repro.link.frame import ETHERTYPE_IP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ip.node import IPNode
    from repro.link.frame import HWAddress
    from repro.link.interface import NetworkInterface

#: Sentinel returned by extension hooks to say "I consumed this packet".
CONSUMED = object()

#: The IPv4 limited broadcast address.
LIMITED_BROADCAST = IPAddress("255.255.255.255")

#: The pipeline's stage names, in traversal order.
STAGES = (
    "ingress",
    "outbound",
    "transit",
    "local-delivery",
    "ttl-route",
    "arp-resolve",
    "egress",
)

#: A hook for locally originated packets: ``fn(packet)`` tri-state.
OutboundHook = Callable[[IPPacket], object]
#: A hook for transit packets: ``fn(packet, in_iface)`` tri-state.
TransitHook = Callable[[IPPacket, "NetworkInterface"], object]


class DataplaneCounters:
    """Per-node packet counters, one attribute per pipeline event.

    Counter → stage mapping (what :func:`stage_of` reports):

    ==============  ==============  =======================================
    counter         stage           meaning
    ==============  ==============  =======================================
    ``rx``          ingress         packets entering from the link layer
    ``originated``  outbound        packets this node created and sent
    ``tunneled``    hooks           packets a home/foreign agent tunneled
    ``diverted``    hooks           packets a cache agent (or a foreign
                                    agent's local shortcut) pulled off the
                                    normal route
    ``delivered``   local-delivery  packets handed to a protocol handler
    ``forwarded``   ttl-route       transit packets passed to routing
    ``slow_path``   ttl-route       forwarded packets carrying IP options
    ``dropped``     (any)           per-reason drop counts
    ``icmp_sent``   (any)           ICMP errors this node generated
    ``tx``          egress          packets handed to an interface
    ==============  ==============  =======================================
    """

    __slots__ = (
        "rx",
        "tx",
        "originated",
        "forwarded",
        "delivered",
        "tunneled",
        "diverted",
        "slow_path",
        "icmp_sent",
        "dropped",
        "dropped_total",
    )

    #: counter name -> pipeline stage, for per-stage reporting.
    STAGE_OF = {
        "rx": "ingress",
        "originated": "outbound",
        "tunneled": "hooks",
        "diverted": "hooks",
        "delivered": "local-delivery",
        "forwarded": "ttl-route",
        "slow_path": "ttl-route",
        "dropped": "*",
        "icmp_sent": "*",
        "tx": "egress",
    }

    def __init__(self) -> None:
        self.rx = 0
        self.tx = 0
        self.originated = 0
        self.forwarded = 0
        self.delivered = 0
        self.tunneled = 0
        self.diverted = 0
        self.slow_path = 0
        self.icmp_sent = 0
        #: drop reason -> count (e.g. ``ttl-expired``, ``no-route``).
        self.dropped: Dict[str, int] = {}
        self.dropped_total = 0

    def note_drop(self, reason: str) -> None:
        self.dropped_total += 1
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of every counter (drop reasons as ``dropped[...]``)."""
        out = {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in ("dropped", "dropped_total")
        }
        out["dropped_total"] = self.dropped_total
        for reason in sorted(self.dropped):
            out[f"dropped[{reason}]"] = self.dropped[reason]
        return out

    def clear(self) -> None:
        for name in self.__slots__:
            if name == "dropped":
                self.dropped = {}
            else:
                setattr(self, name, 0)

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-able counter values for the session snapshot/diff contract."""
        out: Dict[str, object] = {
            name: getattr(self, name) for name in self.__slots__ if name != "dropped"
        }
        out["dropped"] = dict(sorted(self.dropped.items()))
        return out

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore every counter from :meth:`state_dict`."""
        for name in self.__slots__:
            if name == "dropped":
                self.dropped = dict(state["dropped"])  # type: ignore[arg-type]
            else:
                setattr(self, name, int(state[name]))  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = " ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"<DataplaneCounters {parts or 'idle'}>"


class Dataplane:
    """One node's packet pipeline: stage hooks, counters, and the stage
    driver methods themselves.

    Hook registration replaces the historical
    ``NetworkLayerExtension`` scan: a role registers the callables it
    wants run at the ``outbound`` and/or ``transit`` stage, in the order
    registration happens (which is the order the paper's role
    composition requires — see :mod:`repro.core.agent_router`).
    """

    __slots__ = (
        "node",
        "counters",
        "_outbound_hooks",
        "_transit_hooks",
        "_hook_names",
    )

    def __init__(self, node: "IPNode") -> None:
        self.node = node
        self.counters = DataplaneCounters()
        self._outbound_hooks: List[OutboundHook] = []
        self._transit_hooks: List[TransitHook] = []
        self._hook_names: Dict[str, List[str]] = {"outbound": [], "transit": []}

    # ------------------------------------------------------------------
    # Hook registration
    # ------------------------------------------------------------------
    def register(self, stage: str, hook: Callable, name: str = "") -> None:
        """Register ``hook`` at ``stage`` (``"outbound"`` or ``"transit"``).

        Outbound hooks are called ``hook(packet)``; transit hooks
        ``hook(packet, in_iface)``.  Both follow the tri-state contract
        (``None`` / rewritten packet / :data:`CONSUMED`).
        """
        if stage == "outbound":
            self._outbound_hooks.append(hook)
        elif stage == "transit":
            self._transit_hooks.append(hook)
        else:
            raise ValueError(
                f"unknown hook stage {stage!r} (hookable: outbound, transit)"
            )
        self._hook_names[stage].append(name or getattr(hook, "__qualname__", repr(hook)))

    def hook_names(self, stage: str) -> Tuple[str, ...]:
        """The registered hook labels at ``stage``, in run order."""
        return tuple(self._hook_names[stage])

    # ------------------------------------------------------------------
    # Stage: outbound (locally originated packets)
    # ------------------------------------------------------------------
    def outbound(self, packet: IPPacket) -> None:
        node = self.node
        sim = node.sim
        self.counters.originated += 1
        if sim.trace_active("ip.send"):
            sim.trace("ip.send", node.name, packet=repr(packet), uid=packet.uid)
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.packet_sent(sim.now, node.name, packet)
        auditor = sim.auditor
        if auditor is not None:
            auditor.packet_sent(sim.now, node.name, packet)
        obs = sim.obs
        if obs is None:
            for hook in self._outbound_hooks:
                result = hook(packet)
                if result is CONSUMED:
                    return
                if result is not None:
                    packet = result
                    break
        else:
            # Stage timing around the MHRP seam — only ever entered
            # with an obs plane attached, so the detached hot path
            # never reads a wall clock.
            started = perf_counter()
            consumed = False
            for hook in self._outbound_hooks:
                result = hook(packet)
                if result is CONSUMED:
                    consumed = True
                    break
                if result is not None:
                    packet = result
                    break
            obs.time_stage("sim", "outbound-hooks", perf_counter() - started)
            if consumed:
                return
        self.route(packet, transit=False)

    # ------------------------------------------------------------------
    # Stage: ingress (packets arriving from the link layer)
    # ------------------------------------------------------------------
    def ingress(self, packet: IPPacket, iface: Optional["NetworkInterface"]) -> None:
        node = self.node
        self.counters.rx += 1
        dst = packet.dst
        if dst == LIMITED_BROADCAST or (
            iface is not None and dst == iface.network.broadcast
        ):
            self.local_delivery(packet, iface)
            return
        if node.has_address(dst):
            lsrr = packet.find_lsrr()
            if lsrr is not None and not lsrr.exhausted:
                # RFC 791 loose source routing: consume the next hop,
                # record our address, and re-enter ingress as if the
                # packet had just arrived for its new destination — so
                # stage hooks (e.g. a forwarder delivering to a visiting
                # mobile host) get to see it.
                next_dst = lsrr.advance(recorded=dst)
                packet.dst = next_dst
                self.ingress(packet, iface)
                return
            self.local_delivery(packet, iface)
            return
        # Transit hooks see packets even on non-forwarding nodes: a
        # support host acting as a home agent attracts its mobile hosts'
        # traffic via proxy ARP and must get the chance to claim it
        # (Section 2 allows the agent to be "a separate support host").
        rewritten = False
        if iface is not None:
            obs = node.sim.obs
            if obs is None:
                for hook in self._transit_hooks:
                    result = hook(packet, iface)
                    if result is CONSUMED:
                        return
                    if result is not None:
                        packet = result
                        rewritten = True
                        break
            else:
                started = perf_counter()
                consumed = False
                for hook in self._transit_hooks:
                    result = hook(packet, iface)
                    if result is CONSUMED:
                        consumed = True
                        break
                    if result is not None:
                        packet = result
                        rewritten = True
                        break
                obs.time_stage("sim", "transit-hooks", perf_counter() - started)
                if consumed:
                    return
        if not node.forwarding and not rewritten:
            self.drop(packet, "not-a-router")
            return
        self.forward(packet)

    # ------------------------------------------------------------------
    # Stage: ttl/route
    # ------------------------------------------------------------------
    def forward(self, packet: IPPacket) -> None:
        """TTL checkpoint for transit packets, then routing."""
        node = self.node
        if packet.ttl <= 1:
            self.drop(packet, "ttl-expired")
            node._send_error(
                icmp_mod.ICMPError.time_exceeded(packet, quote_full=node.icmp_quote_full)
            )
            return
        packet.ttl -= 1
        counters = self.counters
        counters.forwarded += 1
        if packet.has_options:
            counters.slow_path += 1
        sim = node.sim
        if sim.trace_active("ip.forward"):
            sim.trace("ip.forward", node.name, packet=repr(packet), uid=packet.uid)
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.packet_forwarded(sim.now, node.name, packet)
        auditor = sim.auditor
        if auditor is not None:
            auditor.packet_forwarded(sim.now, node.name, packet)
        self.route(packet, transit=True)

    def route(self, packet: IPPacket, transit: bool) -> None:
        node = self.node
        route = node.routing_table.lookup(packet.dst)
        if route is None:
            self.drop(packet, "no-route")
            if transit:
                node._send_error(
                    icmp_mod.ICMPError.unreachable(
                        packet,
                        code=icmp_mod.CODE_NET_UNREACHABLE,
                        quote_full=node.icmp_quote_full,
                    )
                )
            return
        iface = node.interfaces.get(route.interface_name)
        if iface is None:
            raise RoutingError(f"{node.name}: route {route} names unknown interface")
        next_hop = route.next_hop if route.next_hop is not None else packet.dst
        if next_hop == iface.ip_address:
            # A self-pointing route (e.g. a host route installed for a
            # returned-home mobile host) means local delivery.
            self.local_delivery(packet, iface)
            return
        self.arp_resolve(iface, next_hop, packet)

    # ------------------------------------------------------------------
    # Stage: arp-resolve
    # ------------------------------------------------------------------
    def arp_resolve(
        self, iface: "NetworkInterface", next_hop: IPAddress, packet: IPPacket
    ) -> None:
        hw = self.node.arp[iface.name].resolve(next_hop, packet)
        if hw is not None:
            self.egress(iface, hw, packet)
        # A None result means the packet is queued inside the ARP
        # service; resolution (or failure) re-enters the pipeline via
        # the node's ARP callbacks.

    # ------------------------------------------------------------------
    # Stage: egress
    # ------------------------------------------------------------------
    def egress(
        self, iface: "NetworkInterface", hw: "HWAddress", packet: IPPacket
    ) -> None:
        """Final transmit step: enforce the outgoing medium's MTU.

        All packets are treated as don't-fragment (the modern PMTU
        discipline): an oversize packet is dropped and answered with
        ICMP "fragmentation needed".  Tunneling grows packets, so this
        is where the tunnel-overhead-vs-MTU interaction bites.
        """
        node = self.node
        medium = iface.medium
        if medium is not None and packet.total_length > medium.mtu:
            self.drop(packet, "mtu-exceeded")
            node._send_error(
                icmp_mod.ICMPError.unreachable(
                    packet,
                    code=icmp_mod.CODE_FRAG_NEEDED,
                    quote_full=node.icmp_quote_full,
                )
            )
            return
        self.counters.tx += 1
        iface.send_to(hw, ETHERTYPE_IP, packet)

    # ------------------------------------------------------------------
    # Stage: local-delivery
    # ------------------------------------------------------------------
    def local_delivery(
        self, packet: IPPacket, iface: Optional["NetworkInterface"]
    ) -> None:
        node = self.node
        sim = node.sim
        self.counters.delivered += 1
        if sim.trace_active("ip.deliver"):
            sim.trace("ip.deliver", node.name, packet=repr(packet), uid=packet.uid)
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.packet_delivered(sim.now, node.name, packet)
        auditor = sim.auditor
        if auditor is not None:
            auditor.packet_delivered(sim.now, node.name, packet)
        handler = node._protocol_handlers.get(packet.protocol)
        if handler is None:
            self.drop(packet, "protocol-unreachable")
            if not packet.dst == LIMITED_BROADCAST:
                node._send_error(
                    icmp_mod.ICMPError.unreachable(
                        packet,
                        code=icmp_mod.CODE_PROTOCOL_UNREACHABLE,
                        quote_full=node.icmp_quote_full,
                    )
                )
            return
        handler(packet, iface)

    # ------------------------------------------------------------------
    # Drops
    # ------------------------------------------------------------------
    def drop(self, packet: IPPacket, reason: str) -> None:
        self.counters.note_drop(reason)
        node = self.node
        sim = node.sim
        if sim.trace_active("ip.drop"):
            sim.trace(
                "ip.drop", node.name, reason=reason, packet=repr(packet), uid=packet.uid
            )
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.packet_dropped(sim.now, node.name, packet, reason)
        auditor = sim.auditor
        if auditor is not None:
            auditor.packet_dropped(sim.now, node.name, packet, reason)
