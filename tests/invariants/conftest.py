"""Fixtures for the invariant-auditor tests."""

from __future__ import annotations

import pytest

from repro.workloads import build_figure1


@pytest.fixture
def figure1():
    """The Figure 1 internetwork, fully converged, with M still detached."""
    return build_figure1()
