"""The seeded scenario fuzzer and its greedy minimal-repro shrinker.

A *scenario* is a plain JSON-serializable dict: a campus topology shape
plus four event schedules — mobility moves, router crash/reboot faults,
CBR traffic flows, and cache-convergence probe pairs.  Scenarios are
generated deterministically from a seed (:func:`make_scenario`),
executed under an attached :class:`~repro.invariants.InvariantAuditor`
(:func:`run_scenario`), and fanned out across seeds through the
``repro.harness`` runner (:func:`fuzz_cell` is the registered
``invariant-fuzz`` experiment's cell function).

When a seed produces violations, :func:`shrink_scenario` greedily
deletes schedule entries while the same rule still fires, converging on
a minimal replayable repro; :func:`write_artifact` saves it (scenario +
violations) as JSON, and ``python -m repro audit <artifact.json>``
replays it.

Schedule encodings
------------------

- move: ``{"t": 5.0, "host": 0, "to": 1}`` — ``to`` is a cell index,
  ``-1`` for the home network, ``-2`` for a planned disconnect.
- fault: ``{"t": 12.0, "node": "FR0", "kind": "crash"}`` — nodes are
  ``HR`` (home router) or ``FR<i>`` (cell routers); every generated
  crash is paired with a later reboot.
- flow: ``{"start": 1.0, "src": 0, "host": 0, "interval": 0.5,
  "count": 40, "port": 40000}`` — CBR/UDP from correspondent ``src`` to
  a mobile host's home address.
- probe: ``{"t": 44.0, "src": 0, "host": 0}`` — at ``t`` a warm probe
  refreshes every stale cache on the path; two seconds later an audited
  probe must reach the host without a single re-tunnel
  (``cache-convergence``).  Probes are only generated in the quiet tail
  of the schedule, after the last move/fault settles.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.invariants.auditor import InvariantAuditor
from repro.scenario import PROBE_GAP, PROBE_PROTOCOL, ScenarioSpec, Session

__all__ = [
    "PROBE_GAP",
    "PROBE_PROTOCOL",
    "make_scenario",
    "run_scenario",
    "fuzz_cell",
    "violated_rules",
    "shrink_scenario",
    "write_artifact",
    "load_scenario",
]

#: Simulated seconds the run continues past the horizon so every packet
#: born before it can reach a terminal (ARP retry exhaustion takes ~4s;
#: nothing else in the stack waits longer).
DRAIN_SECONDS = 10.0

SCENARIO_VERSION = 1


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
def make_scenario(seed: int, profile: str = "default") -> dict:
    """Deterministically generate one fuzz scenario from ``seed``."""
    rng = random.Random(("mhrp-fuzz", profile, seed).__repr__())
    quick = profile == "quick"
    horizon = 40.0 if quick else 60.0
    n_cells = rng.randint(2, 3 if quick else 4)
    n_hosts = rng.randint(1, 2 if quick else 3)
    # The Section 4.4 bound, including the degenerate minimum of 1.
    max_prev = rng.choice([1, 2, 4, 8])

    # Moves and faults stay clear of the probe window at the tail.
    active_end = horizon - 20.0
    moves: List[dict] = []
    for host in range(n_hosts):
        t = rng.uniform(1.0, 4.0)
        for _ in range(rng.randint(1, 3 if quick else 5)):
            t += rng.uniform(2.0, 8.0)
            if t >= active_end:
                break
            to = rng.choice(
                list(range(n_cells)) * 3 + [-1, -2]  # mostly cells
            )
            moves.append({"t": round(t, 3), "host": host, "to": to})
            if to == -2:
                # Don't strand the host: reconnect before the probes.
                t += rng.uniform(2.0, 6.0)
                if t < active_end:
                    moves.append(
                        {"t": round(t, 3), "host": host, "to": rng.randrange(n_cells)}
                    )

    faults: List[dict] = []
    if rng.random() < 0.6:
        node = rng.choice([f"FR{i}" for i in range(n_cells)] + ["HR"])
        down = rng.uniform(5.0, active_end - 8.0)
        up = down + rng.uniform(2.0, 6.0)
        faults.append({"t": round(down, 3), "node": node, "kind": "crash"})
        faults.append({"t": round(up, 3), "node": node, "kind": "reboot"})

    flows: List[dict] = []
    for i in range(rng.randint(1, 2 if quick else 3)):
        start = rng.uniform(0.5, 5.0)
        interval = rng.uniform(0.3, 1.5)
        count = max(1, int((active_end - start) / interval))
        flows.append(
            {
                "start": round(start, 3),
                "src": rng.randrange(2),
                "host": rng.randrange(n_hosts),
                "interval": round(interval, 3),
                "count": count,
                "port": 40000 + i,
            }
        )

    # Probe pairs in the quiet tail, spaced 4s so the per-destination
    # update rate limiter (min interval 1s) never suppresses a refresh.
    probes: List[dict] = []
    t = horizon - 12.0
    for _ in range(rng.randint(1, 2)):
        probes.append(
            {"t": round(t, 3), "src": rng.randrange(2), "host": rng.randrange(n_hosts)}
        )
        t += 4.0

    return {
        "version": SCENARIO_VERSION,
        "seed": seed,
        "profile": profile,
        "n_cells": n_cells,
        "n_hosts": n_hosts,
        "max_previous_sources": max_prev,
        "horizon": horizon,
        "moves": sorted(moves, key=lambda m: m["t"]),
        "faults": sorted(faults, key=lambda f: f["t"]),
        "flows": flows,
        "probes": probes,
    }


# ----------------------------------------------------------------------
# Scenario execution
# ----------------------------------------------------------------------
def _finish(session: Session) -> InvariantAuditor:
    """Run an at-checkpoint fuzz session to its horizon, drain, and
    finalize the auditor."""
    session.install_tail()
    horizon = session.spec.horizon
    session.run()
    # Periodic advertisers never let the queue go idle, so drain on the
    # clock: everything born before the horizon gets DRAIN_SECONDS to
    # terminate, and younger flights are excluded from conservation.
    session.run(until=horizon + DRAIN_SECONDS)
    auditor = session.auditor
    auditor.finalize(ignore_after=horizon)
    return auditor


def run_scenario(scenario: dict) -> InvariantAuditor:
    """Build, audit, and drain one scenario; returns the auditor with
    its recorded violations (conservation already finalized).

    The v1 scenario dict is adapted onto the session API by
    :meth:`ScenarioSpec.from_fuzz_v1`; the campus wiring, probe
    delivery, and every schedule action live in
    :class:`repro.scenario.session.Session` now.
    """
    spec = ScenarioSpec.from_fuzz_v1(scenario)
    return _finish(Session(spec).run_to_checkpoint())


# ----------------------------------------------------------------------
# Harness cell (the registered `invariant-fuzz` experiment)
# ----------------------------------------------------------------------
def fuzz_cell(seed: int, profile: str = "default") -> Dict[str, object]:
    """One fuzz seed as a harness cell: flat scalar metrics only (the
    CLI re-runs violating seeds in-process to shrink and save repros)."""
    auditor = run_scenario(make_scenario(seed, profile))
    rules = sorted({v.rule for v in auditor.violations})
    summary = auditor.summary()
    return {
        "violations": auditor.total_violations,
        "violated_rules": ",".join(rules),
        "packets_tracked": summary["packets_tracked"],
        "flights": summary["flights"],
        "hops_checked": summary["hops_checked"],
    }


# ----------------------------------------------------------------------
# Greedy shrinking
# ----------------------------------------------------------------------
def violated_rules(scenario: dict) -> Set[str]:
    auditor = run_scenario(scenario)
    return {v.rule for v in auditor.violations}


def _forked_rules(candidate: dict, cache: dict) -> Set[str]:
    """Violated rules for one shrink trial, forking a cached checkpoint.

    All trials vary only the schedule, never the topology, so they share
    one prefix hash: the first call builds the world (plus auditor) and
    snapshots it; later calls fork that snapshot instead of rebuilding.
    The shrinker's deletion oracle routes through this seam.
    """
    spec = ScenarioSpec.from_fuzz_v1(candidate)
    snapshot = cache.get("snapshot")
    if snapshot is None or snapshot.prefix_hash != spec.prefix_hash():
        snapshot = cache["snapshot"] = Session(spec).run_to_checkpoint().snapshot()
    auditor = _finish(snapshot.fork(spec))
    return {v.rule for v in auditor.violations}


def shrink_scenario(
    scenario: dict,
    rules: Optional[Set[str]] = None,
    max_runs: int = 200,
) -> dict:
    """Greedy delta-debugging: drop probes/flows/faults/moves one at a
    time while at least one of ``rules`` still fires, to a fixpoint.

    ``rules`` defaults to whatever the full scenario violates.  Bounded
    by ``max_runs`` replays so a pathological scenario cannot hang the
    CLI; the result is replayable either way.

    Deletion trials replay through :func:`_forked_rules`, so the world is
    built once and every candidate forks the shared checkpoint snapshot
    instead of rebuilding from scratch.
    """
    cache: dict = {}
    if rules is None:
        rules = _forked_rules(scenario, cache)
    if not rules:
        return scenario

    runs = 0

    def reproduces(candidate: dict) -> bool:
        nonlocal runs
        runs += 1
        return bool(_forked_rules(candidate, cache) & rules)

    current = json.loads(json.dumps(scenario))
    changed = True
    while changed and runs < max_runs:
        changed = False
        for key in ("probes", "flows", "faults", "moves"):
            index = 0
            while index < len(current[key]) and runs < max_runs:
                trial = json.loads(json.dumps(current))
                del trial[key][index]
                if reproduces(trial):
                    current = trial
                    changed = True
                else:
                    index += 1
    return current


# ----------------------------------------------------------------------
# Repro artifacts
# ----------------------------------------------------------------------
def write_artifact(
    directory: Path, scenario: dict, violations: Sequence, shrunk_from: dict
) -> Path:
    """Save a minimal repro as JSON; replay with
    ``python -m repro audit <path>``."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro_seed{scenario['seed']}.json"
    payload = {
        "scenario": scenario,
        "violations": [v.to_record() for v in violations],
        "shrunk_from": {
            key: len(shrunk_from[key]) for key in ("moves", "faults", "flows", "probes")
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_scenario(path: Path) -> dict:
    """Load a scenario from a repro artifact (or a bare scenario dict)."""
    data = json.loads(Path(path).read_text())
    scenario = data.get("scenario", data)
    for key in ("seed", "n_cells", "n_hosts", "max_previous_sources", "horizon"):
        if key not in scenario:
            raise ValueError(f"{path}: not a fuzz scenario (missing {key!r})")
    return scenario
