"""Per-node/per-stage dataplane counter reporting (``repro netstat``).

Every :class:`~repro.ip.node.IPNode` carries a
:class:`~repro.ip.dataplane.DataplaneCounters` on its pipeline; this
module collects those counters across a topology and renders them the
way ``netstat -s`` renders a kernel's — one block per node, counters
grouped by the pipeline stage that increments them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.ip.dataplane import STAGES, DataplaneCounters
from repro.metrics.report import Table


def node_counters(node) -> Dict[str, int]:
    """Flat counter snapshot for one node (drop reasons expanded)."""
    return node.dataplane.counters.snapshot()


def stage_rows(node) -> List[Tuple[str, str, int]]:
    """``(stage, counter, value)`` rows for one node, pipeline order,
    zero counters omitted."""
    counters: DataplaneCounters = node.dataplane.counters
    order = {stage: index for index, stage in enumerate(STAGES)}
    order["hooks"] = order["outbound"]  # hook counters sort with the hook stages
    order["*"] = len(STAGES)  # cross-stage counters (drops, icmp) last
    rows: List[Tuple[str, str, int]] = []
    for name, stage in DataplaneCounters.STAGE_OF.items():
        if name == "dropped":
            for reason in sorted(counters.dropped):
                rows.append((stage, f"dropped[{reason}]", counters.dropped[reason]))
            continue
        value = getattr(counters, name)
        if value:
            rows.append((stage, name, value))
    rows.sort(key=lambda row: order.get(row[0], len(STAGES)))
    return rows


def render_netstat(
    nodes: Iterable, title: str = "dataplane counters", include_idle: bool = False
) -> str:
    """One table of per-node, per-stage counters.

    Idle nodes (all counters zero) are skipped unless ``include_idle``.
    """
    table = Table(title, ["node", "stage", "counter", "count"])
    empty = True
    for node in nodes:
        rows = stage_rows(node)
        if not rows and include_idle:
            table.add_row(node.name, "-", "(idle)", 0)
            empty = False
            continue
        for stage, counter, value in rows:
            table.add_row(node.name, stage, counter, value)
            empty = False
    if empty:
        return f"{title}\n(no packets processed)"
    return table.render()


def netstat_json(nodes: Iterable, include_idle: bool = False) -> Dict[str, Dict[str, int]]:
    """Machine-readable netstat: node name -> flat counter snapshot.

    Zero counters are omitted per node (so the JSON diffs cleanly);
    idle nodes appear as empty dicts only with ``include_idle``.
    """
    out: Dict[str, Dict[str, int]] = {}
    for node in nodes:
        snapshot = {k: v for k, v in node_counters(node).items() if v}
        if snapshot or include_idle:
            out[node.name] = snapshot
    return out


def totals(nodes: Iterable) -> Dict[str, int]:
    """Counter sums across ``nodes`` (same keys as :func:`node_counters`)."""
    out: Dict[str, int] = {}
    for node in nodes:
        for name, value in node_counters(node).items():
            out[name] = out.get(name, 0) + value
    return out
