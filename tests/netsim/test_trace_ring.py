"""The tracer's bounded (ring-buffer) storage mode."""

import pytest

from repro.netsim.simulator import Simulator
from repro.netsim.trace import Tracer


def _fill(tracer, n, category="ip.send"):
    for i in range(n):
        tracer.record(float(i), category, "n", seq=i)


class TestRingBuffer:
    def test_bounded_keeps_newest(self):
        tracer = Tracer(max_entries=3)
        _fill(tracer, 5)
        assert [e.detail["seq"] for e in tracer.entries] == [2, 3, 4]
        assert tracer.dropped == 2
        assert tracer.max_entries == 3

    def test_default_is_unbounded(self):
        tracer = Tracer()
        _fill(tracer, 5)
        assert len(tracer.entries) == 5
        assert tracer.dropped == 0
        assert tracer.max_entries is None

    def test_limit_switch_trims_to_newest(self):
        tracer = Tracer()
        _fill(tracer, 5)
        tracer.limit(2)
        assert [e.detail["seq"] for e in tracer.entries] == [3, 4]
        assert tracer.dropped == 3

    def test_limit_back_to_unbounded(self):
        tracer = Tracer(max_entries=2)
        _fill(tracer, 4)
        tracer.limit(None)
        _fill(tracer, 3)
        assert len(tracer.entries) == 5  # 2 kept + 3 new, no more dropping
        assert tracer.dropped == 2

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_entries=0)
        with pytest.raises(ValueError):
            Tracer().limit(-1)

    def test_select_and_count_work_on_ring(self):
        tracer = Tracer(max_entries=4)
        _fill(tracer, 3, category="ip.send")
        _fill(tracer, 3, category="ip.drop")
        assert tracer.count("ip.drop") == 3
        assert tracer.count("ip.send") == 1  # two fell off the front
        assert [e.category for e in tracer] == ["ip.send"] + ["ip.drop"] * 3

    def test_listeners_see_every_entry(self):
        tracer = Tracer(max_entries=1)
        seen = []
        tracer.subscribe(seen.append)
        _fill(tracer, 4)
        assert len(seen) == 4  # the bound only limits storage

    def test_clear_resets_dropped(self):
        tracer = Tracer(max_entries=1)
        _fill(tracer, 3)
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer.entries) == 0
        _fill(tracer, 2)
        assert tracer.dropped == 1  # still bounded after clear

    def test_simulator_passthrough(self):
        sim = Simulator(seed=0, trace_max_entries=2)
        for _ in range(3):
            sim.trace("ip.send", "n")
        assert len(sim.tracer.entries) == 2
        assert sim.tracer.dropped == 1
