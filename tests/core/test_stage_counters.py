"""Per-stage dataplane counters under the MHRP mobility extensions.

The pipeline's ``tunneled``/``diverted`` counters are incremented by the
mobility hooks (home agent, foreign agent, cache agent), and the drop
accounting must attribute loop dissolution correctly — these are the
ISSUE's acceptance scenarios for the counter export.
"""

from __future__ import annotations

from unittest import mock


def test_home_agent_counts_tunneled(figure1_m_at_r4):
    topo = figure1_m_at_r4
    home_router = topo.r2  # runs M's home agent
    before = home_router.dataplane.counters.tunneled
    topo.s.ping(topo.m.home_address)
    topo.sim.run(until=topo.sim.now + 4.0)
    # The first packet to the roamed-away M is intercepted at the home
    # agent and tunneled to R4 (both directions of the echo count).
    assert home_router.dataplane.counters.tunneled > before


def test_cache_agent_counts_diverted(figure1_m_at_r4):
    topo = figure1_m_at_r4
    sender = topo.s  # a cache agent in the default Figure-1 build
    topo.s.ping(topo.m.home_address)
    topo.sim.run(until=topo.sim.now + 4.0)
    assert sender.dataplane.counters.diverted == 0  # cold cache: via home
    topo.s.ping(topo.m.home_address)
    topo.sim.run(until=topo.sim.now + 4.0)
    # The location update from the first exchange seeded S's cache, so
    # the second ping is diverted (tunneled directly) at the sender.
    assert sender.dataplane.counters.diverted >= 1


def test_loop_dissolution_counts_ttl_expired_drop():
    """With the previous-source list disabled (the Section 7 TTL-only
    counterfactual) a cache loop ends only when TTL hits zero — and that
    death must show up as a ``ttl-expired`` drop on some loop router."""
    from repro.core.header import MHRPHeader
    from repro.workloads.loops import build_loop, inject_and_measure

    with mock.patch.object(MHRPHeader, "contains_source", lambda self, a: False):
        topo = build_loop(loop_size=4, max_list=255, seed=3)
        run = inject_and_measure(topo, loop_size=4, max_list=255, ttl=32)
    assert not run.detected
    routers = [topo.home_router, *topo.cell_routers]
    ttl_drops = sum(
        r.dataplane.counters.dropped.get("ttl-expired", 0) for r in routers
    )
    assert ttl_drops >= 1
