"""T1 + E9 — per-packet overhead by protocol (paper Section 7).

The paper's comparison, quoted:

==================  ==========================================
protocol            claimed per-packet overhead
==================  ==========================================
MHRP                8 bytes (sender-built) / 12 (agent-built)
Columbia IPIP/MSR   24 bytes
Sony VIP            28 bytes
Matsushita IPTP     40 bytes
IBM LSRR            8 bytes to + 8 bytes from the mobile host
MHRP at home        0 bytes ("no overhead when ... connected
                    to its home network")
==================  ==========================================

This bench measures every number from **real serialized packets** on
the simulated wire (never from constants), running the identical UDP
workload over all six protocol implementations.
"""

from __future__ import annotations

from repro.baselines.columbia import ColumbiaScenario
from repro.baselines.ibm_lsrr import IBMLSRRScenario
from repro.baselines.matsushita import MatsushitaScenario
from repro.baselines.mhrp_scenario import MHRPScenario
from repro.baselines.sony_vip import SonyVIPScenario
from repro.baselines.sunshine_postel import SunshinePostelScenario
from repro.metrics import Table


def run_protocol(scenario, packets=4, cell=0):
    scenario.move_to_cell(cell)
    scenario.settle()
    if hasattr(scenario, "prime"):
        scenario.prime()
        scenario.settle(3.0)
    for _ in range(packets):
        scenario.send_packet()
        scenario.settle(3.0)
    return scenario.stats


def build_overhead_table():
    table = Table(
        "T1  Per-packet overhead by protocol (bytes, measured on the wire)",
        ["protocol", "first packet", "steady state", "paper claims"],
    )
    rows = []

    mhrp = run_protocol(MHRPScenario(n_cells=2))
    rows.append(("MHRP (away)", mhrp.overhead_bytes[0],
                 mhrp.overhead_bytes[-1], "12 / 8"))

    home = MHRPScenario(n_cells=2)
    home.move_home()
    home.settle()
    for _ in range(3):
        home.send_packet()
        home.settle(2.0)
    rows.append(("MHRP (at home)", home.stats.overhead_bytes[0],
                 home.stats.overhead_bytes[-1], "0"))

    sp = run_protocol(SunshinePostelScenario(n_cells=2))
    rows.append(("Sunshine-Postel", sp.overhead_bytes[0],
                 sp.overhead_bytes[-1], "(source route)"))

    # Cell 1: a host parked at the *nearest* MSR needs no tunnel at all,
    # so the representative (tunneled) case is any other cell.
    col = run_protocol(ColumbiaScenario(n_cells=2), cell=1)
    rows.append(("Columbia IPIP", col.overhead_bytes[0],
                 col.overhead_bytes[-1], "24"))

    vip = run_protocol(SonyVIPScenario(n_cells=2))
    rows.append(("Sony VIP", vip.overhead_bytes[0],
                 vip.overhead_bytes[-1], "28"))

    mat = run_protocol(MatsushitaScenario(n_cells=2))
    rows.append(("Matsushita IPTP", mat.overhead_bytes[0],
                 mat.overhead_bytes[-1], "40"))

    ibm = run_protocol(IBMLSRRScenario(n_cells=2))
    rows.append(("IBM LSRR (to MH)", ibm.overhead_bytes[0],
                 ibm.overhead_bytes[-1], "8 (+8 from MH)"))

    for name, first, steady, claim in rows:
        table.add_row(name, first, steady, claim)
    return table, {name: steady for name, first, steady, _ in rows}


def test_table1_overhead(benchmark, record):
    table, steady = benchmark.pedantic(build_overhead_table, rounds=1, iterations=1)
    record("T1_overhead", table)
    # The paper's ordering must hold exactly.
    assert steady["MHRP (away)"] == 8
    assert steady["MHRP (at home)"] == 0
    assert steady["Columbia IPIP"] == 24
    assert steady["Sony VIP"] == 28
    assert steady["Matsushita IPTP"] == 40
    assert steady["IBM LSRR (to MH)"] == 8
