"""Tests for MTU enforcement and the tunnel-overhead interaction."""

import pytest

from repro.errors import LinkError
from repro.ip import Host, IPNetwork, Router
from repro.ip.icmp import CODE_FRAG_NEEDED, TYPE_DEST_UNREACHABLE
from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import UDP
from repro.link import LAN
from repro.netsim import Simulator
from repro.workloads import build_figure1


class TestBasicMTU:
    def test_minimum_mtu_enforced(self, sim):
        with pytest.raises(LinkError):
            LAN(sim, "tiny", mtu=60)

    def test_fitting_packet_passes(self, sim):
        lan = LAN(sim, "lan", mtu=100)
        net = IPNetwork("10.0.0.0/24")
        a, b = Host(sim, "A"), Host(sim, "B")
        a.add_interface("eth0", net.host(1), net, medium=lan)
        b.add_interface("eth0", net.host(2), net, medium=lan)
        got = []
        b.register_protocol(UDP, lambda p, i: got.append(p))
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP,
                        payload=RawPayload(bytes(80))))  # total 100
        sim.run_until_idle()
        assert len(got) == 1

    def test_oversize_packet_draws_frag_needed(self, sim):
        lan = LAN(sim, "lan", mtu=100)
        net = IPNetwork("10.0.0.0/24")
        a, b = Host(sim, "A"), Host(sim, "B")
        a.add_interface("eth0", net.host(1), net, medium=lan)
        b.add_interface("eth0", net.host(2), net, medium=lan)
        errors = []
        a.on_icmp_error(lambda p, e: errors.append(e))
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=UDP,
                        payload=RawPayload(bytes(81))))  # total 101
        sim.run_until_idle()
        # Locally generated error: delivered back to A's own listeners...
        # the error is *sent* to A (the packet source) over the LAN.
        assert errors
        assert errors[0].icmp_type == TYPE_DEST_UNREACHABLE
        assert errors[0].code == CODE_FRAG_NEEDED

    def test_router_enforces_downstream_mtu(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        # Shrink B's LAN only.
        b.interfaces["eth0"].medium.mtu = 120
        r.interfaces["eth1"].medium.mtu = 120
        errors = []
        a.on_icmp_error(lambda p, e: errors.append(e))
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP,
                        payload=RawPayload(bytes(150))))
        sim.run_until_idle()
        assert errors
        assert errors[0].code == CODE_FRAG_NEEDED


class TestTunnelMTUInteraction:
    def test_tunnel_overhead_can_push_packet_over_mtu(self):
        """The classic mobile-IP pitfall: a packet sized exactly to the
        path MTU fits when M is home but exceeds it inside a tunnel.
        The error comes back to the sender (reverse-tunneled), naming
        fragmentation as the cause."""
        topo = build_figure1(sim=Simulator(seed=5))
        sim = topo.sim
        for medium in (topo.backbone, topo.net_a, topo.net_b, topo.net_c,
                       topo.net_d, topo.net_e):
            medium.mtu = 200
        payload = RawPayload(bytes(200 - 20 - 8))  # exactly MTU as plain UDP
        # At home: fits.
        topo.m.attach_home(topo.net_b)
        sim.run(until=5.0)
        server = topo.m.udp.bind(5000)
        client = topo.s.udp.bind(40001)
        client.send_to(payload.data, topo.m.home_address, 5000)
        sim.run(until=10.0)
        assert len(server.received) == 1
        # Away: the 12-byte agent tunnel pushes it to 212 > 200.
        topo.m.attach(topo.net_d)
        sim.run(until=15.0)
        errors = []
        topo.s.on_icmp_error(lambda p, e: errors.append(e))
        client.send_to(payload.data, topo.m.home_address, 5000)
        sim.run(until=25.0)
        assert len(server.received) == 1  # nothing more arrived
        assert errors
        assert errors[-1].code == CODE_FRAG_NEEDED

    def test_smaller_packets_fit_through_tunnel(self):
        topo = build_figure1(sim=Simulator(seed=5))
        sim = topo.sim
        for medium in (topo.backbone, topo.net_a, topo.net_b, topo.net_c,
                       topo.net_d, topo.net_e):
            medium.mtu = 200
        topo.m.attach(topo.net_d)
        sim.run(until=5.0)
        server = topo.m.udp.bind(5000)
        client = topo.s.udp.bind(40001)
        # Leave 12 bytes of headroom for the agent-built tunnel.
        client.send_to(bytes(200 - 20 - 8 - 12), topo.m.home_address, 5000)
        sim.run(until=15.0)
        assert len(server.received) == 1
