"""Integration tests for location-update rate limiting (Section 4.3).

"Any host or router that sends location update messages must provide
some mechanism for limiting the rate at which it sends these messages to
any single IP address" — protecting hosts that do not implement MHRP
from a flood of (to them meaningless) ICMP messages.
"""

import pytest

from repro.ip.packet import IPPacket, RawPayload
from repro.ip.protocols import UDP


def update_count(sim, sender_node, to=None):
    return sum(
        1 for e in sim.tracer.select("mhrp.update", node=sender_node)
        if e.detail.get("event") == "sent"
        and (to is None or e.detail.get("to") == to)
    )


class TestHomeAgentRateLimit:
    def test_burst_of_packets_draws_one_update(self, figure1_m_at_r4):
        """S never caches (plain host behaviour could do this too); the
        home agent tunnels every packet but updates S only once per
        rate-limit interval."""
        topo = figure1_m_at_r4
        sim = topo.sim
        topo.s.cache_agent.enabled = False  # S ignores updates: worst case
        sender = str(topo.net_a_prefix.host(1))
        for _ in range(10):  # a burst well inside one interval
            topo.s.send(IPPacket(
                src=topo.net_a_prefix.host(1), dst=topo.m.home_address,
                protocol=UDP, payload=RawPayload(b"x"),
            ))
        sim.run(until=sim.now + 0.5)
        assert topo.r2_roles.home_agent.packets_intercepted >= 10
        assert update_count(sim, "R2", to=sender) == 1
        assert topo.r2_roles.home_agent.limiter.suppressed >= 9

    def test_updates_resume_after_interval(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        sim = topo.sim
        topo.s.cache_agent.enabled = False
        sender = str(topo.net_a_prefix.host(1))

        def burst():
            for _ in range(3):
                topo.s.send(IPPacket(
                    src=topo.net_a_prefix.host(1), dst=topo.m.home_address,
                    protocol=UDP,
                ))

        burst()
        sim.run(until=sim.now + 2.0)   # past the 1 s minimum interval
        burst()
        sim.run(until=sim.now + 2.0)
        assert update_count(sim, "R2", to=sender) == 2

    def test_distinct_senders_limited_independently(self, figure1_m_at_r4):
        topo = figure1_m_at_r4
        sim = topo.sim
        from repro.ip import Host

        other = Host(sim, "S2")
        other.add_interface(
            "eth0", topo.net_a_prefix.host(2), topo.net_a_prefix, medium=topo.net_a
        )
        other.set_gateway(topo.net_a_prefix.host(254))
        topo.s.cache_agent.enabled = False
        for host in (topo.s, other):
            host.send(IPPacket(
                src=host.primary_address, dst=topo.m.home_address, protocol=UDP,
            ))
        sim.run(until=sim.now + 1.0)
        assert update_count(sim, "R2", to=str(topo.net_a_prefix.host(1))) == 1
        assert update_count(sim, "R2", to=str(topo.net_a_prefix.host(2))) == 1


class TestNonMHRPHostsUnharmed:
    def test_plain_host_gets_no_errors_from_updates(self, figure1):
        """A completely unmodified sender receives location updates,
        silently discards them (RFC 1122), and communication works."""
        from repro.workloads import build_figure1

        topo = build_figure1(sender_is_cache_agent=False)
        sim = topo.sim
        topo.m.attach(topo.net_d)
        sim.run(until=5.0)
        errors = []
        topo.s.on_icmp_error(lambda p, e: errors.append(e))
        replies = []
        topo.s.on_icmp(0, lambda p, m: replies.append(m))
        for _ in range(3):
            topo.s.ping(topo.m.home_address)
            sim.run(until=sim.now + 3.0)
        assert len(replies) == 3
        assert errors == []
        # Every packet kept going via the home agent (no cache at S).
        assert topo.r2_roles.home_agent.packets_intercepted >= 3
