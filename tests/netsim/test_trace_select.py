"""Tests for Tracer.select/count filtering (including detail predicates)."""

from repro.netsim.trace import Tracer


def _tracer_with_entries() -> Tracer:
    tracer = Tracer()
    tracer.record(0.0, "ip.send", "A", uid=1)
    tracer.record(0.1, "ip.forward", "R", uid=1)
    tracer.record(0.2, "ip.deliver", "B", uid=1)
    tracer.record(0.3, "ip.send", "A", uid=2)
    tracer.record(0.4, "ip.drop", "R", uid=2, reason="ttl-expired")
    return tracer


def test_select_by_category_and_node():
    tracer = _tracer_with_entries()
    assert len(tracer.select("ip.send")) == 2
    assert len(tracer.select(node="R")) == 2
    assert len(tracer.select("ip.forward", node="R")) == 1


def test_select_with_detail_predicate():
    tracer = _tracer_with_entries()
    only_uid_2 = tracer.select(where=lambda d: d.get("uid") == 2)
    assert [e.category for e in only_uid_2] == ["ip.send", "ip.drop"]
    drops = tracer.select("ip.drop", where=lambda d: d.get("reason") == "ttl-expired")
    assert len(drops) == 1


def test_count_matches_select_without_materializing():
    tracer = _tracer_with_entries()
    assert tracer.count() == len(tracer.select()) == 5
    assert tracer.count("ip.send") == 2
    assert tracer.count(node="R") == 2
    assert tracer.count(where=lambda d: d.get("uid") == 1) == 3
    assert tracer.count("ip.deliver", "B", lambda d: d.get("uid") == 1) == 1
