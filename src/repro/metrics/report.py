"""Plain-text tables for benchmark output.

The benches print the rows/series the paper reports; keeping the
renderer here means every bench emits the same format and
``EXPERIMENTS.md`` can quote the output verbatim.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def fmt_float(value: float, digits: int = 2) -> str:
    """Fixed-point with trailing-zero trimming ('3.10' -> '3.1')."""
    text = f"{value:.{digits}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


class Table:
    """A fixed-column plain-text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(
            [fmt_float(c) if isinstance(c, float) else str(c) for c in cells]
        )

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, rule, line(self.columns), rule]
        out.extend(line(row) for row in self.rows)
        out.append(rule)
        return "\n".join(out)

    def print(self) -> None:
        print()
        print(self.render())
