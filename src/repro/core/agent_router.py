"""Convenience assembly of the common agent deployments.

Section 2: "The functionality of a foreign agent, home agent, and cache
agent may be provided by separate hosts or routers on a network, or may
be combined in different ways on one or more hosts or routers ... any
node functioning as a home agent, foreign agent, or mobile host should
generally also function as a cache agent."

:func:`make_agent_router` builds the recommended combination on one
router, with the extension ordering the roles require:

1. the **foreign agent** first (so packets for locally visiting hosts
   are delivered on-link before anything else looks at them),
2. the **home agent** second (interception of away hosts' traffic),
3. the **cache agent** last (tunneling is an optimization applied only
   to packets the agents above did not claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cache_agent import CacheAgent
from repro.core.foreign_agent import ForeignAgent
from repro.core.home_agent import HomeAgent
from repro.core.persistence import LocationStore, MemoryStore
from repro.ip.node import IPNode


@dataclass
class AgentRouter:
    """The composed roles living on one node."""

    node: IPNode
    cache_agent: Optional[CacheAgent]
    foreign_agent: Optional[ForeignAgent]
    home_agent: Optional[HomeAgent]


def make_agent_router(
    node: IPNode,
    home_iface: Optional[str] = None,
    foreign_iface: Optional[str] = None,
    cache: bool = True,
    store: Optional[LocationStore] = None,
    durable_database: bool = True,
    **agent_kwargs,
) -> AgentRouter:
    """Attach agent roles to ``node``.

    Args:
        node: the router (or support host) to equip.
        home_iface: interface of the home network to serve as home agent
            for (``None`` = no home-agent role).
        foreign_iface: interface visitors attach through (``None`` = no
            foreign-agent role).
        cache: also run a cache agent (recommended by the paper).
        store: durable store for the home agent database; when ``None``
            and ``durable_database`` is true, a fresh
            :class:`~repro.core.persistence.MemoryStore` plays the disk.
        agent_kwargs: forwarded to both agent constructors where
            applicable (e.g. ``max_previous_sources``).
    """
    cache_agent: Optional[CacheAgent] = None
    foreign_agent: Optional[ForeignAgent] = None
    home_agent: Optional[HomeAgent] = None

    # Split kwargs: some options only make sense for one of the roles.
    fa_only = {"keep_forwarding_pointers", "believe_home_agent"}
    fa_kwargs = {k: v for k, v in agent_kwargs.items()}
    ha_kwargs = {k: v for k, v in agent_kwargs.items() if k not in fa_only}

    # Note the attach order: ForeignAgent then HomeAgent add themselves
    # as extensions in that order; CacheAgent is constructed last.
    if foreign_iface is not None:
        foreign_agent = ForeignAgent.attach(node, foreign_iface, **fa_kwargs)
    if home_iface is not None:
        if store is None and durable_database:
            store = MemoryStore()
        home_agent = HomeAgent.attach(node, home_iface, store=store, **ha_kwargs)
    if cache:
        cache_agent = CacheAgent(node, examine_forwarded=False)
        if foreign_agent is not None:
            foreign_agent.cache_agent = cache_agent
        if home_agent is not None:
            # The co-located cache must never contradict the home
            # agent's authoritative database about its *own* mobile
            # hosts: every registration refreshes (or clears, for a
            # return home) the cache entry.
            home_agent.location_listeners.append(cache_agent.learn)
    # Every agent is a tunnel head, so every agent reverses returned ICMP
    # errors (Section 4.5).
    from repro.core.icmp_handling import TunnelErrorHandler

    TunnelErrorHandler.attach(node, cache_agent=cache_agent)
    return AgentRouter(
        node=node,
        cache_agent=cache_agent,
        foreign_agent=foreign_agent,
        home_agent=home_agent,
    )
