"""CLI surfaces: ``python -m repro top`` in both modes, and the
no-telemetry exit codes of ``health`` and ``trace``."""

import json

import pytest

from repro.obs.cli import top_main
from repro.telemetry.cli import NO_DATA_EXIT, health_main, trace_main
from repro.telemetry.health import ProtocolHealth


class TestTopRunMode:
    def test_sim_backend_renders_combined_panel(self, capsys):
        assert top_main(["figure1", "--backend", "sim"]) == 0
        out = capsys.readouterr().out
        assert "protocol-health" not in out.lower() or out  # panel printed
        assert "observability plane" in out
        assert "spans:" in out
        assert "stage timing" in out

    def test_driver_backend_json_payload(self, capsys):
        assert top_main(["figure1", "--backend", "driver", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "driver"
        assert payload["health"]["registrations"] == 2
        assert payload["obs"]["spans"]["spans"] == 41

    def test_dag_json_matches_across_backends(self, capsys):
        assert top_main(
            ["figure1", "--backend", "sim", "--dag", "--json"]
        ) == 0
        sim_dag = json.loads(capsys.readouterr().out)["dag"]
        assert top_main(
            ["figure1", "--backend", "driver", "--dag", "--json"]
        ) == 0
        driver_dag = json.loads(capsys.readouterr().out)["dag"]
        assert sim_dag == driver_dag and len(sim_dag) >= 10

    def test_unknown_scenario_exits_2(self, capsys):
        assert top_main(["no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_perfetto_export(self, tmp_path, capsys):
        path = tmp_path / "spans.json"
        assert top_main(
            ["figure1", "--backend", "driver", "--quiet",
             "--perfetto", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        phases = {e.get("ph") for e in document["traceEvents"]}
        assert {"X", "s", "f"} <= phases


class TestTopTailMode:
    def _stream(self, tmp_path, rows):
        path = tmp_path / "snapshots.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        return path

    def test_tails_last_row(self, tmp_path, capsys):
        path = self._stream(tmp_path, [
            {"t_virtual": 1.0, "drift_virtual": 0.0, "event_loop_lag": 0.001,
             "timer_wheel_depth": 3, "datagrams_sent": 4,
             "datagrams_received": 4, "datagrams_unresolved": 0, "spans": 2,
             "metrics": {"counters": {"obs_events_total{category=x}": 9}}},
            {"t_virtual": 2.0, "drift_virtual": 0.5, "event_loop_lag": 0.002,
             "timer_wheel_depth": 5, "datagrams_sent": 8,
             "datagrams_received": 8, "datagrams_unresolved": 0, "spans": 6,
             "health": {"moves": 1, "registrations": 1,
                        "packets_delivered": 3, "packets_dropped": 0},
             "metrics": {"counters": {"obs_events_total{category=x}": 20}}},
        ])
        assert top_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "t=   2.000s" in out
        assert "drift=0.500s" in out
        assert "1 moves, 1 registrations" in out
        assert "obs_events_total{category=x}" in out

    def test_tail_json_emits_last_row(self, tmp_path, capsys):
        path = self._stream(tmp_path, [{"t_virtual": 7.0, "spans": 1}])
        assert top_main([str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["t_virtual"] == 7.0

    def test_empty_stream_exits_3(self, tmp_path, capsys):
        path = self._stream(tmp_path, [])
        assert top_main([str(path)]) == 3
        assert "no snapshot rows" in capsys.readouterr().err

    def test_partial_trailing_row_is_ignored(self, tmp_path, capsys):
        path = self._stream(tmp_path, [{"t_virtual": 1.0, "spans": 1}])
        with open(path, "a") as handle:
            handle.write('{"t_virtual": 2.0, "spa')  # torn write
        assert top_main([str(path)]) == 0
        assert "t=   1.000s" in capsys.readouterr().out

    def test_end_to_end_from_live_snapshots(self, tmp_path, capsys):
        """live --snapshots -> top tails the stream it wrote."""
        from repro.live.cli import live_main

        path = tmp_path / "live.jsonl"
        assert live_main(
            ["figure1", "--speed", "40", "--quiet",
             "--snapshots", str(path)]
        ) == 0
        assert top_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans: 41" in out


class TestNoTelemetryExits:
    def _empty_scenario(self, monkeypatch, module):
        hub = ProtocolHealth()
        monkeypatch.setattr(
            module, "run_scenario", lambda name, seed: (None, hub)
        )

    def test_health_exits_3_with_message(self, monkeypatch, capsys):
        import repro.telemetry.cli as cli

        self._empty_scenario(monkeypatch, cli)
        assert health_main(["figure1"]) == NO_DATA_EXIT
        err = capsys.readouterr().err
        assert "produced no telemetry data" in err
        assert "nothing to report" in err

    def test_trace_exits_3_with_message(self, monkeypatch, capsys):
        import repro.telemetry.cli as cli

        self._empty_scenario(monkeypatch, cli)
        assert trace_main([]) == NO_DATA_EXIT
        assert "no packet journeys" in capsys.readouterr().err

    def test_real_runs_still_exit_0(self):
        assert health_main(["figure1", "--quiet"]) == 0
        assert trace_main(["--json"]) == 0


class TestLiveObsFlags:
    def test_metrics_dump_and_dag(self, tmp_path, capsys):
        from repro.live.cli import live_main

        dump = tmp_path / "metrics.txt"
        assert live_main(
            ["figure1", "--speed", "40", "--json",
             "--metrics-dump", str(dump), "--dag"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["obs"]["spans"]["spans"] == 41
        assert len(payload["dag"]) >= 10
        exposition = dump.read_text()
        assert "repro_obs_events_total" in exposition
        assert "repro_live_datagrams_total" in exposition
