"""The Matsushita Packet Forwarding Server / IPTP protocol
(Wada, Ohnishi & Marsh, 1992 draft).

Properties reproduced from the paper's Section 7 characterization:

- the mobile host obtains a **temporary IP address** on every foreign
  network it visits (as with Columbia and Sony);
- in **forwarding mode** every packet for the host is routed to a
  **Packet Forwarding Server (PFS)** on its home network and tunneled
  with IPTP to the temporary address — "optimization of the routing to
  avoid going through the home network is not possible in forwarding
  mode";
- in **autonomous mode** senders cache the temporary address and tunnel
  their own packets directly;
- either way the tunnel costs **40 bytes** per packet: "a new IP header
  must be added, as well as a separate IPTP header".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.scenario_base import UDPProbeScenario
from repro.baselines.startopo import StarTopology
from repro.core.registration import (
    ControlDispatcher,
    RegistrationMessage,
    ReliableRegistrar,
    next_seq,
)
from repro.ip.address import IPAddress
from repro.ip.host import Host
from repro.ip.node import CONSUMED, IPNode, NetworkLayerExtension
from repro.ip.packet import IPPacket
from repro.ip.protocols import IPTP as PROTO_IPTP
from repro.link.medium import Medium
from repro.netsim.simulator import Simulator
from repro.scenario.world import build_world

MAT_REGISTER = "mat-register"  # mobile host -> PFS (current temp address)
MAT_NOTIFY = "mat-notify"      # mobile host -> correspondent (autonomous)

#: The IPTP header that rides inside the new outer IP header; with the
#: fresh 20-byte IP header the per-packet overhead is the 40 bytes
#: Section 7 reports.
IPTP_HEADER_LEN = 20


@dataclass
class IPTPPayload:
    """IPTP header + the complete original packet."""

    inner: IPPacket

    @property
    def byte_length(self) -> int:
        return IPTP_HEADER_LEN + self.inner.total_length

    def to_bytes(self) -> bytes:
        return b"\x00" * IPTP_HEADER_LEN + self.inner.to_bytes()

    @property
    def uid(self) -> int:
        return self.inner.uid

    def __repr__(self) -> str:
        return f"<IPTP {self.inner!r}>"


def iptp_encapsulate(packet: IPPacket, src: IPAddress, dst: IPAddress) -> IPPacket:
    return IPPacket(
        src=src, dst=dst, protocol=PROTO_IPTP,
        payload=IPTPPayload(inner=packet), uid=packet.uid,
    )


class PacketForwardingServer(NetworkLayerExtension):
    """The PFS on the mobile host's home network."""

    def __init__(self, node: IPNode, home_iface: str) -> None:
        self.node = node
        self.home_iface = home_iface
        self.table: Dict[IPAddress, IPAddress] = {}  # mh -> temp address
        self.tunnels_built = 0
        dispatcher = ControlDispatcher.for_node(node)
        dispatcher.on(MAT_REGISTER, self._on_register)
        self._dispatcher = dispatcher
        node.add_extension(self)

    @property
    def address(self) -> IPAddress:
        return self.node.interfaces[self.home_iface].ip_address

    def _on_register(self, packet: IPPacket, message: RegistrationMessage) -> None:
        mobile = message.mobile_host
        if message.agent.is_zero:
            self.table.pop(mobile, None)
        else:
            self.table[mobile] = message.agent
        self.node.sim.trace(
            "baseline", self.node.name, protocol="iptp", event="register",
            mobile_host=str(mobile), temp=str(message.agent),
        )
        self._dispatcher.send_ack(packet.src, message)

    def handle_outbound(self, packet: IPPacket):
        return self._maybe_tunnel(packet)

    def handle_transit(self, packet: IPPacket, in_iface):
        return self._maybe_tunnel(packet)

    def _maybe_tunnel(self, packet: IPPacket):
        if packet.protocol == PROTO_IPTP:
            return None
        temp = self.table.get(packet.dst)
        if temp is None:
            return None
        self.tunnels_built += 1
        self.node.sim.trace(
            "baseline", self.node.name, protocol="iptp", event="pfs-tunnel",
            to=str(temp), uid=packet.uid,
        )
        return iptp_encapsulate(packet, src=self.address, dst=temp)


class MatsushitaSender(NetworkLayerExtension):
    """Autonomous-mode sender: cache the temp address, tunnel directly."""

    def __init__(self, node: IPNode) -> None:
        self.node = node
        self.temp_cache: Dict[IPAddress, IPAddress] = {}
        self.tunnels_built = 0
        dispatcher = ControlDispatcher.for_node(node)
        dispatcher.on(MAT_NOTIFY, self._on_notify)
        self._dispatcher = dispatcher
        node.add_extension(self)

    def _on_notify(self, packet: IPPacket, message: RegistrationMessage) -> None:
        if message.agent.is_zero:
            self.temp_cache.pop(message.mobile_host, None)
        else:
            self.temp_cache[message.mobile_host] = message.agent
        self._dispatcher.send_ack(packet.src, message)

    def handle_outbound(self, packet: IPPacket):
        if packet.protocol == PROTO_IPTP:
            return None
        temp = self.temp_cache.get(packet.dst)
        if temp is None:
            return None  # forwarding mode: normal routing to the PFS
        self.tunnels_built += 1
        self.node.sim.trace(
            "baseline", self.node.name, protocol="iptp", event="direct-tunnel",
            to=str(temp), uid=packet.uid,
        )
        return iptp_encapsulate(packet, src=self.node.primary_address, dst=temp)


class MatsushitaMobileClient:
    """Mobile host side: temp addresses, PFS registration, decapsulation,
    and (autonomous mode) notifying correspondents."""

    def __init__(
        self,
        host: Host,
        pfs_address: IPAddress,
        autonomous: bool = False,
        correspondents: Optional[List[IPAddress]] = None,
    ) -> None:
        self.host = host
        self.pfs_address = IPAddress(pfs_address)
        self.autonomous = autonomous
        self.correspondents = [IPAddress(c) for c in (correspondents or [])]
        self.temp_address: Optional[IPAddress] = None
        self.registrar = ReliableRegistrar(host)
        host.register_protocol(PROTO_IPTP, self._on_tunneled)

    def move_to(
        self, medium: Medium, temp_address: IPAddress, gateway: IPAddress
    ) -> None:
        self.host.primary_interface.attach_to(medium)
        temp = IPAddress(temp_address)
        self.host.primary_interface.alias_addresses = {temp}
        self.temp_address = temp
        self.host.routing_table.set_default(
            IPAddress(gateway), self.host.primary_interface.name
        )
        self._register(temp)

    def move_home(self, medium: Medium, gateway: IPAddress) -> None:
        self.host.primary_interface.attach_to(medium)
        self.host.primary_interface.alias_addresses = set()
        self.temp_address = None
        self.host.routing_table.set_default(
            IPAddress(gateway), self.host.primary_interface.name
        )
        self._register(IPAddress.zero())

    def _register(self, temp: IPAddress) -> None:
        register = RegistrationMessage(
            kind=MAT_REGISTER, seq=next_seq(),
            mobile_host=self.host.primary_address, agent=temp,
        )
        self.registrar.send(self.pfs_address, register)
        if self.autonomous:
            for correspondent in self.correspondents:
                notify = RegistrationMessage(
                    kind=MAT_NOTIFY, seq=next_seq(),
                    mobile_host=self.host.primary_address, agent=temp,
                )
                self.registrar.send(correspondent, notify)

    def _on_tunneled(self, outer: IPPacket, iface) -> None:
        payload = outer.payload
        if not isinstance(payload, IPTPPayload):
            return
        inner = payload.inner
        if inner.dst == self.host.primary_address:
            self.host.packet_received(inner, iface)


class MatsushitaScenario(UDPProbeScenario):
    """Matsushita PFS/IPTP on the star topology.

    ``autonomous=False`` (default) reproduces forwarding mode: every
    packet hairpins through the PFS forever.  ``autonomous=True`` lets
    the sender tunnel directly once notified.
    """

    protocol_name = "Matsushita"

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        n_cells: int = 3,
        seed: int = 7,
        autonomous: bool = False,
    ) -> None:
        sim = sim or Simulator(seed=seed)
        super().__init__(sim, n_cells)
        self.autonomous = autonomous
        world = build_world(sim, {"kind": "star", "n_cells": n_cells})
        self.world = world
        self.topo: StarTopology = world.topo
        self.pfs = PacketForwardingServer(self.topo.home_router, "lan")
        correspondent = world.correspondents[0]
        self.sender = MatsushitaSender(correspondent)
        mobile = Host(sim, "M")
        mobile.add_interface("wifi0", self.topo.mobile_home_address, self.topo.home_net)
        mobile.routing_table.remove(self.topo.home_net)
        self.client = MatsushitaMobileClient(
            mobile,
            pfs_address=self.topo.home_net.host(254),
            autonomous=autonomous,
            correspondents=[self.topo.correspondent_address],
        )
        self._init_probe(correspondent, mobile, self.topo.mobile_home_address)
        sim.tracer.subscribe(self._count_control)

    def _count_control(self, entry) -> None:
        if entry.category == "baseline" and entry.detail.get("protocol") == "iptp":
            if entry.detail.get("event") == "register":
                self.note_control()
        if entry.category == "mhrp.register" and entry.detail.get("event") == "send":
            self.note_control()

    # ------------------------------------------------------------------
    def move_to_cell(self, index: int) -> None:
        self.client.move_to(
            self.topo.cells[index],
            temp_address=self.topo.cell_nets[index].host(99),
            gateway=self.topo.cell_nets[index].host(254),
        )

    def move_home(self) -> None:
        self.client.move_home(self.topo.home_lan, gateway=self.topo.home_net.host(254))

    def snapshot_state(self) -> None:
        sizes = [len(self.pfs.table), len(self.sender.temp_cache)]
        self.stats.max_node_state = max(self.stats.max_node_state, max(sizes))
        self.stats.global_state = 0
