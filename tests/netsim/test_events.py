"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.netsim.events import EventQueue


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        queue.push(3.0, lambda: fired.append("latest"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["early", "late", "latest"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.push(1.0, lambda i=i: fired.append(i))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == list(range(10))

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        event.cancel()
        while (ev := queue.pop()) is not None:
            ev.action()
        assert fired == ["kept"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.clear()
        assert not queue
        assert queue.pop() is None

    def test_len_counts_live_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
