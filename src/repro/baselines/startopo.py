"""The shared star topology every comparison scenario runs on.

One backbone LAN joins: a home network (where the mobile host's
permanent address lives), a correspondent network, and ``n_cells``
foreign attachment networks.  Protocol roles (agents, MSRs, forwarders,
PFSs, base stations) are attached by each scenario on top of the plain
routers built here, so every protocol sees the identical physical
internetwork.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ip.address import IPAddress, IPNetwork
from repro.ip.router import Router
from repro.link.medium import LAN, WirelessCell
from repro.netsim.simulator import Simulator


@dataclass
class StarTopology:
    sim: Simulator
    backbone: LAN
    backbone_net: IPNetwork
    home_lan: LAN
    home_net: IPNetwork
    home_router: Router
    corr_lan: LAN
    corr_net: IPNetwork
    corr_router: Router
    cells: List[WirelessCell] = field(default_factory=list)
    cell_nets: List[IPNetwork] = field(default_factory=list)
    cell_routers: List[Router] = field(default_factory=list)

    @property
    def mobile_home_address(self) -> IPAddress:
        """The conventional permanent address for the scenario's mobile host."""
        return self.home_net.host(10)

    @property
    def correspondent_address(self) -> IPAddress:
        return self.corr_net.host(1)

    def all_routers(self) -> List[Router]:
        return [self.home_router, self.corr_router, *self.cell_routers]


def build_star(
    sim: Simulator,
    n_cells: int,
    lan_latency: float = 0.001,
    wireless_latency: float = 0.003,
) -> StarTopology:
    """Build the star internetwork (no hosts, no protocol roles)."""
    if not 1 <= n_cells <= 200:
        raise ValueError("n_cells must be in 1..200")
    backbone_net = IPNetwork("10.0.0.0/16")
    backbone = LAN(sim, "backbone", latency=lan_latency)

    home_net = IPNetwork("10.1.0.0/24")
    home_lan = LAN(sim, "home", latency=lan_latency)
    home_router = Router(sim, "HR")
    home_router.add_interface("bb", backbone_net.host(1), backbone_net, medium=backbone)
    home_router.add_interface("lan", home_net.host(254), home_net, medium=home_lan)

    corr_net = IPNetwork("10.2.0.0/24")
    corr_lan = LAN(sim, "corr", latency=lan_latency)
    corr_router = Router(sim, "CR")
    corr_router.add_interface("bb", backbone_net.host(2), backbone_net, medium=backbone)
    corr_router.add_interface("lan", corr_net.host(254), corr_net, medium=corr_lan)

    topo = StarTopology(
        sim=sim,
        backbone=backbone,
        backbone_net=backbone_net,
        home_lan=home_lan,
        home_net=home_net,
        home_router=home_router,
        corr_lan=corr_lan,
        corr_net=corr_net,
        corr_router=corr_router,
    )

    home_router.routing_table.add_next_hop(corr_net, backbone_net.host(2), "bb")
    corr_router.routing_table.add_next_hop(home_net, backbone_net.host(1), "bb")

    for i in range(n_cells):
        third_octet = 100 + (i // 250)
        cell_net = IPNetwork(IPAddress((10 << 24) | (third_octet << 16) | ((i % 250) << 8)).value, 24)
        cell = WirelessCell(sim, f"cell{i}", latency=wireless_latency)
        router = Router(sim, f"FR{i}")
        bb_addr = backbone_net.host(10 + i)
        router.add_interface("bb", bb_addr, backbone_net, medium=backbone)
        router.add_interface("cell", cell_net.host(254), cell_net, medium=cell)
        router.routing_table.set_default(backbone_net.host(1), "bb")
        home_router.routing_table.add_next_hop(cell_net, bb_addr, "bb")
        corr_router.routing_table.add_next_hop(cell_net, bb_addr, "bb")
        for j, other in enumerate(topo.cell_routers):
            other.routing_table.add_next_hop(cell_net, bb_addr, "bb")
            router.routing_table.add_next_hop(
                topo.cell_nets[j], backbone_net.host(10 + j), "bb"
            )
        topo.cells.append(cell)
        topo.cell_nets.append(cell_net)
        topo.cell_routers.append(router)

    return topo
