"""E4 — scalability to very large numbers of mobile hosts
(paper Section 7, last paragraphs).

Claims measured:

1. **No broadcast growth.**  MHRP's control cost for one move is
   independent of how big the infrastructure is.  Columbia's MSR search
   multicasts to every MSR; Sony VIP floods every router — both grow
   linearly with the infrastructure.
2. **No global database.**  Sunshine–Postel concentrates one entry per
   mobile host *worldwide* in a single registry, plus a query there per
   (sender, move); MHRP's state lives at each organization's own home
   agent, and nothing anywhere else grows with the global host count.
3. **Per-node state stays small.**  MHRP caches are finite/LRU; the
   home agent's database is "one entry per own mobile host".

A thin wrapper over the ``scalability`` and ``scalability-state``
sweeps of :mod:`repro.harness`, pinned to the historical seeds (7 for
the scenarios, 5 for the state build) so the tables match the
originally recorded results; ``python -m repro sweep scalability`` runs
the same grids multi-seed and in parallel.
"""

from __future__ import annotations

from repro.harness import run_sweep
from repro.harness.experiments import SCALABILITY, SCALABILITY_STATE
from repro.metrics import Table

MOVE_SEED = 7
STATE_SEED = 5

_EVENTS = {
    "mhrp": ("MHRP", "move (registrations+updates)"),
    "sunshine-postel": ("Sunshine-Postel", "move (re-query global DB)"),
    "columbia": ("Columbia", "cold lookup (MSR multicast)"),
    "sony-vip": ("Sony VIP", "move (flood invalidation)"),
}


def build_broadcast_table():
    report = run_sweep(SCALABILITY.with_seeds([MOVE_SEED]), jobs=1, store=None)
    table = Table(
        "E4a  Control cost of the protocol's location-discovery event "
        "vs infrastructure size",
        ["protocol", "event measured", "2 cells", "6 cells", "12 cells", "growth"],
    )
    series = {}
    for protocol, (label, event) in _EVENTS.items():
        costs = []
        for n_cells in (2, 6, 12):
            run = report.find(seed=MOVE_SEED, protocol=protocol, n_cells=n_cells)
            assert run.ok, run.error
            costs.append(run.metrics["control_cost"])
        series[label] = costs
        growth = "grows" if costs[2] > costs[0] + 3 else "constant"
        table.add_row(label, event, *costs, growth)
    return table, series


def build_state_table():
    """MHRP per-node state with N mobile hosts on one home agent."""
    report = run_sweep(SCALABILITY_STATE.with_seeds([STATE_SEED]), jobs=1, store=None)
    table = Table(
        "E4b  MHRP state with N mobile hosts (one organization)",
        ["N hosts", "home agent DB", "max FA visitors", "global structures"],
    )
    rows = []
    for n_hosts in (4, 16, 48):
        run = report.find(seed=STATE_SEED, n_hosts=n_hosts)
        assert run.ok, run.error
        db_size = run.metrics["db_size"]
        max_visitors = run.metrics["max_visitors"]
        table.add_row(n_hosts, db_size, max_visitors, run.metrics["global_structures"])
        rows.append((n_hosts, db_size, max_visitors))
    return table, rows


def test_scalability(benchmark, record):
    def build():
        return build_broadcast_table(), build_state_table()

    (broadcast_table, series), (state_table, rows) = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    record("E4_scalability", broadcast_table, state_table)
    # MHRP's move cost is flat in infrastructure size.
    mhrp = series["MHRP"]
    assert max(mhrp) - min(mhrp) <= 2
    # The broadcast/flooding protocols grow with it.
    assert series["Columbia"][2] > series["Columbia"][0]
    assert series["Sony VIP"][2] > series["Sony VIP"][0]
    # Home agent database holds exactly its own registered hosts; each
    # foreign agent holds only its current visitors.
    for n_hosts, db_size, max_visitors in rows:
        assert db_size == n_hosts
        assert max_visitors <= -(-n_hosts // 4) + 1  # ~N/4 per cell
