"""Unit tests for the mobility models."""

import pytest

from repro.workloads import (
    PingPongMobility,
    RandomWaypointMobility,
    ScriptedMobility,
    build_figure1,
)


@pytest.fixture
def topo():
    return build_figure1()


class TestScriptedMobility:
    def test_moves_fire_at_scripted_times(self, topo):
        moves = [(5.0, topo.net_d), (15.0, topo.net_e), (25.0, topo.net_b)]
        ScriptedMobility(topo.m, moves).start()
        sim = topo.sim
        sim.run(until=10.0)
        assert topo.m.iface.medium is topo.net_d
        sim.run(until=20.0)
        assert topo.m.iface.medium is topo.net_e
        sim.run(until=30.0)
        assert topo.m.iface.medium is topo.net_b
        assert topo.m.at_home

    def test_registration_follows_each_move(self, topo):
        ScriptedMobility(topo.m, [(1.0, topo.net_d), (10.0, topo.net_e)]).start()
        topo.sim.run(until=20.0)
        assert topo.m.current_foreign_agent == topo.fa5_address
        db = topo.r2_roles.home_agent.database
        assert db.foreign_agent_of(topo.m.home_address) == topo.fa5_address


class TestPingPongMobility:
    def test_alternates_between_media(self, topo):
        mover = PingPongMobility(
            topo.m, [topo.net_d, topo.net_e], dwell=5.0, stop_at=26.0
        )
        mover.start()
        topo.sim.run(until=30.0)
        # Hops at t=0,5,10,15,20,25 -> 6 moves.
        assert mover.moves_made == 6
        assert topo.m.moves == 6

    def test_requires_two_media(self, topo):
        with pytest.raises(ValueError):
            PingPongMobility(topo.m, [topo.net_d], dwell=1.0)

    def test_connectivity_is_maintained_throughout(self, topo):
        mover = PingPongMobility(
            topo.m, [topo.net_d, topo.net_e], dwell=8.0, stop_at=35.0
        )
        mover.start()
        sim = topo.sim
        replies = []
        topo.s.on_icmp(0, lambda p, m: replies.append(m))
        # Ping between hops (hops at 0/8/16/24/32; pings at 4/12/20/28).
        for t in (4.0, 12.0, 20.0, 28.0):
            sim.run(until=t)
            topo.s.ping(topo.m.home_address)
        sim.run(until=40.0)
        assert len(replies) == 4


class TestRandomWaypointMobility:
    def test_moves_happen_and_are_bounded(self, topo):
        mover = RandomWaypointMobility(
            topo.m, [topo.net_d, topo.net_e], mean_dwell=5.0, stop_at=60.0
        )
        mover.start()
        topo.sim.run(until=70.0)
        assert mover.moves_made >= 2
        assert topo.m.moves == mover.moves_made

    def test_never_revisits_current_medium(self, topo):
        """With two media the model must alternate, never 'move' in place."""
        visited = []
        original_attach = topo.m.attach

        def spy_attach(medium, solicit=True):
            visited.append(medium)
            original_attach(medium, solicit=solicit)

        topo.m.attach = spy_attach  # type: ignore[method-assign]
        mover = RandomWaypointMobility(
            topo.m, [topo.net_d, topo.net_e], mean_dwell=3.0, stop_at=40.0
        )
        mover.start()
        topo.sim.run(until=50.0)
        for previous, current in zip(visited, visited[1:]):
            assert previous is not current

    def test_requires_media(self, topo):
        with pytest.raises(ValueError):
            RandomWaypointMobility(topo.m, [], mean_dwell=1.0)

    def test_deterministic_for_seed(self):
        def run(seed):
            from repro.netsim import Simulator

            t = build_figure1(sim=Simulator(seed=seed))
            mover = RandomWaypointMobility(
                t.m, [t.net_d, t.net_e], mean_dwell=4.0, stop_at=40.0
            )
            mover.start()
            t.sim.run(until=50.0)
            return mover.moves_made

        assert run(11) == run(11)
