"""Network interfaces: where a node meets a medium."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import LinkError
from repro.ip.address import IPAddress, IPNetwork
from repro.link.frame import Frame, HWAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ip.node import IPNode
    from repro.link.medium import Medium


class NetworkInterface:
    """One attachment point of a node.

    An interface carries a fixed hardware address, an IP address, and the
    IP network of the segment it sits on.  Interfaces can be re-homed to a
    different medium (this is how mobile hosts move): the hardware address
    travels with the interface, while the configured IP address stays the
    mobile host's *home* address, exactly as the paper requires.
    """

    def __init__(
        self,
        node: "IPNode",
        name: str,
        ip_address: IPAddress,
        network: IPNetwork,
        hw_address: Optional[HWAddress] = None,
    ) -> None:
        self.node = node
        self.name = name
        self.ip_address = IPAddress(ip_address)
        self.network = network
        self.hw_address = hw_address or HWAddress.allocate()
        self.medium: Optional["Medium"] = None
        self.up = True
        #: Additional addresses this interface answers for (e.g. the
        #: temporary address of a mobile host serving as its own foreign
        #: agent, paper Section 2).
        self.alias_addresses: set[IPAddress] = set()

    @property
    def node_name(self) -> str:
        """The owning node's name, for traces."""
        return self.node.name

    @property
    def attached(self) -> bool:
        return self.medium is not None

    # ------------------------------------------------------------------
    # Medium management
    # ------------------------------------------------------------------
    def attach_to(self, medium: "Medium") -> None:
        """Attach this interface to ``medium`` (detaching first if needed)."""
        if self.medium is not None:
            self.detach()
        medium.attach(self)
        self.medium = medium

    def detach(self) -> None:
        """Detach from the current medium, if any."""
        if self.medium is not None:
            self.medium.detach(self)
            self.medium = None

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def send_frame(self, frame: Frame) -> None:
        """Transmit a frame if the interface is up and attached.

        A down or detached interface silently drops outbound frames, the
        same as real hardware; callers relying on delivery must use
        acknowledgement at a higher layer.
        """
        if not self.up or self.medium is None:
            sim = self.node.sim
            sim.trace(
                "link.drop", self.node_name, iface=self.name, reason="iface-down"
            )
            auditor = sim.auditor
            if auditor is not None:
                auditor.frame_lost(sim.now, self.node_name, frame.payload, "iface-down")
            return
        self.medium.transmit(self, frame)

    def send_to(self, dst_hw: HWAddress, ethertype: int, payload: object) -> None:
        """Convenience: build and transmit a frame to ``dst_hw``."""
        self.send_frame(Frame(src=self.hw_address, dst=dst_hw, ethertype=ethertype, payload=payload))

    def receive_frame(self, frame: Frame) -> None:
        """Called by the medium when a frame arrives for this interface."""
        if not self.up:
            sim = self.node.sim
            auditor = sim.auditor
            if auditor is not None:
                auditor.frame_absorbed(sim.now, self.node_name, frame.payload)
            return
        self.node.frame_received(self, frame)

    def __repr__(self) -> str:
        where = self.medium.name if self.medium else "detached"
        return f"<iface {self.node_name}/{self.name} {self.ip_address} on {where}>"
