"""A RIP-style distance-vector interior routing protocol (RFC 1058).

The MHRP paper assumes "ordinary IP routing" underneath and, in the
Section 3 routing-domain variant, that host-specific routes "would be
advertised" within a domain by its interior protocol.  The static
tables built by the topology helpers model a converged network; this
module supplies the *protocol* for deployments that want dynamic
convergence — including the host-route variant propagating /32s through
a real IGP (see :mod:`repro.core.host_routes`: ``RoutingDomain`` is the
instantaneous abstraction, ``RIPDomainHomeAgentBinding`` /
``RIPDomainForeignAgentBinding`` the dynamic one built on this module).

Implemented behaviour (classic RIPv1 semantics, period-scaled for
simulation):

- periodic full-table broadcasts on every RIP-enabled interface;
- distance-vector updates with hop-count metric, infinity = 16;
- **split horizon with poisoned reverse**;
- route timeout (3 periods) poisons an entry; garbage collection
  (2 more periods) removes it;
- **triggered updates** on any metric change, so failures and
  originations propagate in O(diameter) link delays, not periods;
- arbitrary prefix lengths, so host routes (/32) propagate like any
  other (RIPv1 proper had no masks; this is the one modernization).

Learned routes are installed into the node's routing table tagged
``"rip"``; the service never touches connected, static, or other
protocols' routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ip.address import IPAddress, IPNetwork
from repro.ip.node import IPNode
from repro.ip.packet import IPPacket
from repro.ip.protocols import UDP as PROTO_UDP
from repro.transport.segments import UDPDatagram

#: The RIP UDP port (RFC 1058).
RIP_PORT = 520
#: Hop-count infinity.
INFINITY = 16
#: Default advertisement period (seconds; RFC value is 30, scaled down
#: so simulations converge quickly).
DEFAULT_PERIOD = 5.0

RIP_TAG = "rip"


@dataclass(frozen=True)
class RIPEntry:
    """One (prefix, metric) pair in an update."""

    network: IPNetwork
    metric: int


@dataclass
class RIPUpdate:
    """A RIP response message (byte-accurate: 4 + 20 per entry)."""

    entries: List[RIPEntry] = field(default_factory=list)

    @property
    def byte_length(self) -> int:
        return 4 + 20 * len(self.entries)

    def to_bytes(self) -> bytes:
        out = bytearray([2, 2, 0, 0])  # command=response, version=2
        for entry in self.entries:
            chunk = bytearray(20)
            chunk[0:2] = (2).to_bytes(2, "big")  # AF_INET
            chunk[4:8] = entry.network.address.to_bytes()
            chunk[8:12] = entry.network.netmask.to_bytes()
            chunk[16:20] = entry.metric.to_bytes(4, "big")
            out += chunk
        return bytes(out)

    def __repr__(self) -> str:
        return f"<RIPUpdate {len(self.entries)} routes>"


@dataclass
class _LearnedRoute:
    network: IPNetwork
    next_hop: IPAddress
    iface_name: str
    metric: int
    updated_at: float
    poisoned_at: Optional[float] = None


class RIPService:
    """The RIP speaker on one router.

    Args:
        node: the router (must have its interfaces configured first).
        iface_names: interfaces to speak RIP on (default: all).
        period: advertisement period; timeout and GC scale from it.
    """

    def __init__(
        self,
        node: IPNode,
        iface_names: Optional[List[str]] = None,
        period: float = DEFAULT_PERIOD,
    ) -> None:
        self.node = node
        self.iface_names = list(iface_names or node.interfaces.keys())
        self.period = period
        self.timeout = 3 * period
        self.gc_time = 2 * period
        self.learned: Dict[IPNetwork, _LearnedRoute] = {}
        #: Prefixes this router originates beyond its connected networks
        #: (e.g. MHRP host routes), with their metrics.
        self.originated: Dict[IPNetwork, int] = {}
        self.updates_sent = 0
        self.updates_received = 0
        self.triggered_updates = 0
        # Routers are IPNode, not Host; tap protocol-17 delivery rather
        # than requiring a socket stack, keeping the router class untouched.
        self._install_udp_tap()
        self._timer = node.sim.timer(self._periodic, label=f"rip-{node.name}")
        self._sweeper = node.sim.timer(self._sweep, label=f"rip-sweep-{node.name}")
        self.running = False

    # ------------------------------------------------------------------
    # Plumbing: receive RIP datagrams without a full socket stack
    # ------------------------------------------------------------------
    def _install_udp_tap(self) -> None:
        node = self.node
        existing = node._protocol_handlers.get(PROTO_UDP)

        def tap(packet: IPPacket, iface) -> None:
            payload = packet.payload
            if (
                isinstance(payload, UDPDatagram)
                and payload.dst_port == RIP_PORT
                and isinstance(getattr(payload, "data", None), RIPUpdate)
            ):
                self._on_update(packet, payload.data, iface)
                return
            if existing is not None:
                existing(packet, iface)

        if existing is not None:
            node._protocol_handlers[PROTO_UDP] = tap
        else:
            node.register_protocol(PROTO_UDP, tap)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._periodic()
        self._sweeper.start(self.period)

    def stop(self) -> None:
        self.running = False
        self._timer.cancel()
        self._sweeper.cancel()

    # ------------------------------------------------------------------
    # Origination (used by the MHRP host-route variant)
    # ------------------------------------------------------------------
    def originate(self, network: IPNetwork, metric: int = 1) -> None:
        """Start advertising ``network`` from this router."""
        self.originated[network] = metric
        self._trigger()

    def originate_host(self, host: IPAddress, metric: int = 1) -> None:
        self.originate(IPNetwork(IPAddress(host).value, 32), metric)

    def withdraw(self, network: IPNetwork) -> None:
        """Stop advertising ``network`` (poisons it once)."""
        if self.originated.pop(network, None) is not None:
            self._poison_now(network)

    def withdraw_host(self, host: IPAddress) -> None:
        self.withdraw(IPNetwork(IPAddress(host).value, 32))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _periodic(self) -> None:
        if not self.running or not self.node.up:
            return
        self._broadcast_all()
        self._timer.start(self.period)

    def _trigger(self) -> None:
        """Triggered update: advertise immediately on a change."""
        if self.running and self.node.up:
            self.triggered_updates += 1
            self._broadcast_all()

    def _broadcast_all(self) -> None:
        for iface_name in self.iface_names:
            entries = self._entries_for(iface_name)
            if not entries:
                continue
            self.updates_sent += 1
            update = RIPUpdate(entries=entries)
            datagram = UDPDatagram(src_port=RIP_PORT, dst_port=RIP_PORT, data=update)  # type: ignore[arg-type]
            self.node.send_broadcast(iface_name, PROTO_UDP, datagram)

    def _entries_for(self, iface_name: str) -> List[RIPEntry]:
        """Build the update for one interface (split horizon + poison)."""
        entries: List[RIPEntry] = []
        # Connected networks.
        for name, iface in self.node.interfaces.items():
            entries.append(RIPEntry(network=iface.network, metric=1))
        # Originated prefixes (host routes etc.).
        for network, metric in self.originated.items():
            entries.append(RIPEntry(network=network, metric=metric))
        # Learned routes: poisoned reverse through their own interface.
        for route in self.learned.values():
            if route.iface_name == iface_name:
                entries.append(RIPEntry(network=route.network, metric=INFINITY))
            else:
                entries.append(RIPEntry(network=route.network, metric=route.metric))
        return entries

    def _poison_now(self, network: IPNetwork) -> None:
        """One-shot poison advertisement for a withdrawn origination."""
        for iface_name in self.iface_names:
            update = RIPUpdate(entries=[RIPEntry(network=network, metric=INFINITY)])
            datagram = UDPDatagram(src_port=RIP_PORT, dst_port=RIP_PORT, data=update)  # type: ignore[arg-type]
            self.node.send_broadcast(iface_name, PROTO_UDP, datagram)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_update(self, packet: IPPacket, update: RIPUpdate, iface) -> None:
        if not self.running or iface is None:
            return
        self.updates_received += 1
        neighbor = packet.src
        changed = False
        for entry in update.entries:
            changed |= self._consider(entry, neighbor, iface.name)
        if changed:
            self._trigger()

    def _consider(self, entry: RIPEntry, neighbor: IPAddress, iface_name: str) -> bool:
        # Never learn our own connected networks or originations.
        for iface in self.node.interfaces.values():
            if entry.network == iface.network:
                return False
        if entry.network in self.originated:
            return False
        metric = min(entry.metric + 1, INFINITY)
        now = self.node.sim.now
        current = self.learned.get(entry.network)
        if current is None:
            if metric >= INFINITY:
                return False
            self._install(entry.network, neighbor, iface_name, metric)
            return True
        from_current_hop = (
            current.next_hop == neighbor and current.iface_name == iface_name
        )
        if from_current_hop:
            current.updated_at = now
            if metric != current.metric:
                if metric >= INFINITY:
                    self._poison(current)
                else:
                    current.metric = metric
                    current.poisoned_at = None
                    self._sync_table(current)
                return True
            return False
        if metric < current.metric:
            self._install(entry.network, neighbor, iface_name, metric)
            return True
        return False

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------
    def _install(
        self, network: IPNetwork, next_hop: IPAddress, iface_name: str, metric: int
    ) -> None:
        route = _LearnedRoute(
            network=network, next_hop=next_hop, iface_name=iface_name,
            metric=metric, updated_at=self.node.sim.now,
        )
        self.learned[network] = route
        self._sync_table(route)
        self.node.sim.trace(
            "baseline", self.node.name, protocol="rip", event="install",
            network=str(network), via=str(next_hop), metric=metric,
        )

    def _sync_table(self, route: _LearnedRoute) -> None:
        table = self.node.routing_table
        existing = table.lookup(route.network.address)
        if (
            existing is not None
            and existing.network == route.network
            and existing.tag != RIP_TAG
        ):
            return  # never displace connected/static/other-protocol routes
        table.remove(route.network)
        table.add_next_hop(
            route.network, route.next_hop, route.iface_name,
            metric=route.metric, tag=RIP_TAG,
        )

    def _poison(self, route: _LearnedRoute) -> None:
        route.metric = INFINITY
        route.poisoned_at = self.node.sim.now
        table = self.node.routing_table
        existing = table.lookup(route.network.address)
        if existing is not None and existing.tag == RIP_TAG and existing.network == route.network:
            table.remove(route.network)
        self.node.sim.trace(
            "baseline", self.node.name, protocol="rip", event="poison",
            network=str(route.network),
        )

    def _sweep(self) -> None:
        if not self.running or not self.node.up:
            return
        now = self.node.sim.now
        changed = False
        for network in list(self.learned):
            route = self.learned[network]
            if route.poisoned_at is not None:
                if now - route.poisoned_at >= self.gc_time:
                    del self.learned[network]
            elif now - route.updated_at >= self.timeout:
                self._poison(route)
                changed = True
        if changed:
            self._trigger()
        self._sweeper.start(self.period)


def enable_rip(routers: List[IPNode], period: float = DEFAULT_PERIOD) -> List[RIPService]:
    """Convenience: start RIP on every router and return the services."""
    services = [RIPService(router, period=period) for router in routers]
    for service in services:
        service.start()
    return services
