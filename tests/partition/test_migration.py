"""Host migration across partition boundaries.

The wire format for a migrating host is the PR 5 ``state_dict``
contract: the home partition captures the mobile host's role state,
deactivates the local object, and ships ``{host, to, role}``; the
destination materializes a visitor, loads the state, and attaches it —
which replays the paper's Section 3 move sequence over real
cross-partition gateway traffic.
"""

import pickle

import pytest

from repro.partition import partition_handoff_spec, run_partitioned
from repro.partition.runtime import PartitionRuntime
from repro.workloads.hierarchy import HierarchyModel


class TestStateDictWireFormat:
    def test_state_dict_round_trips_across_the_boundary(self):
        spec = partition_handoff_spec()
        model = HierarchyModel.from_spec(spec)
        src = PartitionRuntime(spec, model=model, index=0)
        # Run the source partition alone past host 0's t=3 migration
        # into campus 1.
        src.sim.run(until=3.5)
        migrates = [e for e in src.drain_outbox() if e[2] == "migrate"]
        assert len(migrates) == 1
        dst_index, arrival, _, blob, _ = migrates[0]
        assert dst_index == 1
        # Lookahead safety: the record cannot arrive before the
        # inter-campus delay has elapsed.
        assert arrival >= 3.0 + model.delay(0, 1)

        record = pickle.loads(blob)
        assert record["host"] == 0 and record["to"] == 2
        role_state = record["role"]

        # The departed host is deactivated and chain-forwarding knows
        # where it went.
        assert 0 not in src._here
        assert src._departed[0] == 1
        assert src.counters["migrations_out"] == 1

        # Loading the pickled state into a freshly materialized visitor
        # reproduces it byte-identically — the round-trip contract.
        dst = PartitionRuntime(spec, model=model, index=1)
        visitor = dst._make_visitor(0)
        visitor.load_state(pickle.loads(pickle.dumps(role_state)))
        assert visitor.state_dict() == role_state

    def test_arrival_materializes_and_attaches(self):
        spec = partition_handoff_spec()
        model = HierarchyModel.from_spec(spec)
        src = PartitionRuntime(spec, model=model, index=0)
        src.sim.run(until=3.5)
        (_, arrival, _, blob, _) = next(
            e for e in src.drain_outbox() if e[2] == "migrate"
        )
        dst = PartitionRuntime(spec, model=model, index=1)
        dst.inject([(arrival, "migrate", blob)])
        dst.sim.run(until=arrival + 1.0)
        assert 0 in dst._here
        assert dst.counters["migrations_in"] == 1
        visitor = dst._materialized[0]
        # Attached to campus 1's cell 0 (global cell 2) and registering
        # away from home through the gateway.
        assert visitor.iface.attached


class TestMigrationUnderWorkers:
    def test_round_trip_tour_completes_in_parallel(self):
        result = run_partitioned(partition_handoff_spec(), workers=4)
        by_partition = {r["partition"]: r for r in result.results}
        # Host 0 toured campus 1 and returned; host 5 visited campus 0
        # and returned to campus 2: two departures and two arrivals on
        # partition 0, one of each pairing on partitions 1 and 2.
        c0 = by_partition[0]["counters"]
        assert c0["migrations_out"] == 2 and c0["migrations_in"] == 2
        # Final residency: every host is back home.
        assert by_partition[0]["mobile_state"]["0"]["here"] is True
        assert by_partition[1]["mobile_state"]["0"]["here"] is False
        assert by_partition[2]["mobile_state"]["5"]["here"] is True
        assert by_partition[0]["mobile_state"]["5"]["here"] is False

    def test_forwarded_move_reaches_the_visited_partition(self):
        # The t=6 move targets host 0 while it is away in campus 1: the
        # home partition chain-forwards it instead of applying it.
        result = run_partitioned(partition_handoff_spec(), workers=0)
        by_partition = {r["partition"]: r for r in result.results}
        assert by_partition[0]["counters"]["moves_forwarded"] >= 1

    def test_cross_partition_flow_is_delivered_to_the_visitor(self):
        # Campus-1 correspondent streams 8 datagrams at host 0's home
        # address while host 0 migrates *into* campus 1 — delivery
        # crosses the boundary (or loops locally via the home tunnel)
        # every which way and must still complete.
        result = run_partitioned(partition_handoff_spec(), workers=0)
        by_partition = {r["partition"]: r for r in result.results}
        # The cross flow (8 datagrams) lands on host 0 while it visits
        # partition 1; the local flow (5) on host 6 in partition 3.
        assert sum(r["flow_received"] for r in result.results) == 13
        assert by_partition[1]["flow_received"] == 8
        assert by_partition[3]["flow_received"] == 5
