"""The runtime invariant auditor.

:class:`InvariantAuditor` attaches to a simulator exactly like the
telemetry hub (``sim.auditor``): hot paths guard every notification with
a single is-``None`` test, so detached simulations pay one attribute
load and the Figure-1 golden trace stays byte-identical.  It is fed by

- the dataplane stage hooks (sent / forwarded / delivered / dropped),
- the link-layer loss hooks (lost frames, frames absorbed by a crashed
  node, frames dropped by a down or detached interface), and
- :meth:`~repro.netsim.trace.Tracer.subscribe` for the MHRP tunnel and
  loop events (re-tunnel counting and flush/dissolve gating).

The auditor never consumes simulator randomness, never schedules
events, and never emits traces — attaching it cannot perturb a run.

Every breach is recorded as a :class:`~repro.invariants.rules.Violation`
carrying the packet uid, the node, and the rule id.  Call
:meth:`finalize` after the simulation has drained to evaluate the
packet-conservation rule over everything still in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.header import DEFAULT_MAX_PREVIOUS_SOURCES, MHRPHeader
from repro.errors import PacketError
from repro.invariants.rules import (
    KNOWN_DROP_REASONS,
    MAX_RETUNNELS_PER_PACKET,
    POST_DISSOLVE_RETUNNEL_BUDGET,
    Violation,
)
from repro.ip.packet import IPPacket
from repro.ip.protocols import MHRP as PROTO_MHRP

#: Trace events that count as one tunnel hop for the loop budget.
_RETUNNEL_EVENTS = frozenset({"fa-retunnel", "home-retunnel"})

#: Bound on stored violations; a single broken invariant in a hot loop
#: would otherwise flood memory.  The total count is kept regardless.
MAX_RECORDED_VIOLATIONS = 1000


@dataclass
class _Flight:
    """Per-uid tracking state for one logical packet."""

    uid: int
    first_seen: float
    first_node: str
    #: The IP source at origination (``None`` when the packet was first
    #: observed mid-path, e.g. injected by a test harness).
    original_src: Optional[object] = None
    last_seen: float = 0.0
    last_node: str = ""
    #: Terminal events observed (delivery, drop, lost frame, absorbed).
    terminals: int = 0
    #: Previous-source count at the most recent observation.
    prev_count: int = 0
    #: Once the list shrank (overflow flush, loop dissolution) the
    #: no-duplicates / first-is-sender checks no longer apply.
    list_disrupted: bool = False
    retunnels: int = 0
    dissolved: bool = False
    retunnels_after_dissolve: int = 0
    #: (count, last-entry) pairs already wire-probed, to bound cost.
    probed: Set[Tuple[int, int]] = field(default_factory=set)


class InvariantAuditor:
    """Continuously checks the rule catalogue against a running sim.

    Args:
        max_previous_sources: the list bound the topology under audit was
            built with (the ``list-bound`` rule checks against it).
        check_wire: run the wire-format round-trip/corruption probes on
            every MHRP hop (cheap; disable only for huge soaks).
    """

    def __init__(
        self,
        max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
        check_wire: bool = True,
    ) -> None:
        self.max_previous_sources = max_previous_sources
        self.check_wire = check_wire
        self.sim = None
        self.violations: List[Violation] = []
        self.total_violations = 0
        self.flights: Dict[int, _Flight] = {}
        #: uids whose re-tunneling would breach ``cache-convergence``.
        self._no_retunnel_uids: Set[int] = set()
        # Observation counters (for reports; not rule inputs).
        self.packets_tracked = 0
        self.hops_checked = 0
        self.drops: Dict[str, int] = {}
        self.frames_lost: Dict[str, int] = {}
        self.frames_absorbed = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    #: Role attribute this instrument occupies on the simulator.
    instrument_role = "auditor"

    def attach(self, sim) -> "InvariantAuditor":
        """Wire this auditor into ``sim`` and return it.

        Requires the ``mhrp.tunnel`` / ``mhrp.loop`` trace categories to
        be recordable (the default) for re-tunnel accounting; the
        dataplane and link hooks work regardless of tracer state.

        Thin shim over :meth:`Simulator.attach
        <repro.netsim.simulator.Simulator.attach>`.
        """
        sim.attach(self)
        return self

    def bind(self, sim) -> None:
        """Instrument-registry hook: wire the trace listener into ``sim``."""
        self.sim = sim
        sim.tracer.subscribe(self._on_trace)

    def unbind(self, sim) -> None:
        """Instrument-registry hook: withdraw the trace listener."""
        sim.tracer.unsubscribe(self._on_trace)
        self.sim = None

    def detach(self) -> None:
        if self.sim is not None and self in self.sim.instruments:
            self.sim.detach(self)
        else:
            self.sim = None

    # ------------------------------------------------------------------
    # Violation recording
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def _violate(
        self,
        rule: str,
        time: float,
        node: str,
        uid: Optional[int],
        message: str,
        **detail,
    ) -> None:
        self.total_violations += 1
        if len(self.violations) < MAX_RECORDED_VIOLATIONS:
            self.violations.append(
                Violation(rule=rule, time=time, node=node, uid=uid,
                          message=message, detail=dict(detail))
            )

    # ------------------------------------------------------------------
    # Flight bookkeeping
    # ------------------------------------------------------------------
    def _flight(self, now: float, node: str, packet: IPPacket) -> _Flight:
        flight = self.flights.get(packet.uid)
        if flight is None:
            flight = _Flight(uid=packet.uid, first_seen=now, first_node=node)
            self.flights[packet.uid] = flight
        flight.last_seen = now
        flight.last_node = node
        return flight

    # ------------------------------------------------------------------
    # Dataplane hooks (mirror the telemetry notification sites)
    # ------------------------------------------------------------------
    def packet_sent(self, now: float, node: str, packet: IPPacket) -> None:
        """Locally originated packet, *before* the outbound stage hooks
        run — so the recorded source is the pre-encapsulation original."""
        flight = self._flight(now, node, packet)
        if flight.original_src is None:
            flight.original_src = packet.src
            self.packets_tracked += 1
        self._check_packet(now, node, packet, flight, forwarded=False)

    def packet_forwarded(self, now: float, node: str, packet: IPPacket) -> None:
        flight = self._flight(now, node, packet)
        self._check_packet(now, node, packet, flight, forwarded=True)

    def packet_delivered(self, now: float, node: str, packet: IPPacket) -> None:
        flight = self._flight(now, node, packet)
        flight.terminals += 1
        self._check_packet(now, node, packet, flight, forwarded=False)

    def packet_dropped(
        self, now: float, node: str, packet: IPPacket, reason: str
    ) -> None:
        flight = self._flight(now, node, packet)
        flight.terminals += 1
        self.drops[reason] = self.drops.get(reason, 0) + 1
        if reason not in KNOWN_DROP_REASONS:
            self._violate(
                "drop-reason", now, node, packet.uid,
                f"drop with unknown reason {reason!r}",
            )

    # ------------------------------------------------------------------
    # Link-layer hooks (frame loss terminals)
    # ------------------------------------------------------------------
    def frame_lost(self, now: float, node: str, packet, reason: str) -> None:
        """An IP frame vanished on a link: medium loss, no receiver on
        the segment, target detached mid-flight, or a down interface."""
        if not isinstance(packet, IPPacket):
            return
        flight = self._flight(now, node, packet)
        flight.terminals += 1
        self.frames_lost[reason] = self.frames_lost.get(reason, 0) + 1

    def frame_absorbed(self, now: float, node: str, packet) -> None:
        """An IP frame arrived at a crashed node and was swallowed."""
        if not isinstance(packet, IPPacket):
            return
        flight = self._flight(now, node, packet)
        flight.terminals += 1
        self.frames_absorbed += 1

    # ------------------------------------------------------------------
    # Per-hop checks
    # ------------------------------------------------------------------
    def _check_packet(
        self,
        now: float,
        node: str,
        packet: IPPacket,
        flight: _Flight,
        forwarded: bool,
    ) -> None:
        self.hops_checked += 1
        if forwarded and not 0 < packet.ttl <= 255:
            self._violate(
                "ttl-valid", now, node, packet.uid,
                f"forwarded with ttl={packet.ttl}",
            )
        if packet.protocol != PROTO_MHRP:
            return
        payload = packet.payload
        header = getattr(payload, "header", None)
        if not isinstance(header, MHRPHeader):
            return
        count = header.count
        if count > self.max_previous_sources:
            self._violate(
                "list-bound", now, node, packet.uid,
                f"previous-source list has {count} entries "
                f"(bound {self.max_previous_sources})",
                sources=[str(a) for a in header.previous_sources],
            )
        if count < flight.prev_count:
            # Overflow flush or loop dissolution shrank the list; the
            # structural checks below no longer apply to this packet.
            flight.list_disrupted = True
        flight.prev_count = count
        if not flight.list_disrupted:
            if len(set(header.previous_sources)) != count:
                self._violate(
                    "list-no-duplicates", now, node, packet.uid,
                    "duplicate previous sources before any flush",
                    sources=[str(a) for a in header.previous_sources],
                )
            if (
                count
                and flight.original_src is not None
                and header.previous_sources[0] != flight.original_src
            ):
                self._violate(
                    "list-first-is-sender", now, node, packet.uid,
                    f"first previous source {header.previous_sources[0]} "
                    f"!= original sender {flight.original_src}",
                )
        if self.check_wire:
            self._probe_wire(now, node, packet.uid, header, flight)

    def _probe_wire(
        self, now: float, node: str, uid: int, header: MHRPHeader, flight: _Flight
    ) -> None:
        """Round-trip the header through its wire form and verify the
        decoder rejects trailing bytes, truncation, and checksum damage.

        Probed once per (count, newest-entry) shape per packet, so a
        packet crossing N hops costs O(list changes), not O(N).
        """
        last = header.previous_sources[-1].value if header.previous_sources else -1
        key = (header.count, last)
        if key in flight.probed:
            return
        flight.probed.add(key)
        try:
            wire = header.to_bytes()
        except PacketError as exc:
            self._violate("wire-roundtrip", now, node, uid, f"encode failed: {exc}")
            return
        try:
            decoded = MHRPHeader.from_bytes(wire)
        except PacketError as exc:
            self._violate("wire-roundtrip", now, node, uid, f"decode failed: {exc}")
            return
        if (
            decoded.orig_protocol != header.orig_protocol
            or decoded.mobile_host != header.mobile_host
            or decoded.previous_sources != header.previous_sources
        ):
            self._violate(
                "wire-roundtrip", now, node, uid,
                f"round-trip mismatch: {decoded!r} != {header!r}",
            )
        for tail in (b"\x00\x00\x00\x00", b"\xff"):
            try:
                MHRPHeader.from_bytes(wire + tail)
            except PacketError:
                pass
            else:
                self._violate(
                    "wire-roundtrip", now, node, uid,
                    f"decoder accepted {len(tail)} trailing byte(s)",
                )
        try:
            MHRPHeader.from_bytes(wire[:-1])
        except PacketError:
            pass
        else:
            self._violate(
                "wire-roundtrip", now, node, uid, "decoder accepted truncation"
            )
        corrupted = bytearray(wire)
        corrupted[2] ^= 0x40  # flip one checksum bit
        try:
            MHRPHeader.from_bytes(bytes(corrupted))
        except PacketError:
            pass
        else:
            self._violate(
                "wire-checksum", now, node, uid,
                "decoder accepted a checksum-corrupted header",
            )

    # ------------------------------------------------------------------
    # Trace-fed checks (re-tunnel accounting)
    # ------------------------------------------------------------------
    def _on_trace(self, entry) -> None:
        if entry.category == "mhrp.tunnel":
            if entry.detail.get("event") not in _RETUNNEL_EVENTS:
                return
            uid = entry.detail.get("uid")
            if uid is None:
                return
            flight = self.flights.get(uid)
            if flight is None:
                flight = _Flight(uid=uid, first_seen=entry.time, first_node=entry.node)
                self.flights[uid] = flight
            if flight.prev_count >= self.max_previous_sources:
                # This re-tunnel triggered the Section 4.4 overflow
                # flush (needed to gate the structural checks even at
                # bound 1, where the count never visibly decreases).
                flight.list_disrupted = True
            flight.retunnels += 1
            if flight.dissolved:
                flight.retunnels_after_dissolve += 1
                if flight.retunnels_after_dissolve == POST_DISSOLVE_RETUNNEL_BUDGET + 1:
                    self._violate(
                        "loop-budget", entry.time, entry.node, uid,
                        f"{flight.retunnels_after_dissolve} re-tunnels after "
                        f"dissolve (budget {POST_DISSOLVE_RETUNNEL_BUDGET})",
                    )
            if flight.retunnels == MAX_RETUNNELS_PER_PACKET + 1:
                self._violate(
                    "loop-budget", entry.time, entry.node, uid,
                    f"more than {MAX_RETUNNELS_PER_PACKET} re-tunnels",
                )
            if uid in self._no_retunnel_uids:
                self._violate(
                    "cache-convergence", entry.time, entry.node, uid,
                    "probe re-tunneled although caches were refreshed",
                )
        elif entry.category == "mhrp.loop":
            if entry.detail.get("event") != "dissolve":
                return
            uid = entry.detail.get("uid")
            if uid is None:
                return
            flight = self.flights.get(uid)
            if flight is not None:
                flight.dissolved = True
                flight.list_disrupted = True

    # ------------------------------------------------------------------
    # Convergence probes
    # ------------------------------------------------------------------
    def expect_no_retunnels(self, uids) -> None:
        """Declare that re-tunneling any of ``uids`` breaches
        ``cache-convergence`` (they repeat a warm probe that already
        refreshed every stale cache on the path)."""
        self._no_retunnel_uids.update(uids)

    # ------------------------------------------------------------------
    # End-of-run evaluation
    # ------------------------------------------------------------------
    def finalize(self, ignore_after: Optional[float] = None) -> List[Violation]:
        """Evaluate packet conservation over everything observed.

        Call only after the simulation drained (or ran quiet long enough
        that anything still unterminated is genuinely leaked).  Flights
        first observed after ``ignore_after`` are skipped — they may be
        legitimately in flight at a timed cutoff.
        """
        for flight in self.flights.values():
            if flight.terminals:
                continue
            if ignore_after is not None and flight.first_seen > ignore_after:
                continue
            self._violate(
                "conservation", flight.last_seen, flight.last_node, flight.uid,
                f"no terminal: first seen at {flight.first_node} "
                f"t={flight.first_seen:.6f}, last seen at {flight.last_node}",
            )
        return self.violations

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Flat counters for reports and sweep metrics."""
        out = {
            "violations": self.total_violations,
            "packets_tracked": self.packets_tracked,
            "flights": len(self.flights),
            "hops_checked": self.hops_checked,
            "frames_absorbed": self.frames_absorbed,
        }
        for reason in sorted(self.drops):
            out[f"drops[{reason}]"] = self.drops[reason]
        for reason in sorted(self.frames_lost):
            out[f"lost[{reason}]"] = self.frames_lost[reason]
        return out

    def render(self) -> str:
        lines = [
            f"invariant audit: {self.total_violations} violation(s), "
            f"{self.packets_tracked} packets tracked, "
            f"{self.hops_checked} hops checked"
        ]
        for violation in self.violations[:50]:
            lines.append(f"  {violation}")
        if self.total_violations > len(self.violations):
            lines.append(f"  ... and {self.total_violations - len(self.violations)} more")
        return "\n".join(lines)
