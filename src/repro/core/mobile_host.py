"""The mobile host (paper Sections 1–3, 6) — simulator adapter.

A mobile host is an ordinary :class:`~repro.ip.host.Host` plus a thin
network-level module — the paper requires "no changes to mobile hosts
above the network level", and indeed the transport stacks and
applications on this class are exactly the ones stationary hosts use.

The protocol behaviour (the Section 3 notification sequence, the agent
silence watchdog, self-delivery of tunneled packets) lives in
:class:`repro.wire.roles.MobileHostRole`, shared with the sans-io
engines; this class supplies the physical side — interface attachment,
ARP, the link-layer hardware address — via
:class:`~repro.wire.roles.SimRolePort`.

The host always uses its permanent *home* address.  Movement is modelled
as re-attaching its interface to a different medium; the host then hears
an agent advertisement and runs the Section 3 notification sequence:

1. notify the **new foreign agent** (connect),
2. notify the **home agent** (register the new foreign agent — or the
   zero address when the host is back home),
3. notify the **old foreign agent** (disconnect, carrying the new
   foreign agent's address so it may keep a forwarding pointer).

Returning home additionally broadcasts a gratuitous ARP to reclaim the
home address from the home agent (Section 2).

Two optional behaviours from the paper are implemented:

- **own foreign agent** (Section 2): when a foreign network has no
  foreign agent, the host can use a temporary address there purely as a
  tunnel endpoint while applications keep using the home address;
- **sender-side caching**: the host runs a cache agent for its own
  traffic to other mobile hosts.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cache_agent import CacheAgent
from repro.core.discovery import AgentDiscovery
from repro.core.home_agent import DISCONNECTED_ADDRESS  # noqa: F401  (re-exported)
from repro.core.registration import next_seq
from repro.ip.address import IPAddress, IPNetwork
from repro.ip.host import Host
from repro.ip.packet import IPPacket
from repro.ip.protocols import MHRP as PROTO_MHRP
from repro.link.interface import NetworkInterface
from repro.link.medium import Medium
from repro.netsim.simulator import Simulator
from repro.wire.roles import MobileHostRole, ReliableRegistrar, SimRolePort

# Connection states (canonical definitions live with the shared logic).
from repro.wire.logic import (  # noqa: F401  (re-exported)
    AT_HOME,
    AWAY,
    AWAY_SELF_AGENT,
    DISCONNECTED,
    mh_reported_location,
    stale_chain,
)


class MobileHost(MobileHostRole, Host):
    """A host that may move between networks at any time.

    Args:
        sim: owning simulator.
        name: node name.
        home_address: the permanent address (used everywhere, always).
        home_network: the home IP network.
        home_agent: the home agent's address on the home network.
        home_gateway: the default router to use while at home; defaults
            to the home agent's address (the common co-located case) —
            pass the real router when the home agent is a separate
            support host (Section 2).
        use_sender_cache: run a cache agent for this host's own sends.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        home_address: IPAddress | str,
        home_network: IPNetwork | str,
        home_agent: IPAddress | str,
        home_gateway: IPAddress | str | None = None,
        use_sender_cache: bool = True,
    ) -> None:
        super().__init__(sim, name)
        self.home_address = IPAddress(home_address)
        self.home_network = (
            home_network if isinstance(home_network, IPNetwork) else IPNetwork(home_network)
        )
        self.home_agent = IPAddress(home_agent)
        self.home_gateway = IPAddress(home_gateway if home_gateway is not None else home_agent)
        self.iface: NetworkInterface = self.add_interface(
            self.WIFI, self.home_address, self.home_network
        )
        self._init_mobile_state(SimRolePort.of(self))
        self._next_seq = next_seq
        self.registrar = ReliableRegistrar(self)
        self.discovery = AgentDiscovery(self, self._on_agent_heard)
        self.cache_agent: Optional[CacheAgent] = (
            CacheAgent(self) if use_sender_cache else None
        )
        from repro.core.icmp_handling import TunnelErrorHandler

        self.error_handler = TunnelErrorHandler.attach(self, cache_agent=self.cache_agent)
        self.register_protocol(PROTO_MHRP, self._on_mhrp_packet)

    # ------------------------------------------------------------------
    # Substrate hooks for the role
    # ------------------------------------------------------------------
    def _wifi_hw_value(self) -> int:
        return self.iface.hw_address.value

    def _redeliver_local(self, packet: IPPacket, iface) -> None:
        self.packet_received(packet, iface)

    # ------------------------------------------------------------------
    # Movement API (driven by mobility models or directly by tests)
    # ------------------------------------------------------------------
    def attach(self, medium: Medium, solicit: bool = True) -> None:
        """Physically attach to a network (implicitly leaving the old one).

        Registration happens when an agent advertisement is heard; pass
        ``solicit=True`` (the default) to ask for one immediately rather
        than waiting out the advertisement period (Section 3 allows both).
        """
        self._record_move()
        self.iface.attach_to(medium)
        if solicit:
            self._solicit()

    def attach_home(self, medium: Medium, solicit: bool = True) -> None:
        """Attach directly to the home network."""
        self.attach(medium, solicit=solicit)

    def disconnect(self) -> None:
        """Planned disconnection (Section 3): notify the home agent first,
        then the old foreign agent, then detach."""
        self._disconnect_protocol()
        self.iface.detach()

    def connect_as_own_foreign_agent(
        self,
        medium: Medium,
        temp_address: IPAddress | str,
        gateway: IPAddress | str,
    ) -> None:
        """Attach to a foreign network with no foreign agent (Section 2).

        ``temp_address`` is used *only* as the tunnel endpoint registered
        with the home agent; applications continue to see the home
        address.  ``gateway`` is the foreign network's ordinary router.
        """
        old_fa = self.current_foreign_agent
        self._record_move()
        self.iface.attach_to(medium)
        temp = IPAddress(temp_address)
        self.iface.alias_addresses = {temp}
        self.temp_address = temp
        self.state = AWAY_SELF_AGENT
        self.current_foreign_agent = temp
        self._set_away_routing(IPAddress(gateway))
        self._register_with_home_agent(temp)
        if old_fa is not None and old_fa != temp:
            self._notify_old_foreign_agent(old_fa, new_agent=temp)

    def __repr__(self) -> str:
        where = {
            AT_HOME: "home",
            AWAY: f"away via {self.current_foreign_agent}",
            AWAY_SELF_AGENT: f"away self-agent {self.temp_address}",
            DISCONNECTED: "disconnected",
        }[self.state]
        return f"<MobileHost {self.name} {self.home_address} ({where})>"


class StationaryCorrespondent(Host):
    """A stationary host that *does* implement MHRP sender-side caching.

    The paper expects most Internet hosts to eventually run a cache agent
    for their own traffic (Section 2); this class is that deployment.
    Plain :class:`~repro.ip.host.Host` remains the never-modified host.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.cache_agent = CacheAgent(self)
        from repro.core.icmp_handling import TunnelErrorHandler

        self.error_handler = TunnelErrorHandler.attach(self, cache_agent=self.cache_agent)
