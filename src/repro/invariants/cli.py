"""``python -m repro audit`` and ``python -m repro fuzz``.

``audit`` runs a named scenario (``figure1``, ``loop``) — or replays a
fuzz repro artifact by path — with an :class:`InvariantAuditor`
attached, and exits 1 on any violation.

``fuzz`` fans seeded random scenarios out through the ``repro.harness``
runner, re-runs every violating seed in-process, greedily shrinks it to
a minimal schedule, and writes the repro JSON artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.clibase import build_parser
from repro.invariants.auditor import InvariantAuditor

DEFAULT_ARTIFACT_DIR = Path("benchmarks/results/fuzz")

AUDIT_SCENARIOS = ("figure1", "loop")


def _audit_figure1(seed: int) -> InvariantAuditor:
    from repro.workloads.topology import build_figure1, drive_figure1

    topo = build_figure1(seed=seed)
    auditor = topo.sim.attach(InvariantAuditor())
    drive_figure1(topo)
    # Periodic agent advertisements keep the queue alive forever, so
    # drain on the clock: every packet born during the walkthrough gets
    # ample time to terminate, younger flights are excluded.
    cutoff = topo.sim.now
    topo.sim.run(until=cutoff + 10.0)
    auditor.finalize(ignore_after=cutoff)
    return auditor


def _audit_loop(seed: int, loop_size: int = 6, max_list: int = 4) -> InvariantAuditor:
    from repro.workloads.loops import build_loop, inject_and_measure

    topo = build_loop(loop_size, max_list, seed=seed)
    auditor = topo.sim.attach(InvariantAuditor(max_previous_sources=max_list))
    inject_and_measure(topo, loop_size, max_list)
    topo.sim.run_until_idle()
    auditor.finalize()
    return auditor


def audit_main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser(
        "audit",
        "run a scenario under the protocol-invariant auditor",
        seed_help="simulation seed for named scenarios",
    )
    parser.add_argument(
        "scenario",
        help="a named scenario (figure1, loop) or the path of a fuzz repro JSON",
    )
    args = parser.parse_args(argv)

    if args.scenario == "figure1":
        auditor = _audit_figure1(args.seed if args.seed is not None else 42)
    elif args.scenario == "loop":
        auditor = _audit_loop(args.seed if args.seed is not None else 3)
    else:
        from repro.invariants.fuzz import load_scenario, run_scenario

        path = Path(args.scenario)
        if not path.exists():
            print(
                f"unknown scenario {args.scenario!r}: not one of "
                f"{AUDIT_SCENARIOS} and no such file",
                file=sys.stderr,
            )
            return 2
        scenario = load_scenario(path)
        if args.seed is not None:
            scenario["seed"] = args.seed
        auditor = run_scenario(scenario)

    if args.as_json:
        print(
            json.dumps(
                {
                    "ok": auditor.ok,
                    "summary": auditor.summary(),
                    "violations": [v.to_record() for v in auditor.violations],
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif not args.quiet:
        print(auditor.render())
    return 0 if auditor.ok else 1


def fuzz_main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser(
        "fuzz",
        "fuzz random mobility/fault/traffic scenarios under the "
        "invariant auditor, shrinking any violation to a minimal repro",
        seed_help="first fuzz seed (default 0)",
    )
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to run (default 25)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep (default 1)")
    parser.add_argument("--quick", action="store_true",
                        help="shorter scenarios (the CI smoke profile)")
    parser.add_argument("--shrink", action="store_true",
                        help="greedily shrink violating scenarios to minimal repros")
    parser.add_argument("--artifact-dir", type=Path, default=DEFAULT_ARTIFACT_DIR,
                        help=f"where repro JSONs go (default {DEFAULT_ARTIFACT_DIR})")
    args = parser.parse_args(argv)

    from repro.harness.runner import run_sweep
    from repro.harness.spec import get_experiment
    from repro.invariants.fuzz import (
        make_scenario,
        run_scenario,
        shrink_scenario,
        write_artifact,
    )

    from dataclasses import replace

    profile = "quick" if args.quick else "default"
    start_seed = args.seed if args.seed is not None else 0
    spec = get_experiment("invariant-fuzz").with_seeds(
        range(start_seed, start_seed + args.seeds)
    )
    # Pin the grid to the chosen profile; seeds came from --seeds above.
    spec = replace(spec, grid={"profile": [profile]}, quick_grid=None, quick_seeds=None)

    report = run_sweep(spec, jobs=args.jobs, store=None)
    bad_seeds: List[int] = []
    errors = 0
    for result in report.results:
        if not result.ok:
            errors += 1
            print(f"seed {result.seed}: {result.status}: {result.error}",
                  file=sys.stderr)
        elif result.metrics.get("violations", 0):
            bad_seeds.append(result.seed)

    total = len(report.results)
    if args.as_json:
        print(
            json.dumps(
                {
                    "profile": profile,
                    "seeds": total,
                    "bad_seeds": bad_seeds,
                    "errors": errors,
                    "results": [r.to_record() for r in report.results],
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif not args.quiet:
        print(
            f"fuzz: {total} seeds ({profile} profile), "
            f"{len(bad_seeds)} with violations, {errors} errored"
        )

    for seed in bad_seeds:
        scenario = make_scenario(seed, profile)
        auditor = run_scenario(scenario)
        rules = {v.rule for v in auditor.violations}
        minimal = scenario
        if args.shrink:
            minimal = shrink_scenario(scenario, rules)
            auditor = run_scenario(minimal)
        path = write_artifact(args.artifact_dir, minimal, auditor.violations, scenario)
        if not args.as_json and not args.quiet:
            print(f"\nseed {seed}: {auditor.total_violations} violation(s) "
                  f"[{', '.join(sorted(rules))}]")
            print(auditor.render())
        if not args.as_json:
            print(f"repro written to {path} (replay: python -m repro audit {path})")

    return 1 if bad_seeds or errors else 0
