"""One front door for every execution backend.

The repo grew five ways to execute a :class:`~repro.scenario.spec.ScenarioSpec`:

==============  ========================================================
``sim``         the discrete-event :class:`~repro.netsim.simulator.Simulator`
                via :class:`~repro.scenario.session.Session` (the reference)
``batched``     the same simulator with the batched event kernel
                (same-tick sweeps + bulk scheduling) enabled
``engine``      the sans-io protocol engines on the deterministic
                in-process :class:`~repro.wire.driver.EngineDriver`
``live``        the same engines over real loopback UDP sockets against
                the wall clock (:mod:`repro.live`)
``partitioned`` the conservative-synchronization parallel engine, one
                partition per campus (:mod:`repro.partition`)
==============  ========================================================

:func:`run` executes any of them behind one signature and returns a
uniform :class:`RunResult` — health summary, counters, a trace handle
and the backend-native result object for anything deeper.  The
per-backend entry points (``run_engine_spec``, ``run_live_spec``) still
work but emit :class:`DeprecationWarning`; they will keep working for
one release.

``python -m repro run <scenario> --backend <name>`` is the CLI face of
the same facade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.scenario.spec import ScenarioSpec

#: Every backend :func:`run` accepts.
BACKENDS = ("sim", "batched", "engine", "live", "partitioned")


@dataclass
class RunResult:
    """What every backend hands back: one uniform result surface.

    ``trace`` is a backend-appropriate handle — the simulator's
    :class:`~repro.netsim.trace.Tracer` for ``sim``/``batched``, the
    ``(time, event)`` log for ``engine``/``live``, and the fingerprint
    dict for ``partitioned``.  ``detail`` is the backend-native object
    (session, driver, live run, partitioned result) for anything the
    uniform surface doesn't carry.
    """

    backend: str
    spec_name: str
    status: str = "ok"
    events: int = 0
    sim_time: float = 0.0
    wall_seconds: float = 0.0
    health: Optional[dict] = None
    counters: Dict[str, object] = field(default_factory=dict)
    trace: Optional[object] = None
    detail: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _clone(spec: ScenarioSpec) -> ScenarioSpec:
    """A deep, independent copy (specs share mutable schedule lists)."""
    return ScenarioSpec.from_dict(spec.to_dict())


def _with_health(spec: ScenarioSpec) -> ScenarioSpec:
    """Ensure a health instrument so every RunResult carries a summary.

    Attaching :class:`~repro.telemetry.ProtocolHealth` only *observes*
    (a tracer subscription); it never alters event flow, so results
    stay byte-identical to a run without it."""
    if any(entry.get("kind") == "health" for entry in spec.instruments):
        return spec
    spec = _clone(spec)
    spec.instruments.append({"kind": "health"})
    return spec


def _as_obs_plane(obs):
    """``True`` means "make me one"; an object passes through."""
    if obs is None or obs is False:
        return None
    if obs is True:
        from repro.obs import ObsPlane

        return ObsPlane()
    return obs


# ----------------------------------------------------------------------
# Per-backend execution
# ----------------------------------------------------------------------
def _run_sim(spec, obs, until, batched: bool) -> RunResult:
    from repro.scenario.session import Session

    spec = _with_health(spec)
    started = time.perf_counter()
    session = Session(spec)
    if batched:
        # Per-instance opt-in: only this session's simulator routes
        # run() through the batched kernel.
        session.sim.default_batched = True
    obs_plane = _as_obs_plane(obs)
    if obs_plane is not None:
        session.sim.attach(obs_plane)
    session.run_to_checkpoint()
    session.install_tail()
    session.run(until=until)
    telemetry = session.telemetry
    return RunResult(
        backend="batched" if batched else "sim",
        spec_name=spec.name,
        events=session.sim.events_processed,
        sim_time=session.sim.now,
        wall_seconds=time.perf_counter() - started,
        health=telemetry.summary() if telemetry is not None else None,
        counters={"events": session.sim.events_processed},
        trace=session.sim.tracer,
        detail=session,
    )


def _run_engine(spec, obs, until) -> RunResult:
    from repro.telemetry.health import ProtocolHealth
    from repro.wire.driver import _run_engine_spec

    health = ProtocolHealth()
    started = time.perf_counter()
    driver = _run_engine_spec(
        spec,
        health=health,
        obs=_as_obs_plane(obs),
        until=until,
    )
    return RunResult(
        backend="engine",
        spec_name=spec.name,
        events=len(driver.events),
        sim_time=driver.now,
        wall_seconds=time.perf_counter() - started,
        health=health.summary(),
        counters={"events": len(driver.events)},
        trace=driver.events,
        detail=driver,
    )


def _run_live(spec, obs, until, **opts) -> RunResult:
    if until is not None:
        raise ValueError("the live backend always runs to the spec horizon")
    from repro.live.backend import DEFAULT_SPEED, _run_live_spec
    from repro.telemetry.health import ProtocolHealth

    health = ProtocolHealth()
    started = time.perf_counter()
    live_run = _run_live_spec(
        spec,
        speed=float(opts.pop("speed", None) or DEFAULT_SPEED),
        health=health,
        obs=_as_obs_plane(obs),
        **opts,
    )
    return RunResult(
        backend="live",
        spec_name=spec.name,
        events=len(live_run.events),
        sim_time=live_run.horizon,
        wall_seconds=time.perf_counter() - started,
        health=health.summary(),
        counters={
            "events": len(live_run.events),
            "datagrams_sent": live_run.datagrams_sent,
            "datagrams_received": live_run.datagrams_received,
        },
        trace=live_run.events,
        detail=live_run,
    )


def _run_partitioned(spec, obs, until, **opts) -> RunResult:
    if until is not None:
        raise ValueError("the partitioned backend always runs to the spec horizon")
    if obs:
        raise ValueError(
            "the partitioned backend takes instruments from the spec "
            "(per partition), not an obs= plane"
        )
    if not spec.partitions:
        raise ValueError(
            f"spec {spec.name!r} has no partitions field; "
            f"set ScenarioSpec.partitions (schema v2) to shard it"
        )
    from repro.partition import run_partitioned

    workers = opts.pop("workers", None)
    if workers is None:
        workers = spec.partitions  # parallel by default: that's the point
    result = run_partitioned(spec, workers=int(workers))
    merged_counters: Dict[str, object] = {
        "events": result.events,
        "partitions": result.partitions,
        "mode": result.mode,
        "windows": result.windows,
        "exports_delivered": result.exports_delivered,
        "exports_dropped": result.exports_dropped,
    }
    for partition in result.results:
        for key, value in partition["counters"].items():
            merged_counters[key] = merged_counters.get(key, 0) + value
    return RunResult(
        backend="partitioned",
        spec_name=spec.name,
        events=result.events,
        sim_time=spec.horizon,
        wall_seconds=result.wall_seconds,
        health=result.health_merged(),
        counters=merged_counters,
        trace=result.fingerprint(),
        detail=result,
    )


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
def run(
    spec: ScenarioSpec,
    backend: str = "sim",
    *,
    obs=None,
    seed: Optional[int] = None,
    until: Optional[float] = None,
    **opts,
) -> RunResult:
    """Execute ``spec`` on any backend and return a :class:`RunResult`.

    Args:
        spec: the scenario (never mutated; overrides clone it).
        backend: one of :data:`BACKENDS`.
        obs: ``True`` to attach a fresh :class:`~repro.obs.ObsPlane`,
            or an existing plane to attach; ``None`` for no obs.
        seed: override the spec's seed.
        until: stop the clock early (``sim``/``batched``/``engine``
            only — the live and partitioned backends run to the
            horizon).
        **opts: backend-specific — ``speed`` (live), ``workers``
            (partitioned; ``0`` = serial reference, default one
            process per partition).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if seed is not None:
        spec = _clone(spec)
        spec.seed = int(seed)
    if backend == "sim":
        return _run_sim(spec, obs, until, batched=False)
    if backend == "batched":
        return _run_sim(spec, obs, until, batched=True)
    if backend == "engine":
        return _run_engine(spec, obs, until)
    if backend == "live":
        return _run_live(spec, obs, until, **opts)
    return _run_partitioned(spec, obs, until, **opts)


# ----------------------------------------------------------------------
# CLI: python -m repro run
# ----------------------------------------------------------------------
def _resolve_spec(name: str) -> ScenarioSpec:
    """A corpus name (conformance or partition), or a spec JSON path."""
    import json
    from pathlib import Path

    from repro.partition.corpus import partition_corpus_specs
    from repro.wire.conformance import conformance_specs, figure1_walkthrough_spec

    if name in ("figure1", "walkthrough"):
        return figure1_walkthrough_spec()
    for spec in conformance_specs() + partition_corpus_specs():
        if name in (spec.name, spec.name.replace("conformance-", "")):
            return spec
    path = Path(name)
    if not path.exists():
        known = ", ".join(
            ["figure1"]
            + [s.name for s in conformance_specs()]
            + [s.name for s in partition_corpus_specs()]
        )
        raise FileNotFoundError(
            f"unknown scenario {name!r}: not one of [{known}] and no such file"
        )
    data = json.loads(path.read_text())
    if "topology" in data:
        return ScenarioSpec.from_dict(data)
    return ScenarioSpec.from_fuzz_v1(data)


def _render_result(result: RunResult) -> str:
    health = result.health or {}
    lines = [
        f"{result.backend} run {result.spec_name!r}: "
        f"{result.events} events to t={result.sim_time:g}s "
        f"in {result.wall_seconds:.3f}s wall",
        f"  health: {health.get('moves', 0)} moves, "
        f"{health.get('registrations', 0)} registrations, "
        f"{health.get('packets_delivered', 0)} packets delivered, "
        f"{health.get('loops_dissolved', 0)} loops dissolved",
    ]
    if result.backend == "partitioned":
        lines.append(
            f"  partitions: {result.counters.get('partitions')} "
            f"({result.counters.get('mode')} mode, "
            f"{result.counters.get('windows')} windows, "
            f"{result.counters.get('exports_delivered')} cross-partition "
            f"events)"
        )
    return "\n".join(lines)


def run_main(argv=None) -> int:
    """``python -m repro run`` — any scenario, any backend, one door."""
    import json
    import sys

    from repro.clibase import build_parser

    parser = build_parser(
        "run",
        "run a scenario on any execution backend "
        "(sim | batched | engine | live | partitioned)",
        seed_help="override the scenario's seed",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        default="figure1",
        help="corpus scenario name or spec JSON path (default: figure1)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="sim",
        help="execution backend (default: sim)",
    )
    parser.add_argument(
        "--until", type=float, default=None, metavar="T",
        help="stop the clock at T instead of the spec horizon",
    )
    parser.add_argument(
        "--speed", type=float, default=None, metavar="X",
        help="live backend: virtual seconds per wall second",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="partitioned backend: worker processes (0 = serial reference; "
             "default one per partition)",
    )
    args = parser.parse_args(argv)

    try:
        spec = _resolve_spec(args.scenario)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    opts = {}
    if args.speed is not None:
        opts["speed"] = args.speed
    if args.workers is not None:
        opts["workers"] = args.workers
    try:
        result = run(
            spec, backend=args.backend, seed=args.seed, until=args.until, **opts
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.as_json:
        print(
            json.dumps(
                {
                    "backend": result.backend,
                    "spec": result.spec_name,
                    "status": result.status,
                    "events": result.events,
                    "sim_time": result.sim_time,
                    "wall_seconds": result.wall_seconds,
                    "counters": result.counters,
                    "health": result.health,
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
    elif not args.quiet:
        print(_render_result(result))
    return 0
