"""Live asyncio-UDP backend for the sans-io MHRP engines
(``repro.live``).

Every node interface becomes a real UDP socket on loopback; media are a
port directory; timers ride the asyncio event loop through a
speed-scaled virtual clock.  The protocol code is byte-for-byte the
:mod:`repro.wire` engines the deterministic driver runs — only the
transport and the clock differ.
"""

from repro.live.backend import LiveRun, VirtualClock, run_live_spec

__all__ = ["LiveRun", "VirtualClock", "run_live_spec"]
