"""The foreign agent (paper Sections 2, 4.4, 5.1, 5.2, 5.3) — simulator
adapter.

The protocol behaviour lives in :class:`repro.wire.roles.ForeignAgentRole`
(one implementation shared with the sans-io engines); this module binds
it to a simulator :class:`~repro.ip.node.IPNode` via
:class:`~repro.wire.roles.SimRolePort`.

A foreign agent serves visiting mobile hosts on one of its networks:

- it keeps the **visitor list** and delivers tunneled packets over the
  last hop (learning each visitor's hardware address from the connect
  notification, or via ARP — Section 2 allows both);
- packets for a visitor that has *left* are **re-tunneled**: to the new
  foreign agent when a forwarding-pointer cache entry exists, otherwise
  to the mobile host's home address for the home agent to fix up
  (Section 4.4);
- on a correct delivery it sends **location updates** to every stale
  cache named on the packet's previous-source list (Section 5.1);
- the visitor list is volatile: after a **reboot** the agent re-learns
  visitors from the location updates the home agent sends during the
  Section 5.2 recovery, and proactively re-advertises with a fresh boot
  id so visitors re-register;
- re-tunneling performs **loop detection** and dissolution (Section 5.3).
"""

from __future__ import annotations

from typing import Optional

from repro.core.cache_agent import CacheAgent, UpdateRateLimiter
from repro.core.header import DEFAULT_MAX_PREVIOUS_SOURCES
from repro.ip.node import IPNode
from repro.wire.logic import DEPARTURE_GRACE
from repro.wire.roles import ForeignAgentRole, SimRolePort, VisitorRecord

__all__ = ["DEPARTURE_GRACE", "ForeignAgent", "VisitorRecord"]


class ForeignAgent(ForeignAgentRole):
    """The simulator-facing foreign agent: role + port derived from the
    node.

    Args:
        node: the router or support host providing the service.
        local_iface_name: the interface visitors attach through.
        cache_agent: the node's cache agent, used for forwarding pointers
            (Section 2); ``None`` disables them.
        keep_forwarding_pointers: cache the new foreign agent when a
            visitor moves away (optional per the paper; E6 measures it).
        believe_home_agent: Section 5.2 gives the rebooted agent a
            choice — re-add a visitor on the home agent's word (True), or
            first verify with a local query (False; ARP on this backend).
    """

    def __init__(
        self,
        node: IPNode,
        local_iface_name: str,
        cache_agent: Optional[CacheAgent] = None,
        keep_forwarding_pointers: bool = True,
        believe_home_agent: bool = True,
        advertise: bool = True,
        max_previous_sources: int = DEFAULT_MAX_PREVIOUS_SOURCES,
        update_limiter: Optional[UpdateRateLimiter] = None,
    ) -> None:
        super().__init__(
            SimRolePort.of(node),
            node,
            local_iface_name,
            cache_agent=cache_agent,
            keep_forwarding_pointers=keep_forwarding_pointers,
            believe_home_agent=believe_home_agent,
            advertise=advertise,
            max_previous_sources=max_previous_sources,
            update_limiter=update_limiter,
        )

    @classmethod
    def attach(cls, node: IPNode, local_iface_name: str, **kwargs) -> "ForeignAgent":
        """Create the role and wire it into the node."""
        agent = cls(node, local_iface_name, **kwargs)
        agent._wire()
        return agent
