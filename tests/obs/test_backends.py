"""Cross-backend observability guarantees.

Two acceptance criteria live here:

- **Attached**: the normalized Figure-1 span DAG is identical across
  the simulator, the deterministic engine driver, and the live
  asyncio-UDP backend (and sim == driver across the whole conformance
  corpus).
- **Detached/attached neutrality**: attaching the obs plane must not
  perturb behaviour — the golden Figure-1 trace and the committed
  health summary stay byte-identical with the plane attached.
"""

import json
from pathlib import Path

import pytest

from repro.obs import ObsPlane, normalized_dag
from repro.wire.conformance import conformance_specs, figure1_walkthrough_spec
from repro.wire.driver import run_engine_spec


def _sim_dag(spec):
    from repro.scenario.session import Session
    from repro.scenario.spec import ScenarioSpec

    data = spec.to_dict()
    data["instruments"] = [{"kind": "obs"}]
    session = Session(ScenarioSpec.from_dict(data))
    session.run_full()
    return normalized_dag(session.obs.spans), session.obs


def _driver_dag(spec):
    obs = ObsPlane()
    run_engine_spec(spec, obs=obs)
    return normalized_dag(obs.spans), obs


class TestCorpusDagIdentity:
    @pytest.mark.parametrize(
        "spec", conformance_specs(), ids=lambda s: s.name
    )
    def test_sim_and_driver_produce_the_same_dag(self, spec):
        sim_dag, sim_obs = _sim_dag(spec)
        driver_dag, driver_obs = _driver_dag(spec)
        assert sim_dag == driver_dag
        # The retransmit-collapse accounting matches too.
        assert (
            sim_obs.spans.summary()["merged"]
            == driver_obs.spans.summary()["merged"]
        )

    def test_figure1_dag_is_nonempty_and_structured(self):
        dag, _ = _driver_dag(figure1_walkthrough_spec())
        assert len(dag) >= 10
        roots = {tree["label"][0] for tree in dag}
        assert roots == {"mhrp.register", "mhrp.tunnel"}
        assert any(tree["children"] for tree in dag)


class TestLiveDagIdentity:
    def test_figure1_live_matches_driver(self):
        from repro.live.backend import run_live_spec

        spec = figure1_walkthrough_spec()
        driver_dag, _ = _driver_dag(spec)
        obs = ObsPlane()
        run_live_spec(spec, obs=obs)
        assert normalized_dag(obs.spans) == driver_dag


class TestAttachedNeutrality:
    def test_golden_figure1_trace_unchanged_with_obs_attached(self):
        """Span recording is a pure tracer listener: the committed
        golden trace must stay byte-identical with the plane attached."""
        from tests.core.test_golden_trace import (
            GOLDEN_PATH,
            _jsonable,
            _reset_global_counters,
        )
        from repro.workloads.topology import build_figure1

        _reset_global_counters()
        topo = build_figure1(seed=42)
        sim, s, m = topo.sim, topo.s, topo.m
        obs = sim.attach(ObsPlane())
        m.attach_home(topo.net_b)
        sim.run(until=5.0)
        m.attach(topo.net_d)
        sim.run(until=12.0)
        s.ping(m.home_address)
        sim.run(until=16.0)
        s.ping(m.home_address)
        sim.run(until=20.0)
        m.attach(topo.net_e)
        sim.run(until=28.0)
        s.ping(m.home_address)
        sim.run(until=32.0)
        m.attach_home(topo.net_b)
        sim.run(until=38.0)
        s.ping(m.home_address)
        sim.run(until=42.0)

        current = [
            {
                "time": entry.time,
                "category": entry.category,
                "node": entry.node,
                "detail": _jsonable(entry.detail),
            }
            for entry in sim.tracer
        ]
        golden = json.loads(GOLDEN_PATH.read_text())
        assert current == golden
        assert len(obs.spans) > 0  # the plane really was listening

    def test_health_summary_unchanged_with_obs_attached(self):
        """The committed CI golden health summary, re-derived with the
        obs plane attached alongside the health hub."""
        from repro.telemetry.cli import figure1_scenario
        from repro.workloads.topology import build_figure1, drive_figure1
        from repro.telemetry.health import ProtocolHealth

        golden_path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "results" / "health_figure1.json"
        )
        golden = json.loads(golden_path.read_text())

        topo = build_figure1(seed=42)
        sim = topo.sim
        nodes = [topo.s, topo.r1, topo.r2, topo.r3, topo.r4, topo.r5, topo.m]
        hub = sim.attach(ProtocolHealth(), nodes=nodes)
        sim.attach(ObsPlane())
        drive_figure1(topo)
        assert hub.summary() == golden

    def test_snapshot_rejects_nothing_with_obs_attached(self):
        """Obs attachment keeps sessions forkable (bound-method
        listener, no closures in the event queue)."""
        from repro.scenario.session import Session, validate_forkable
        from repro.scenario.spec import ScenarioSpec

        spec = figure1_walkthrough_spec()
        data = spec.to_dict()
        data["instruments"] = [{"kind": "obs"}]
        data["checkpoint"] = 4.0
        session = Session(ScenarioSpec.from_dict(data))
        session.run_to_checkpoint()
        validate_forkable(session.sim)  # must not raise
