"""Exporters: the Perfetto/Chrome trace must be valid trace-event JSON
and the JSONL timeline must round-trip."""

import io
import json

from repro.netsim.trace import TraceEntry
from repro.telemetry.exporters import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    timeline_records,
)
from repro.telemetry.journeys import JourneyIndex


def _entry(t, category, node, **detail):
    return TraceEntry(time=t, category=category, node=node, detail=detail)


def _small_index() -> JourneyIndex:
    index = JourneyIndex()
    index.observe(_entry(0.00, "ip.send", "S", uid=1))
    index.observe(_entry(0.01, "mhrp.tunnel", "S", uid=1, event="sender-encapsulate"))
    index.observe(_entry(0.02, "ip.forward", "R1", uid=1))
    index.observe(_entry(0.03, "ip.deliver", "M", uid=1))
    index.observe(_entry(0.00, "ip.send", "A", uid=2))
    index.observe(_entry(0.05, "ip.drop", "R2", uid=2, reason="no-route"))
    return index


def test_timeline_records_time_ordered_with_uid():
    records = timeline_records(_small_index())
    assert len(records) == 6
    times = [r["time"] for r in records]
    assert times == sorted(times)
    assert {r["uid"] for r in records} == {1, 2}
    assert all("uid" not in r["detail"] for r in records)
    drop = [r for r in records if r["kind"] == "drop"][0]
    assert drop["detail"]["reason"] == "no-route"


def test_export_jsonl_round_trips():
    out = io.StringIO()
    n = export_jsonl(_small_index(), out)
    lines = out.getvalue().strip().splitlines()
    assert n == len(lines) == 6
    parsed = [json.loads(line) for line in lines]
    assert parsed == timeline_records(_small_index())


def test_chrome_trace_is_valid_trace_event_json():
    document = chrome_trace(_small_index())
    # Must survive a strict serialize/parse cycle.
    document = json.loads(json.dumps(document))
    events = document["traceEvents"]
    assert isinstance(events, list) and events

    slices = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(slices) == 6
    for event in slices:
        assert event["pid"] == 1
        assert event["tid"] in (1, 2)           # one track per packet uid
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert isinstance(event["name"], str) and "@" in event["name"]
    # Tunnel ops are categorized separately from plain IP steps.
    assert any(e["cat"] == "tunnel" for e in slices)
    # Thread-name metadata gives each packet track a label.
    names = [e for e in metadata if e["name"] == "thread_name"]
    assert {e["tid"] for e in names} == {1, 2}


def test_chrome_trace_span_durations_run_to_next_step():
    document = chrome_trace(_small_index())
    track1 = sorted(
        (e for e in document["traceEvents"] if e["ph"] == "X" and e["tid"] == 1),
        key=lambda e: e["ts"],
    )
    # send at t=0 lasts until the tunnel op at t=0.01 -> 10_000 us.
    assert track1[0]["dur"] == 10_000
    # The final step is a zero-duration marker.
    assert track1[-1]["dur"] == 0


def test_export_chrome_trace_to_file(tmp_path):
    path = tmp_path / "trace.json"
    n = export_chrome_trace(_small_index(), str(path))
    document = json.loads(path.read_text())
    assert len(document["traceEvents"]) == n


def _evicting_index(max_completed=2):
    """Five completed journeys through a ``max_completed=2`` index, so
    uids 1..3 are evicted and 4..5 retained."""
    index = JourneyIndex(max_completed=max_completed)
    for uid in range(1, 6):
        t = uid / 10.0
        index.observe(_entry(t, "ip.send", "S", uid=uid))
        index.observe(_entry(t + 0.01, "ip.deliver", "M", uid=uid))
    return index


def test_export_jsonl_under_eviction_writes_only_retained():
    index = _evicting_index()
    assert index.evicted == 3
    out = io.StringIO()
    n = export_jsonl(index, out)
    records = [json.loads(line) for line in out.getvalue().splitlines()]
    assert n == len(records) == 4  # 2 retained journeys x 2 steps
    assert {r["uid"] for r in records} == {4, 5}
    times = [r["time"] for r in records]
    assert times == sorted(times)


def test_chrome_trace_under_eviction_tracks_match_retained():
    index = _evicting_index()
    document = json.loads(json.dumps(chrome_trace(index)))
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert {e["tid"] for e in slices} == {4, 5}
    names = [
        e for e in document["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert {e["tid"] for e in names} == {4, 5}


def test_exports_with_in_flight_journeys_mid_eviction():
    """Exports taken mid-run: completed journeys already evicted while
    others are still in flight must produce a coherent document."""
    index = JourneyIndex(max_completed=1)
    for uid in (1, 2):
        index.observe(_entry(uid / 10.0, "ip.send", "S", uid=uid))
        index.observe(_entry(uid / 10.0 + 0.01, "ip.deliver", "M", uid=uid))
    index.observe(_entry(0.9, "ip.send", "S", uid=3))  # still in flight
    assert index.evicted == 1
    records = timeline_records(index)
    assert {r["uid"] for r in records} == {2, 3}
    document = json.loads(json.dumps(chrome_trace(index)))
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert {e["tid"] for e in slices} == {2, 3}
    # The in-flight journey's only step renders as a zero-length marker.
    flight = [e for e in slices if e["tid"] == 3]
    assert len(flight) == 1 and flight[0]["dur"] == 0


# ----------------------------------------------------------------------
# Causal span DAG export (repro.obs)
# ----------------------------------------------------------------------

def _span_recorder():
    from repro.obs import SpanRecorder

    recorder = SpanRecorder()
    recorder.consume(1.0, "mhrp.register", "M", {
        "event": "send", "kind": "ha-register", "to": "HA", "attempt": 0,
    })
    recorder.consume(1.1, "mhrp.register", "HA", {
        "event": "ha-register", "mobile_host": "M", "foreign_agent": "FA",
    })
    recorder.consume(2.0, "mhrp.tunnel", "S", {
        "event": "sender-encapsulate", "uid": 7,
    })
    recorder.consume(2.1, "mhrp.tunnel", "FA", {
        "event": "fa-deliver", "uid": 7,
    })
    return recorder


def test_span_chrome_trace_has_nesting_and_flow_arrows():
    from repro.telemetry.exporters import span_chrome_trace

    document = json.loads(json.dumps(span_chrome_trace(_span_recorder())))
    events = document["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    flows = [e for e in events if e["ph"] in ("s", "f")]
    assert len(slices) == 4
    assert all(e["pid"] == 2 for e in slices)
    # Two traces -> two parent->child edges -> one s/f pair each.
    assert len(flows) == 4
    starts = {e["id"]: e["ts"] for e in flows if e["ph"] == "s"}
    ends = {e["id"]: e["ts"] for e in flows if e["ph"] == "f"}
    assert set(starts) == set(ends)
    for flow_id, ts in starts.items():
        assert ends[flow_id] >= ts
    # Parent slices last until their latest descendant (proper nesting).
    register_root = [e for e in slices if e["name"].startswith("send @")][0]
    assert abs(register_root["dur"] - 100_000) < 1e-3


def test_export_span_chrome_trace_to_file(tmp_path):
    from repro.telemetry.exporters import export_span_chrome_trace

    path = tmp_path / "spans.json"
    n = export_span_chrome_trace(_span_recorder(), str(path))
    document = json.loads(path.read_text())
    assert len(document["traceEvents"]) == n


def test_figure1_perfetto_export_is_loadable():
    """The acceptance criterion: a Figure-1 run exports as valid
    trace-event JSON with every packet as its own track."""
    from repro.telemetry.cli import figure1_scenario

    _, hub = figure1_scenario(seed=42)
    document = json.loads(json.dumps(chrome_trace(hub.index)))
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(slices) > 50
    assert len({e["tid"] for e in slices}) == len(hub.index)
