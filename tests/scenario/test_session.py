"""Session snapshot/fork determinism: a fork must be byte-identical to a
cold run of the same spec — same serialized trace, same component state.
"""

import json

import pytest

from repro.errors import SnapshotError
from repro.harness.experiments import handoff_telemetry_spec
from repro.invariants import fuzz
from repro.scenario import ScenarioSpec, Session
from repro.scenario.session import (
    capture_global_counters,
    reset_global_counters,
    restore_global_counters,
)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def trace_json(session: Session) -> str:
    """The session's full trace, serialized — the byte-identity witness."""
    return json.dumps(
        [
            {
                "time": entry.time,
                "category": entry.category,
                "node": entry.node,
                "detail": _jsonable(entry.detail),
            }
            for entry in session.sim.tracer
        ]
    )


def cold_run(spec: ScenarioSpec) -> Session:
    return Session(spec).run_full()


def forked_run(spec: ScenarioSpec) -> Session:
    snapshot = Session(spec).run_to_checkpoint().snapshot()
    forked = snapshot.fork()
    forked.install_tail()
    forked.run()
    return forked


def fuzzed_campus_spec(seed: int = 3, checkpoint: float = 10.0) -> ScenarioSpec:
    spec = ScenarioSpec.from_fuzz_v1(fuzz.make_scenario(seed, "quick"))
    spec.checkpoint = checkpoint
    return spec


class TestForkDeterminism:
    def test_figure1_fork_is_byte_identical_to_cold(self):
        spec = handoff_telemetry_spec(seed=42, duration=18.0)
        cold = cold_run(spec)
        forked = forked_run(spec)
        assert trace_json(forked) == trace_json(cold)
        assert forked.state_dict() == cold.state_dict()

    def test_fuzzed_campus_fork_is_byte_identical_to_cold(self):
        spec = fuzzed_campus_spec()
        assert spec.prefix_entries(), "fuzzed spec needs a non-empty warm-up"
        cold = cold_run(spec)
        forked = forked_run(spec)
        assert trace_json(forked) == trace_json(cold)
        assert forked.state_dict() == cold.state_dict()

    def test_telemetry_summary_survives_the_fork(self):
        spec = handoff_telemetry_spec(seed=42, duration=18.0)
        assert forked_run(spec).telemetry.summary() == cold_run(
            spec
        ).telemetry.summary()

    def test_two_forks_are_independent_and_identical(self):
        spec = fuzzed_campus_spec(seed=4)
        snapshot = Session(spec).run_to_checkpoint().snapshot()
        first = snapshot.fork()
        first.install_tail()
        first.run()
        # Running the first fork must not have disturbed the snapshot.
        second = snapshot.fork()
        second.install_tail()
        second.run()
        assert trace_json(first) == trace_json(second)
        assert first.state_dict() == second.state_dict()

    def test_fork_accepts_a_different_tail(self):
        spec = handoff_telemetry_spec(seed=42, duration=18.0)
        variant = handoff_telemetry_spec(seed=42, duration=18.0)
        variant.pings = variant.pings[:3]  # tail change only
        snapshot = Session(spec).run_to_checkpoint().snapshot()
        forked = snapshot.fork(variant)
        forked.install_tail()
        forked.run()
        assert trace_json(forked) == trace_json(cold_run(variant))


class TestAdapterStateContract:
    """The core/ agents are thin adapters over the ``repro.wire`` role
    engines (PR 7); the PR 5 snapshot contract must survive that
    indirection — forks stay byte-identical to cold runs, and role
    state round-trips through ``state_dict``/``load_state`` on the
    adapter-backed agents."""

    def test_local_query_campus_fork_is_byte_identical_to_cold(self):
        """A fuzzed campus with ``believe_home_agent=False`` (the
        Section 5.2 local-query mode, newly threaded through the
        topology builders): fork-vs-cold byte identity holds with the
        query/verify timers in play."""
        spec = fuzzed_campus_spec(seed=5)
        spec.topology["believe_home_agent"] = False
        cold = cold_run(spec)
        forked = forked_run(spec)
        for roles in cold.world.cell_roles:
            assert roles.foreign_agent.believe_home_agent is False
        assert trace_json(forked) == trace_json(cold)
        assert forked.state_dict() == cold.state_dict()

    def test_role_state_round_trips_through_adapters(self):
        """Mid-scenario role state loads into a fresh world's twin
        agent and reads back identically."""
        spec = fuzzed_campus_spec(seed=3)
        session = cold_run(spec)
        fresh = Session(fuzzed_campus_spec(seed=3))

        def agents(world):
            found = {}
            if world.home_roles is not None and world.home_roles.home_agent:
                found["home"] = world.home_roles.home_agent
            for i, cell in enumerate(world.cell_roles):
                if cell.foreign_agent is not None:
                    found[f"fa{i}"] = cell.foreign_agent
                if cell.cache_agent is not None:
                    found[f"cache{i}"] = cell.cache_agent
            return found

        ran, twins = agents(session.world), agents(fresh.world)
        assert set(ran) == set(twins) and ran
        for key, agent in ran.items():
            state = agent.state_dict()
            twins[key].load_state(state)
            assert twins[key].state_dict() == state, key


class TestSnapshotContract:
    def test_fork_rejects_a_mismatched_prefix(self):
        spec = handoff_telemetry_spec(seed=42, duration=18.0)
        other = handoff_telemetry_spec(seed=43, duration=18.0)
        snapshot = Session(spec).run_to_checkpoint().snapshot()
        with pytest.raises(SnapshotError, match="prefix hash"):
            snapshot.fork(other)

    def test_install_tail_twice_is_an_error(self):
        session = Session(handoff_telemetry_spec(seed=42, duration=18.0))
        session.run_to_checkpoint()
        session.install_tail()
        with pytest.raises(SnapshotError, match="already installed"):
            session.install_tail()

    def test_snapshot_after_tail_is_an_error(self):
        session = Session(handoff_telemetry_spec(seed=42, duration=18.0))
        session.run_to_checkpoint()
        session.install_tail()
        with pytest.raises(SnapshotError, match="before the tail"):
            session.snapshot()

    def test_snapshot_rejects_pending_closures(self):
        session = Session(handoff_telemetry_spec(seed=42, duration=18.0))
        session.run_to_checkpoint()
        leak = []
        session.sim.schedule_at(30.0, lambda: leak.append(1), label="closure")
        with pytest.raises(SnapshotError, match="lambda/closure"):
            session.snapshot()


class TestGlobalCounters:
    def test_capture_restore_round_trip(self):
        import repro.ip.packet as packet_mod

        reset_global_counters()
        next(packet_mod._packet_ids)
        captured = capture_global_counters()
        next(packet_mod._packet_ids)
        restore_global_counters(captured)
        assert capture_global_counters() == captured

    def test_session_build_resets_counters(self):
        import repro.ip.packet as packet_mod

        Session(handoff_telemetry_spec(seed=42, duration=18.0))
        before = capture_global_counters()["repro.ip.packet._packet_ids"]
        next(packet_mod._packet_ids)
        Session(handoff_telemetry_spec(seed=42, duration=18.0))
        assert capture_global_counters()["repro.ip.packet._packet_ids"] == before


class TestStateDictContracts:
    """state_dict()/load_state() round-trips on the engine components."""

    def test_simulator_state_round_trips(self):
        spec = handoff_telemetry_spec(seed=42, duration=18.0)
        session = Session(spec).run_to_checkpoint()
        state = session.sim.state_dict()
        assert json.loads(json.dumps(state)) == state
        session.sim.rng.random()  # perturb
        session.sim.load_state(state)
        assert session.sim.state_dict() == state

    def test_node_state_dicts_are_jsonable(self):
        spec = fuzzed_campus_spec()
        session = Session(spec).run_to_checkpoint()
        state = session.state_dict()
        assert json.loads(json.dumps(state)) == state
