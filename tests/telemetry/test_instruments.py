"""Instrument primitives: the histogram's quantiles cross-checked
against the exact nearest-rank :func:`repro.metrics.stats.percentile`."""

import math
import random

import pytest

from repro.metrics.stats import percentile
from repro.telemetry.instruments import (
    Counter,
    Gauge,
    Histogram,
    TimeSeries,
    fmt_p,
)


# ----------------------------------------------------------------------
# Histogram vs exact percentiles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("distribution", ["uniform", "lognormal", "exponential"])
def test_quantiles_within_bucket_growth_of_exact(seed, distribution):
    rng = random.Random(seed)
    samples = {
        "uniform": lambda: rng.uniform(0.001, 10.0),
        "lognormal": lambda: rng.lognormvariate(0.0, 2.0),
        "exponential": lambda: rng.expovariate(3.0),
    }[distribution]
    values = [samples() for _ in range(2000)]
    hist = Histogram()
    hist.record_many(values)
    for p in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
        exact = percentile(values, p)
        approx = hist.quantile(p)
        # A value is known to within its bucket, and buckets grow by
        # `growth` per step — so the approximation can be off by at
        # most one bucket's span around the exact value.
        assert exact / hist.growth <= approx <= exact * hist.growth, (
            f"p{p}: approx {approx} vs exact {exact} (factor "
            f"{approx / exact:.4f}, growth {hist.growth:.4f})"
        )


def test_quantile_edges_are_exact():
    hist = Histogram()
    values = [0.5, 1.5, 2.5, 9.0]
    hist.record_many(values)
    assert hist.quantile(0) == 0.5
    assert hist.quantile(100) == 9.0  # clamped to observed max
    assert hist.min == 0.5 and hist.max == 9.0


def test_mean_and_count_are_exact():
    hist = Histogram()
    hist.record_many([1.0, 2.0, 3.0])
    assert hist.mean == pytest.approx(2.0)
    assert hist.count == len(hist) == 3


def test_zero_values_get_their_own_bucket():
    hist = Histogram()
    hist.record_many([0.0, 0.0, 0.0, 4.0])
    assert hist.zeros == 3
    assert hist.quantile(50) == 0.0
    assert hist.quantile(100) == 4.0
    low, high, count = hist.buckets()[0]
    assert (low, high, count) == (0.0, 0.0, 3)


def test_negative_values_rejected():
    hist = Histogram()
    with pytest.raises(ValueError):
        hist.record(-1.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        Histogram(growth=1.0)
    with pytest.raises(ValueError):
        Histogram(base=0.0)


def test_summary_scaling():
    hist = Histogram()
    hist.record_many([0.001, 0.002, 0.004])
    summary = hist.summary(scale=1000.0)  # seconds -> milliseconds
    assert summary["n"] == 3
    assert summary["mean"] == pytest.approx(7.0 / 3)
    assert summary["max"] == pytest.approx(4.0)
    assert Histogram().summary() == {
        "n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0
    }


def test_bucket_memory_is_logarithmic():
    hist = Histogram()
    rng = random.Random(0)
    for _ in range(50_000):
        hist.record(rng.lognormvariate(0.0, 3.0))
    # Twelve decades at 8 buckets/octave is a few hundred buckets max;
    # 50k observations must not mean 50k buckets.
    assert len(hist.buckets()) < 400


def test_fmt_p():
    assert fmt_p(50) == "50"
    assert fmt_p(99.9) == "99_9"


# ----------------------------------------------------------------------
# Counter / Gauge / TimeSeries
# ----------------------------------------------------------------------
def test_counter():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == int(c) == 5


def test_gauge_tracks_extremes():
    g = Gauge()
    g.set(3.0)
    g.set(-1.0)
    g.set(2.0)
    assert (g.value, g.min, g.max, g.n) == (2.0, -1.0, 3.0, 3)


def test_timeseries_bins_and_peak():
    ts = TimeSeries(bin_width=1.0)
    ts.record(0.1)
    ts.record(0.9)
    ts.record(2.5, value=3.0)
    assert ts.bins() == [(0.0, 2.0), (2.0, 3.0)]
    assert ts.peak() == 3.0
    assert ts.total == 5.0 and ts.n == 3


def test_timeseries_evicts_oldest_bin():
    ts = TimeSeries(bin_width=1.0, max_bins=3)
    for t in range(5):
        ts.record(float(t))
    assert len(ts) == 3
    assert ts.evicted == 2
    assert ts.bins()[0][0] == 2.0  # bins 0 and 1 fell off
    assert ts.total == 5.0  # totals keep counting what was evicted


def test_timeseries_validation():
    with pytest.raises(ValueError):
        TimeSeries(bin_width=0.0)
    with pytest.raises(ValueError):
        TimeSeries(max_bins=0)
