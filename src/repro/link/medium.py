"""Transmission media: LANs, point-to-point links, wireless cells.

A medium is a broadcast domain.  Transmitting a frame schedules delivery
to the appropriate attached interfaces after the medium's latency, with
optional random loss.  Frames addressed to a unicast hardware address are
delivered only to the matching interface; broadcast frames reach every
attached interface except the sender.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import LinkError
from repro.link.frame import Frame, HWAddress
from repro.netsim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.link.interface import NetworkInterface


class Medium:
    """Base class for all transmission media.

    Args:
        sim: the owning simulator.
        name: label used in traces.
        latency: one-way propagation + transmission delay in seconds.
        loss_rate: probability in [0, 1] that any single delivery is lost.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float = 0.001,
        loss_rate: float = 0.0,
        mtu: int = 1500,
    ) -> None:
        if latency < 0:
            raise LinkError(f"latency cannot be negative: {latency!r}")
        if not 0.0 <= loss_rate <= 1.0:
            raise LinkError(f"loss rate must be in [0,1]: {loss_rate!r}")
        if mtu < 68:
            raise LinkError(f"mtu below the IPv4 minimum of 68: {mtu!r}")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.loss_rate = loss_rate
        #: Maximum IP packet size this medium carries.  The forwarding
        #: engine enforces it (oversize packets draw an ICMP
        #: "fragmentation needed"); tunneling *adds* header bytes, so a
        #: packet that fit its first hop can exceed a later one — the
        #: classic mobile-IP tunnel-MTU interaction.
        self.mtu = mtu
        self._interfaces: Dict[HWAddress, "NetworkInterface"] = {}
        #: Cumulative bytes scheduled for delivery (includes lost frames);
        #: used by congestion measurements in the loop-contraction bench.
        self.bytes_transmitted = 0
        self.frames_transmitted = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    @property
    def interfaces(self) -> tuple:
        """Currently attached interfaces."""
        return tuple(self._interfaces.values())

    def attach(self, interface: "NetworkInterface") -> None:
        """Attach ``interface`` to this medium."""
        if interface.hw_address in self._interfaces:
            raise LinkError(
                f"{interface} already attached to {self.name}"
            )
        self._interfaces[interface.hw_address] = interface

    def detach(self, interface: "NetworkInterface") -> None:
        """Detach ``interface``; in-flight frames to it are lost."""
        if self._interfaces.pop(interface.hw_address, None) is None:
            raise LinkError(f"{interface} is not attached to {self.name}")

    def is_attached(self, interface: "NetworkInterface") -> bool:
        return self._interfaces.get(interface.hw_address) is interface

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "NetworkInterface", frame: Frame) -> None:
        """Transmit ``frame`` from ``sender`` onto the medium."""
        if not self.is_attached(sender):
            raise LinkError(f"{sender} transmitting on {self.name} while detached")
        self.frames_transmitted += 1
        self.bytes_transmitted += frame.byte_length
        if self.sim.trace_active("link.tx"):
            self.sim.trace(
                "link.tx",
                sender.node_name,
                medium=self.name,
                frame=repr(frame.payload),
                bytes=frame.byte_length,
                uid=getattr(frame.payload, "uid", None),
            )
        if frame.is_broadcast:
            # Coalesced fan-out: one delivery event carries the whole
            # receiver set instead of one event per receiver.  This is
            # order-preserving: the per-receiver events used to get
            # adjacent sequence numbers from this synchronous loop, so
            # nothing could ever interleave between them — running them
            # back to back inside one event executes the identical
            # global (time, sequence) order.  Loss is still drawn here,
            # per receiver, in attachment order (same rng stream), and
            # the is-attached re-check stays at delivery time, per
            # receiver (see :meth:`_deliver_batch`).
            survivors = []
            for iface in list(self._interfaces.values()):
                if iface is sender:
                    continue
                if self.loss_rate and self.sim.rng.random() < self.loss_rate:
                    self.sim.trace(
                        "link.drop", iface.node_name, medium=self.name, reason="loss"
                    )
                    auditor = self.sim.auditor
                    if auditor is not None:
                        auditor.frame_lost(
                            self.sim.now, iface.node_name, frame.payload, "loss"
                        )
                    continue
                survivors.append(iface)
            if not survivors:
                return
            if len(survivors) == 1:
                self.sim.schedule(
                    self.latency,
                    partial(self._deliver, survivors[0], frame),
                    label=f"{self.name}-deliver",
                )
            else:
                self.sim.schedule(
                    self.latency,
                    partial(self._deliver_batch, survivors, frame),
                    label=f"{self.name}-deliver",
                )
        else:
            target = self._interfaces.get(frame.dst)
            if target is None or target is sender:
                # No receiver on this segment: the frame vanishes, exactly
                # like Ethernet.  Upper layers see silence, not an error.
                self.sim.trace(
                    "link.drop", sender.node_name, medium=self.name, reason="no-receiver"
                )
                auditor = self.sim.auditor
                if auditor is not None:
                    auditor.frame_lost(
                        self.sim.now, sender.node_name, frame.payload, "no-receiver"
                    )
                return
            self._schedule_delivery(target, frame)

    def _schedule_delivery(self, target: "NetworkInterface", frame: Frame) -> None:
        if self.loss_rate and self.sim.rng.random() < self.loss_rate:
            self.sim.trace(
                "link.drop", target.node_name, medium=self.name, reason="loss"
            )
            auditor = self.sim.auditor
            if auditor is not None:
                auditor.frame_lost(
                    self.sim.now, target.node_name, frame.payload, "loss"
                )
            return
        self.sim.schedule(
            self.latency,
            partial(self._deliver, target, frame),
            label=f"{self.name}-deliver",
        )

    def _deliver_batch(self, targets: list, frame: Frame) -> None:
        """Deliver one broadcast frame to every coalesced receiver.

        Runs the same per-receiver pipeline :meth:`_deliver` runs —
        including the at-delivery is-attached re-check, so a receiver
        detached by an *earlier* delivery in this very batch still loses
        the frame exactly as it would have under one-event-per-receiver
        scheduling."""
        deliver = self._deliver
        for target in targets:
            deliver(target, frame)

    def _deliver(self, target: "NetworkInterface", frame: Frame) -> None:
        # The target may have detached (mobile host moved) while the frame
        # was in flight; such frames are lost, matching physical reality.
        if not self.is_attached(target):
            self.sim.trace(
                "link.drop", target.node_name, medium=self.name, reason="detached"
            )
            auditor = self.sim.auditor
            if auditor is not None:
                auditor.frame_lost(
                    self.sim.now, target.node_name, frame.payload, "detached"
                )
            return
        if self.sim.trace_active("link.rx"):
            self.sim.trace(
                "link.rx", target.node_name, medium=self.name, frame=repr(frame.payload)
            )
        target.receive_frame(frame)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ({len(self._interfaces)} ifaces)>"


class LAN(Medium):
    """A wired broadcast LAN (Ethernet-like)."""


class PointToPointLink(Medium):
    """A two-endpoint link (e.g. a serial backbone link).

    Enforces at most two attached interfaces; unicast frames to the far
    endpoint's address and broadcasts both reach the single peer.
    """

    def attach(self, interface: "NetworkInterface") -> None:
        if len(self._interfaces) >= 2:
            raise LinkError(f"{self.name} already has two endpoints")
        super().attach(interface)

    def peer_of(self, interface: "NetworkInterface") -> Optional["NetworkInterface"]:
        """The other endpoint, if attached."""
        for iface in self._interfaces.values():
            if iface is not interface:
                return iface
        return None


class WirelessCell(Medium):
    """A wireless cell around one transceiver (typically a foreign agent).

    Mobility is modelled as attachment: a mobile host in range is
    attached, and moving out of range detaches it (the movement models in
    :mod:`repro.workloads.mobility` drive this).  Wireless cells default
    to higher latency and support a nonzero loss rate.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float = 0.003,
        loss_rate: float = 0.0,
        mtu: int = 1500,
    ) -> None:
        super().__init__(sim, name, latency=latency, loss_rate=loss_rate, mtu=mtu)
