"""Per-packet journey reconstruction from the trace.

The :class:`Journey` / :class:`JourneyStep` model and the incremental
builder now live in :mod:`repro.telemetry.journeys` (the streaming
flight recorder).  This module keeps the historical post-hoc API —
:func:`journey_of` and :func:`journeys_matching` against an
already-recorded trace — as thin wrappers that build a
:class:`~repro.telemetry.journeys.JourneyIndex` in **one pass** over
the entries, instead of the original per-uid full rescan (which made
``journeys_matching`` O(uids x entries)).

For live use (bounded memory, no end-of-run pass), attach the index
while the simulation runs::

    index = JourneyIndex(max_completed=4096).attach(sim.tracer)
"""

from __future__ import annotations

from typing import Callable, List

from repro.netsim.simulator import Simulator
from repro.telemetry.journeys import Journey, JourneyIndex, JourneyStep

__all__ = ["Journey", "JourneyIndex", "JourneyStep", "journey_of", "journeys_matching"]


def journey_of(sim: Simulator, uid: int) -> Journey:
    """Reconstruct the journey of packet ``uid`` from the trace.

    The tracer must have recorded the ``ip.*`` and ``mhrp.tunnel``
    categories (the default unless restricted).  Returns an empty
    journey when the uid never appears, matching the historical
    behaviour.
    """
    index = JourneyIndex.from_entries(
        e for e in sim.tracer.entries if e.detail.get("uid") == uid
    )
    return index.journey(uid) or Journey(uid=uid)


def journeys_matching(
    sim: Simulator, predicate: Callable[[Journey], bool]
) -> List[Journey]:
    """All journeys whose uid appears in the trace and that satisfy
    ``predicate(journey)``, in first-seen order (single pass)."""
    return JourneyIndex.from_entries(sim.tracer.entries).matching(predicate)
