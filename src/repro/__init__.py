"""repro — a full reimplementation of MHRP, the Mobile Host Routing
Protocol of Johnson (ICDCS 1994), on a from-scratch internetwork
simulator, together with the five prior mobile-IP protocols the paper
compares against.

Quick start::

    from repro import build_figure1

    topo = build_figure1()          # the paper's Figure 1 internetwork
    topo.m.attach(topo.net_d)       # M roams to the wireless cell at R4
    topo.sim.run(until=5.0)
    topo.s.ping(topo.m.home_address)  # S reaches M's *home* address
    topo.sim.run(until=10.0)

Layers (importable subpackages):

- :mod:`repro.netsim`    — deterministic discrete-event engine
- :mod:`repro.link`      — LANs, point-to-point links, wireless cells
- :mod:`repro.ip`        — IPv4, ICMP, ARP, routing, forwarding nodes
- :mod:`repro.transport` — UDP and a simplified reliable TCP
- :mod:`repro.core`      — MHRP itself (the paper's contribution)
- :mod:`repro.baselines` — Sunshine–Postel, Columbia, Sony VIP,
  Matsushita, IBM LSRR
- :mod:`repro.workloads` — topologies, mobility models, traffic
- :mod:`repro.metrics`   — measurement and report rendering
"""

from repro.core import (
    CacheAgent,
    ForeignAgent,
    HomeAgent,
    MHRPHeader,
    MobileHost,
    make_agent_router,
)
from repro.ip import Host, IPAddress, IPNetwork, IPPacket, Router
from repro.link import LAN, PointToPointLink, WirelessCell
from repro.netsim import Simulator
from repro.workloads import build_campus, build_figure1

__version__ = "1.0.0"

__all__ = [
    "CacheAgent",
    "ForeignAgent",
    "HomeAgent",
    "Host",
    "IPAddress",
    "IPNetwork",
    "IPPacket",
    "LAN",
    "MHRPHeader",
    "MobileHost",
    "PointToPointLink",
    "Router",
    "Simulator",
    "WirelessCell",
    "build_campus",
    "build_figure1",
    "make_agent_router",
    "__version__",
]
