"""Small statistics helpers (no numpy needed for these)."""

from __future__ import annotations

from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by nearest-rank; 0.0 if empty."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = max(1, round(p / 100 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean/min/median/p95/max in one dict (all 0.0 if empty)."""
    return {
        "mean": mean(values),
        "min": min(values) if values else 0.0,
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "max": max(values) if values else 0.0,
    }
