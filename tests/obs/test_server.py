"""MetricsServer: the loopback HTTP exposition endpoint and its
matching scrape client."""

import asyncio
import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.server import MetricsServer, scrape


def _registry():
    registry = MetricsRegistry()
    registry.counter("events", "events", category="mhrp.tunnel").inc(7)
    registry.gauge("drift").set(0.5)
    return registry


def _roundtrip(path):
    async def go():
        server = MetricsServer(_registry())
        port = await server.start()
        try:
            return await scrape(port, path=path)
        finally:
            await server.stop()

    return asyncio.run(go())


def test_metrics_path_serves_prometheus_text():
    body = _roundtrip("/metrics")
    assert 'repro_events{category="mhrp.tunnel"} 7' in body
    assert "# TYPE repro_drift gauge" in body


def test_metrics_json_path_serves_snapshot():
    body = _roundtrip("/metrics.json")
    snapshot = json.loads(body)
    assert snapshot["counters"]["events{category=mhrp.tunnel}"] == 7


def test_healthz():
    assert _roundtrip("/healthz").strip() == "ok"


def test_unknown_path_is_an_error():
    with pytest.raises(RuntimeError, match="404"):
        _roundtrip("/nope")


def test_provider_callable_form_sees_registry_swaps():
    async def go():
        registries = [_registry()]
        server = MetricsServer(lambda: registries[0])
        port = await server.start()
        try:
            before = await scrape(port)
            replacement = MetricsRegistry()
            replacement.counter("events", category="mhrp.tunnel").inc(1)
            registries[0] = replacement
            after = await scrape(port)
        finally:
            await server.stop()
        return before, after

    before, after = asyncio.run(go())
    assert "} 7" in before and "} 1" in after


def test_serves_while_a_live_run_is_in_flight():
    """The CI live-smoke shape: scrape mid-run, counters non-empty."""
    from repro.obs import ObsPlane
    from repro.live.backend import LiveRun
    from repro.wire.conformance import figure1_walkthrough_spec

    obs = ObsPlane()
    run = LiveRun(
        figure1_walkthrough_spec(), speed=40.0, obs=obs, serve_metrics=True
    )

    async def go():
        async def mid_run_scrape():
            while run.metrics_port is None:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.5 * run.horizon / run.speed)
            return await scrape(run.metrics_port)

        scraper = asyncio.ensure_future(mid_run_scrape())
        await run.main()
        return await scraper

    body = asyncio.run(go())
    assert "repro_obs_events_total" in body
    assert "repro_live_datagrams_total" in body
    assert run._metrics_server.requests_served >= 1
