#!/usr/bin/env python3
"""Quickstart: the paper's Section 6 walkthrough on the Figure 1 topology.

Runs, narrated, the exact sequence of examples from the paper:

  6.1  the initial packet to a mobile host (triangle via the home agent)
  6.2  subsequent packets (the sender caches and tunnels directly)
  6.3  the host moves again (forwarding pointer + cache correction),
       then returns home (zero registration ends all MHRP overhead)

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_figure1


def main() -> None:
    topo = build_figure1()
    sim, s, m = topo.sim, topo.s, topo.m

    replies = []
    s.on_icmp(0, lambda packet, message: replies.append(sim.now))

    def ping_and_report(label: str) -> None:
        sent_at = sim.now
        count_before = len(replies)
        s.ping(m.home_address)
        sim.run(until=sim.now + 5.0)
        if len(replies) > count_before:
            rtt_ms = (replies[-1] - sent_at) * 1000
            print(f"  {label}: reply in {rtt_ms:.1f} ms")
        else:
            print(f"  {label}: NO reply")
        cached = s.cache_agent.cache.peek(m.home_address)
        print(f"    S's location cache for M: {cached or '(empty)'}")

    print("== The Figure 1 internetwork ==")
    print(f"  S (stationary sender)     {topo.s.primary_address} on net A")
    print(f"  M (mobile host)           {m.home_address}, home = net B")
    print(f"  R2 (home agent)           {topo.home_agent_address}")
    print(f"  R4, R5 (foreign agents)   {topo.fa4_address}, {topo.fa5_address}")

    print("\n== M starts at home: plain IP, no MHRP anywhere ==")
    m.attach_home(topo.net_b)
    sim.run(until=5.0)
    ping_and_report("ping M at home")

    print("\n== 6.1  M roams to the wireless cell at R4 ==")
    m.attach(topo.net_d)
    sim.run(until=sim.now + 5.0)
    print(f"  home agent database now says: M is at "
          f"{topo.r2_roles.home_agent.database.foreign_agent_of(m.home_address)}")
    ping_and_report("first ping (via home agent, 12-byte tunnel)")

    print("\n== 6.2  subsequent packets tunnel directly (8-byte header) ==")
    ping_and_report("second ping (direct tunnel)")
    intercepted = topo.r2_roles.home_agent.packets_intercepted
    print(f"    packets the home agent had to intercept so far: {intercepted}")

    print("\n== 6.3  M moves on to R5; R4 keeps a forwarding pointer ==")
    m.attach(topo.net_e)
    sim.run(until=sim.now + 5.0)
    pointer = topo.r4_roles.cache_agent.cache.peek(m.home_address)
    print(f"  R4's forwarding pointer for M: {pointer}")
    ping_and_report("ping with stale cache (chained via R4, then corrected)")

    print("\n== 6.3  M returns home; a zero registration clears everything ==")
    m.attach_home(topo.net_b)
    sim.run(until=sim.now + 5.0)
    ping_and_report("ping after return (stale tunnel, M corrects the sender)")
    ping_and_report("final ping (plain IP again)")

    tunnels = sim.tracer.count("mhrp.tunnel")
    updates = sim.tracer.count("mhrp.update")
    print(f"\nTotals: {tunnels} tunnel events, {updates} location-update events, "
          f"{sim.events_processed} simulator events.")


if __name__ == "__main__":
    main()
