"""E1 + A2 — routing stretch: triangle elimination by caching
(paper Sections 6.1–6.2).

Claim: the *first* packet to an away mobile host detours through the
home network; the home agent's location update then lets the sender
tunnel straight to the foreign agent, so every later packet takes the
direct path.  With caching disabled (A2 ablation) every packet pays the
triangle forever — caching is purely an optimization, never needed for
correctness.

Compared against the baselines with no sender-side optimization
(Columbia in-campus, Matsushita forwarding mode), whose triangle is
permanent by design.
"""

from __future__ import annotations

from repro.baselines.columbia import ColumbiaScenario
from repro.baselines.matsushita import MatsushitaScenario
from repro.baselines.mhrp_scenario import MHRPScenario
from repro.metrics import Table


def run_sequence(scenario, packets=6, cell=0):
    scenario.move_to_cell(cell)
    scenario.settle()
    for _ in range(packets):
        scenario.send_packet()
        scenario.settle(3.0)
    return scenario.stats


def build_stretch_tables():
    per_packet = Table(
        "E1  Router hops per packet (packet #1 is the first after the move)",
        ["protocol", "#1", "#2", "#3", "#4", "#5", "#6"],
    )
    results = {}
    for label, scenario, cell in [
        ("MHRP (sender caches)", MHRPScenario(n_cells=2, sender_caches=True), 0),
        ("MHRP (caching off)", MHRPScenario(n_cells=2, sender_caches=False), 0),
        ("Columbia", ColumbiaScenario(n_cells=2), 1),
        ("Matsushita fwd-mode", MatsushitaScenario(n_cells=2, autonomous=False), 0),
    ]:
        stats = run_sequence(scenario, cell=cell)
        assert stats.delivery_ratio == 1.0, label
        results[label] = stats.hop_counts
        per_packet.add_row(label, *stats.hop_counts)

    summary = Table(
        "E1/A2  Stretch summary (first packet vs steady state)",
        ["protocol", "first", "steady", "triangle eliminated?"],
    )
    for label, hops in results.items():
        summary.add_row(
            label, hops[0], hops[-1], "yes" if hops[-1] < hops[0] else "no"
        )
    return per_packet, summary, results


def test_routing_stretch(benchmark, record):
    per_packet, summary, results = benchmark.pedantic(
        build_stretch_tables, rounds=1, iterations=1
    )
    record("E1_routing_stretch", per_packet, summary)
    caching = results["MHRP (sender caches)"]
    no_caching = results["MHRP (caching off)"]
    # The triangle disappears after exactly one packet with caching...
    assert caching[0] > caching[1]
    assert all(h == caching[1] for h in caching[1:])
    # ...and never without it (but correctness is unaffected).
    assert all(h == no_caching[0] for h in no_caching)
    # Columbia and Matsushita forwarding mode keep their triangles.
    assert all(h == results["Columbia"][0] for h in results["Columbia"])
    assert all(
        h == results["Matsushita fwd-mode"][0]
        for h in results["Matsushita fwd-mode"]
    )
    # MHRP steady state is the shortest path of the lot.
    assert caching[-1] <= min(r[-1] for r in results.values())
