"""Event and event-queue primitives.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a global
insertion counter.  Two events scheduled for the same instant therefore
fire in the order they were scheduled, which keeps simulations
deterministic and makes protocol races reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        sequence: global insertion counter used as a tiebreak.
        action: zero-argument callable invoked when the event fires.
        label: optional human-readable description used in traces.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} #{self.sequence}{label}{state}>"


#: Compaction trigger: at least this many cancelled events must be
#: pending before a compaction is considered at all.
COMPACT_MIN_CANCELLED = 64

#: ...and cancelled events must make up at least this fraction of the
#: heap.  Together the two bounds amortize compaction to O(1) per cancel.
COMPACT_MIN_FRACTION = 0.5


class EventQueue:
    """A priority queue of :class:`Event` objects.

    The queue assigns the insertion sequence number itself so callers can
    never violate the FIFO-among-ties invariant.

    Cancelled events are discarded lazily on :meth:`pop`, which keeps
    :meth:`Event.cancel` O(1) — but a long run that keeps restarting
    :class:`~repro.netsim.simulator.Timer`\\ s far in the future (ARP
    timeouts, registration retries) would otherwise accumulate cancelled
    events without bound.  :meth:`note_cancelled` therefore triggers a
    **compaction** (filter + re-heapify, O(n)) once cancelled events are
    both numerous (:data:`COMPACT_MIN_CANCELLED`) and a majority of the
    heap (:data:`COMPACT_MIN_FRACTION`).  Event order is untouched:
    ordering is the total order ``(time, sequence)``, independent of the
    heap's internal layout.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        #: Estimate of cancelled events still sitting in the heap.
        self._cancelled_pending = 0
        #: Number of compaction passes run (observability for tests).
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        event = Event(time=time, sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None`` if empty.

        Cancelled events are lazily discarded here rather than removed from
        the heap at cancel time, keeping :meth:`Event.cancel` O(1).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                continue
            self._live -= 1
            return event
        self._live = 0
        self._cancelled_pending = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            if self._cancelled_pending > 0:
                self._cancelled_pending -= 1
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Inform the queue that one pushed event was cancelled.

        Called by the simulator so ``len()`` stays an upper bound that
        converges to the true count; exactness is restored lazily by
        :meth:`pop`/:meth:`peek_time`.  Also drives the compaction
        heuristic (see the class docstring).
        """
        if self._live > 0:
            self._live -= 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= COMPACT_MIN_CANCELLED
            and self._cancelled_pending >= len(self._heap) * COMPACT_MIN_FRACTION
        ):
            self.compact()

    @property
    def cancelled_pending(self) -> int:
        """Estimated cancelled events still occupying heap slots."""
        return self._cancelled_pending

    @property
    def heap_size(self) -> int:
        """Physical heap size including not-yet-discarded cancelled events."""
        return len(self._heap)

    def compact(self) -> None:
        """Drop every cancelled event from the heap now (O(n))."""
        if self._cancelled_pending == 0:
            return
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self.compactions += 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Snapshot contract
    # ------------------------------------------------------------------
    @property
    def sequence(self) -> int:
        """The next sequence number this queue would assign."""
        return self._counter.__reduce__()[1][0]

    def state_dict(self) -> dict:
        """JSON-able *diagnostic* state: the queue's counters, never its
        callables.  Pending events ride a deepcopy of the whole graph in
        session snapshots (see :mod:`repro.scenario.session`); this dict
        exists so restored-vs-cold runs can be diffed field by field.
        """
        return {
            "pending": self._live,
            "heap_size": len(self._heap),
            "cancelled_pending": self._cancelled_pending,
            "compactions": self.compactions,
            "sequence": self.sequence,
        }
