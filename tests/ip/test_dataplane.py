"""Unit tests for the dataplane pipeline's per-stage counters.

The forwarding behaviour itself is covered by test_node_forwarding.py;
these tests pin the *accounting* contract: which stage increments which
counter, and under which drop reason packets die.
"""

import pytest

from repro.ip.dataplane import STAGES, DataplaneCounters
from repro.ip.packet import IPPacket
from repro.ip.protocols import UDP


class TestFlowCounters:
    def test_end_to_end_flow_accounting(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        b.register_protocol(UDP, lambda p, i: None)
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
        sim.run_until_idle()
        # A originated one data packet (plus ARP traffic below IP).
        assert a.dataplane.counters.originated == 1
        assert a.dataplane.counters.tx >= 1
        # The router forwarded it: rx on ingress, forwarded on ttl-route,
        # tx on egress.
        assert r.dataplane.counters.rx >= 1
        assert r.dataplane.counters.forwarded == 1
        assert r.dataplane.counters.tx >= 1
        # B delivered it up the stack.
        assert b.dataplane.counters.rx >= 1
        assert b.dataplane.counters.delivered == 1
        assert b.dataplane.counters.dropped_total == 0

    def test_legacy_counter_properties_mirror_dataplane(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        b.register_protocol(UDP, lambda p, i: None)
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
        sim.run_until_idle()
        assert a.packets_sent == a.dataplane.counters.originated
        assert r.packets_forwarded == r.dataplane.counters.forwarded
        assert b.packets_delivered == b.dataplane.counters.delivered


class TestDropReasons:
    def test_ttl_expiry_counts_dropped_and_icmp(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP, ttl=1))
        sim.run_until_idle()
        assert r.dataplane.counters.dropped.get("ttl-expired") == 1
        assert r.dataplane.counters.icmp_sent >= 1
        assert r.dataplane.counters.forwarded == 0

    def test_no_route_counts_dropped(self, two_lans_one_router):
        sim, a, r, b, net_a, net_b = two_lans_one_router
        a.send(IPPacket(src=net_a.host(1), dst="203.0.113.1", protocol=UDP))
        sim.run_until_idle()
        assert r.dataplane.counters.dropped.get("no-route") == 1

    def test_host_counts_transit_as_not_a_router(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        packet = IPPacket(src=net.host(1), dst="99.0.0.1", protocol=UDP)
        b.packet_received(packet, b.interfaces["eth0"])
        assert b.dataplane.counters.dropped == {"not-a-router": 1}
        assert b.dataplane.counters.dropped_total == 1

    def test_unknown_protocol_counts_at_local_delivery(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        a.send(IPPacket(src=net.host(1), dst=net.host(2), protocol=123))
        sim.run_until_idle()
        assert b.dataplane.counters.dropped.get("protocol-unreachable") == 1
        # ...and the delivered counter still ticks: the packet reached
        # local delivery before the protocol lookup failed.
        assert b.dataplane.counters.delivered == 1


class TestCountersObject:
    def test_snapshot_expands_drop_reasons(self):
        counters = DataplaneCounters()
        counters.rx = 3
        counters.note_drop("ttl-expired")
        counters.note_drop("ttl-expired")
        counters.note_drop("no-route")
        snap = counters.snapshot()
        assert snap["rx"] == 3
        assert snap["dropped[ttl-expired]"] == 2
        assert snap["dropped[no-route]"] == 1
        assert snap["dropped_total"] == 3

    def test_clear_resets_everything(self):
        counters = DataplaneCounters()
        counters.tx = 5
        counters.note_drop("no-route")
        counters.clear()
        assert counters.tx == 0
        assert counters.dropped == {}
        assert counters.dropped_total == 0

    def test_every_counter_maps_to_a_known_stage(self):
        stages = set(STAGES) | {"hooks", "*"}
        assert set(DataplaneCounters.STAGE_OF.values()) <= stages


class TestHookRegistration:
    def test_unknown_stage_rejected(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        with pytest.raises(ValueError):
            a.dataplane.register("egress", lambda p: None)

    def test_hook_names_reflect_registration_order(self, two_hosts_one_lan):
        sim, lan, a, b, net = two_hosts_one_lan
        a.dataplane.register("outbound", lambda p: None, name="first")
        a.dataplane.register("outbound", lambda p: None, name="second")
        assert a.dataplane.hook_names("outbound") == ("first", "second")
