"""The sharded sweep executor.

Cells fan out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``--jobs N``) or run serially (``jobs<=1`` — also the fallback when a
pool cannot be created).  Every worker rebuilds its scenario from the
spec — cell function, parameters, seed — so a parallel sweep produces
*exactly* the results of a serial one, in a deterministic order, no
matter how cells land on workers.

Failure containment:

- a cell function that raises records a failed :class:`CellResult`
  instead of killing the sweep;
- a cell that overruns the per-cell timeout is recorded as timed out
  (SIGALRM-based, skipped on platforms without it; specs that spawn
  nested worker pools set ``cooperative_timeout`` and get a polled
  deadline instead — see :mod:`repro.harness.deadline`);
- failed cells are never cached, so the next run retries them.
"""

from __future__ import annotations

import importlib
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.harness.spec import Cell, ExperimentSpec, canonical_json
from repro.harness.store import ResultStore

#: Results with these statuses are cacheable / usable for aggregation.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class CellResult:
    """Outcome of one cell execution (or cache hit)."""

    experiment: str
    params: Dict[str, Any]
    seed: int
    hash: str
    status: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    duration: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_record(self) -> dict:
        return {
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.seed,
            "hash": self.hash,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "duration": self.duration,
        }

    @classmethod
    def from_record(cls, record: dict, cached: bool = False) -> "CellResult":
        return cls(
            experiment=record["experiment"],
            params=dict(record["params"]),
            seed=record["seed"],
            hash=record["hash"],
            status=record.get("status", STATUS_ERROR),
            metrics=dict(record.get("metrics") or {}),
            error=record.get("error"),
            duration=record.get("duration", 0.0),
            cached=cached,
        )


@dataclass
class SweepReport:
    """Everything a sweep produced, in deterministic (spec) cell order."""

    experiment: str
    results: List[CellResult]
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    #: Warm-start cache counters (checkpoints built, forks served,
    #: warm-up events run/saved); ``None`` unless the sweep ran with
    #: ``warm_start=True`` in-process (``jobs<=1``).
    warm_stats: Optional[Dict[str, int]] = None

    @property
    def failures(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def cache_hit_rate(self) -> float:
        total = len(self.results)
        return self.cached / total if total else 0.0

    def find(self, seed: Optional[int] = None, **params: Any) -> CellResult:
        """The first result matching the given parameter subset."""
        for result in self.results:
            if seed is not None and result.seed != seed:
                continue
            if all(result.params.get(k) == v for k, v in params.items()):
                return result
        raise KeyError(f"no result matching {params!r} seed={seed!r}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _CellTimeout(Exception):
    pass


def resolve_cell_fn(path: str) -> Callable[..., Dict[str, Any]]:
    """Import ``package.module:function`` (``:`` preferred, last ``.``
    accepted) and return the callable."""
    if ":" in path:
        module_name, attr = path.split(":", 1)
    else:
        module_name, attr = path.rsplit(".", 1)
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ImportError(f"{module_name!r} has no attribute {attr!r}") from None


def _check_metrics(metrics: Any) -> Dict[str, Any]:
    if not isinstance(metrics, dict):
        raise TypeError(f"cell function returned {type(metrics).__name__}, not dict")
    for name, value in metrics.items():
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            raise TypeError(f"metric {name!r} has non-scalar value {value!r}")
    return metrics


def execute_cell(
    experiment: str,
    cell_fn: str,
    params: Dict[str, Any],
    seed: int,
    cell_hash: str,
    timeout: Optional[float] = None,
    warm: bool = False,
    cooperative: bool = False,
) -> dict:
    """Run one cell in the current process; never raises.

    Module-level (picklable) so a process pool can ship it to workers.
    The per-cell timeout uses ``SIGALRM`` where available — inside pool
    workers the task runs on the process's main thread, so the alarm is
    deliverable; elsewhere (non-main thread, non-POSIX) it degrades to
    no timeout rather than failing.

    ``cooperative=True`` swaps the alarm for a polled wall-clock
    deadline (:mod:`repro.harness.deadline`): the cell's execution
    kernel calls :func:`repro.harness.deadline.check` at its own safe
    points and we translate :class:`DeadlineExceeded` into a timeout
    result.  This is the only sound option for cells that run nested
    worker pools (the partitioned backend): a SIGALRM would fire in the
    parent while the work is in children, and an alarm inherited across
    ``fork`` can interrupt multiprocessing internals mid-lock.

    ``warm`` toggles the per-process scenario warm-start cache for the
    duration of the call.  Neither it nor ``cooperative`` enters the
    cell hash: both modes produce byte-identical results, so they must
    share cache entries.
    """
    from repro.harness import deadline as _deadline

    start = time.perf_counter()
    result = {
        "experiment": experiment,
        "params": params,
        "seed": seed,
        "hash": cell_hash,
        "status": STATUS_OK,
        "metrics": {},
        "error": None,
        "duration": 0.0,
    }
    alarm_armed = False
    try:
        from repro.scenario import warmstart

        warmstart.configure(warm)
        fn = resolve_cell_fn(cell_fn)
        if timeout and cooperative:
            _deadline.set_deadline(timeout)
        elif timeout and hasattr(signal, "SIGALRM"):
            def _on_alarm(signum, frame):
                raise _CellTimeout()

            try:
                signal.signal(signal.SIGALRM, _on_alarm)
                signal.setitimer(signal.ITIMER_REAL, timeout)
                alarm_armed = True
            except ValueError:  # not the main thread
                alarm_armed = False
        result["metrics"] = _check_metrics(fn(seed=seed, **params))
    except (_CellTimeout, _deadline.DeadlineExceeded):
        result["status"] = STATUS_TIMEOUT
        result["error"] = f"cell exceeded {timeout}s timeout"
    except BaseException as exc:  # crash isolation: the sweep survives
        result["status"] = STATUS_ERROR
        tail = traceback.format_exc(limit=4)
        result["error"] = f"{type(exc).__name__}: {exc}\n{tail}"
    finally:
        _deadline.clear_deadline()
        if alarm_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, signal.SIG_DFL)
    result["duration"] = time.perf_counter() - start
    return result


def _execute_packed(packed: tuple) -> dict:
    return execute_cell(*packed)


# ----------------------------------------------------------------------
# Orchestrator side
# ----------------------------------------------------------------------
def run_sweep(
    spec: ExperimentSpec,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    timeout: Optional[float] = None,
    quick: bool = False,
    progress: Optional[Callable[[CellResult], None]] = None,
    warm_start: bool = False,
) -> SweepReport:
    """Execute every cell of ``spec`` and return a :class:`SweepReport`.

    Args:
        jobs: worker processes; ``<=1`` runs serially in-process.
        store: result cache; ``None`` disables persistence entirely.
        use_cache: when False, cached results are ignored (but fresh
            results are still written back to ``store``).
        timeout: per-cell wall-clock budget in seconds.
        quick: sweep the spec's reduced CI grid instead of the full one.
        progress: called with each :class:`CellResult` as it lands
            (execution order, not deterministic under ``jobs>1``).
        warm_start: enable the scenario checkpoint cache, letting cells
            that share a warm-up prefix fork one snapshot instead of
            replaying it (results are unchanged — only the wall clock).
            The cache is per process, so ``jobs=1`` shares best.

    The returned report lists results in spec order regardless of
    ``jobs``, so aggregation output is byte-identical for any job count.
    """
    started = time.perf_counter()
    if warm_start:
        from repro.scenario import warmstart

        # Each sweep gets a fresh cache: predictable memory, and the
        # reported stats describe exactly this sweep.
        warmstart.clear()
    cells = spec.cells(quick=quick)
    cached_records = store.load(spec.name) if store is not None else {}

    results: Dict[str, CellResult] = {}
    pending: List[Cell] = []
    for cell in cells:
        key = cell.content_hash()
        record = cached_records.get(key) if use_cache else None
        if record is not None:
            result = CellResult.from_record(record, cached=True)
            results[key] = result
            if progress:
                progress(result)
        else:
            pending.append(cell)

    def _payload(cell: Cell) -> tuple:
        return (
            spec.name,
            cell.cell_fn,
            cell.params_dict,
            cell.seed,
            cell.content_hash(),
            timeout,
            warm_start,
            spec.cooperative_timeout,
        )

    def _land(record: dict) -> None:
        result = CellResult.from_record(record)
        results[result.hash] = result
        if progress:
            progress(result)

    if pending and jobs > 1:
        try:
            pool = ProcessPoolExecutor(max_workers=jobs)
        except (OSError, ValueError):  # no fork/sem support: fall back
            pool = None
        if pool is not None:
            with pool:
                futures = {
                    pool.submit(_execute_packed, _payload(cell)): cell
                    for cell in pending
                }
                for future, cell in futures.items():
                    try:
                        _land(future.result())
                    except BaseException as exc:  # worker died hard
                        _land(
                            {
                                "experiment": spec.name,
                                "params": cell.params_dict,
                                "seed": cell.seed,
                                "hash": cell.content_hash(),
                                "status": STATUS_ERROR,
                                "metrics": {},
                                "error": f"worker failure: {exc!r}",
                                "duration": 0.0,
                            }
                        )
        else:
            jobs = 1
    if pending and jobs <= 1:
        for cell in pending:
            if cell.content_hash() in results:
                continue
            _land(execute_cell(*_payload(cell)))

    if store is not None:
        merged = dict(cached_records)
        fresh = False
        for key, result in results.items():
            if result.ok and not result.cached:
                merged[key] = result.to_record()
                fresh = True
        if fresh or not use_cache:
            store.save(spec.name, merged)

    warm_stats = None
    if warm_start and jobs <= 1:
        from repro.scenario import warmstart

        warm_stats = warmstart.stats()
        # The cache is sweep-scoped: drop the snapshots and leave the
        # process configured cold for whatever runs next.
        warmstart.configure(False)
        warmstart.clear()

    ordered = [results[c.content_hash()] for c in cells]
    return SweepReport(
        experiment=spec.name,
        results=ordered,
        executed=len(pending),
        cached=len(cells) - len(pending),
        wall_seconds=time.perf_counter() - started,
        jobs=max(jobs, 1),
        warm_stats=warm_stats,
    )


def group_key(result: CellResult) -> str:
    """Canonical grouping key: the cell's parameters without the seed."""
    return canonical_json(result.params)
