"""Instantiate a spec's ``topology`` dict into live simulation objects.

:func:`build_world` is the single dispatch point between declarative
topology descriptions and the imperative builders in
:mod:`repro.workloads.topology` and :mod:`repro.baselines.startopo`.
The returned :class:`World` presents every shape through one vocabulary
— a home medium, an ordered cell list, mobile hosts, correspondents,
and named fault targets — which is what lets one session kernel drive
Figure-1 walkthroughs, campus fuzz scenarios, and the comparison star
alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.netsim.simulator import Simulator


@dataclass
class World:
    """A built topology, normalized for the session kernel.

    ``cells[i]`` is the medium a ``move`` entry with ``to == i``
    attaches to; ``fault_nodes[name]`` is the node a ``fault`` entry
    crashes or reboots; ``nodes`` is the roster instruments observe.
    """

    sim: Simulator
    kind: str
    #: The underlying builder's topology object, for shape-specific access.
    topo: object
    home_medium: object
    cells: List[object] = field(default_factory=list)
    mobile_hosts: List[object] = field(default_factory=list)
    correspondents: List[object] = field(default_factory=list)
    fault_nodes: Dict[str, object] = field(default_factory=dict)
    nodes: List[object] = field(default_factory=list)
    home_roles: Optional[object] = None
    cell_roles: List[object] = field(default_factory=list)


def _build_figure1(sim: Simulator, params: dict) -> World:
    from repro.workloads.topology import build_figure1

    topo = build_figure1(sim=sim, **params)
    routers = [topo.r1, topo.r2, topo.r3, topo.r4, topo.r5]
    return World(
        sim=sim,
        kind="figure1",
        topo=topo,
        home_medium=topo.net_b,
        cells=[topo.net_d, topo.net_e],
        mobile_hosts=[topo.m],
        correspondents=[topo.s],
        fault_nodes={f"R{i + 1}": router for i, router in enumerate(routers)},
        nodes=[topo.s, *routers, topo.m],
        home_roles=topo.r2_roles,
        cell_roles=[topo.r4_roles, topo.r5_roles],
    )


def _build_campus(sim: Simulator, params: dict) -> World:
    from repro.workloads.topology import build_campus

    topo = build_campus(sim=sim, **params)
    fault_nodes: Dict[str, object] = {"HR": topo.home_router}
    for i, router in enumerate(topo.cell_routers):
        fault_nodes[f"FR{i}"] = router
    return World(
        sim=sim,
        kind="campus",
        topo=topo,
        home_medium=topo.home_lan,
        cells=list(topo.cells),
        mobile_hosts=list(topo.mobile_hosts),
        correspondents=list(topo.correspondents),
        fault_nodes=fault_nodes,
        nodes=[
            topo.home_router,
            *topo.cell_routers,
            *topo.correspondents,
            *topo.mobile_hosts,
        ],
        home_roles=topo.home_roles,
        cell_roles=list(topo.cell_roles),
    )


def _build_star(sim: Simulator, params: dict) -> World:
    """The comparison star: shared by every baseline-protocol scenario.

    Always builds the star routers plus the correspondent host ``C``
    (the wiring previously copy-pasted across all six scenarios).  With
    ``mhrp=True`` it also attaches the paper's agent roles to every
    router and creates the mobile host ``M`` — the MHRP half the campus
    and Figure-1 builders already know how to wire.  Baselines running a
    *different* protocol pass ``mhrp=False`` and attach their own roles
    and mobile client to the returned world.
    """
    from repro.baselines.startopo import build_star
    from repro.ip.host import Host

    params = dict(params)
    n_cells = int(params.pop("n_cells", 3))
    mhrp = bool(params.pop("mhrp", False))
    sender_caches = bool(params.pop("sender_caches", False))
    lan_latency = params.pop("lan_latency", 0.001)
    wireless_latency = params.pop("wireless_latency", 0.003)

    topo = build_star(
        sim, n_cells, lan_latency=lan_latency, wireless_latency=wireless_latency
    )

    if sender_caches:
        from repro.core.mobile_host import StationaryCorrespondent

        correspondent: Host = StationaryCorrespondent(sim, "C")
    else:
        correspondent = Host(sim, "C")
    correspondent.add_interface(
        "eth0", topo.correspondent_address, topo.corr_net, medium=topo.corr_lan
    )
    correspondent.set_gateway(topo.corr_net.host(254))

    world = World(
        sim=sim,
        kind="star",
        topo=topo,
        home_medium=topo.home_lan,
        cells=list(topo.cells),
        correspondents=[correspondent],
        fault_nodes={
            "HR": topo.home_router,
            **{f"FR{i}": r for i, r in enumerate(topo.cell_routers)},
        },
        nodes=[correspondent, topo.home_router, *topo.cell_routers],
    )

    if mhrp:
        from repro.core.agent_router import make_agent_router
        from repro.core.mobile_host import MobileHost

        world.home_roles = make_agent_router(
            topo.home_router, home_iface="lan", **params
        )
        world.cell_roles = [
            make_agent_router(router, foreign_iface="cell", **params)
            for router in topo.cell_routers
        ]
        mobile = MobileHost(
            sim,
            "M",
            home_address=topo.mobile_home_address,
            home_network=topo.home_net,
            home_agent=topo.home_net.host(254),
        )
        world.mobile_hosts = [mobile]
        world.nodes.append(mobile)
    elif params:
        raise ConfigurationError(
            f"unknown star topology parameters: {sorted(params)}"
        )

    return world


_BUILDERS = {
    "figure1": _build_figure1,
    "campus": _build_campus,
    "star": _build_star,
}


def build_world(sim: Simulator, topology: dict) -> World:
    """Build the topology described by a spec's ``topology`` dict."""
    params = dict(topology)
    kind = params.pop("kind", None)
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise ConfigurationError(
            f"unknown topology kind {kind!r} (expected one of {sorted(_BUILDERS)})"
        )
    return builder(sim, params)
