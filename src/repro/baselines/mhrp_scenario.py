"""MHRP running on the comparison star topology.

Not a baseline — this is the paper's protocol packaged behind the same
:class:`~repro.baselines.interface.Scenario` interface as the five
competitors, so the benches run one workload over all six.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.scenario_base import UDPProbeScenario
from repro.baselines.startopo import StarTopology, build_star
from repro.core.agent_router import AgentRouter, make_agent_router
from repro.core.mobile_host import MobileHost, StationaryCorrespondent
from repro.netsim.simulator import Simulator


class MHRPScenario(UDPProbeScenario):
    """The paper's protocol on the star topology."""

    protocol_name = "MHRP"

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        n_cells: int = 3,
        seed: int = 7,
        sender_caches: bool = True,
        **agent_kwargs,
    ) -> None:
        sim = sim or Simulator(seed=seed)
        super().__init__(sim, n_cells)
        self.topo: StarTopology = build_star(sim, n_cells)
        self.home_roles: AgentRouter = make_agent_router(
            self.topo.home_router, home_iface="lan", **agent_kwargs
        )
        self.cell_roles: List[AgentRouter] = [
            make_agent_router(router, foreign_iface="cell", **agent_kwargs)
            for router in self.topo.cell_routers
        ]
        if sender_caches:
            correspondent = StationaryCorrespondent(sim, "C")
        else:
            from repro.ip.host import Host

            correspondent = Host(sim, "C")
        correspondent.add_interface(
            "eth0", self.topo.correspondent_address, self.topo.corr_net,
            medium=self.topo.corr_lan,
        )
        correspondent.set_gateway(self.topo.corr_net.host(254))
        self.mobile = MobileHost(
            sim,
            "M",
            home_address=self.topo.mobile_home_address,
            home_network=self.topo.home_net,
            home_agent=self.topo.home_net.host(254),
        )
        self._init_probe(correspondent, self.mobile, self.topo.mobile_home_address)
        self._control_tracker_base = 0
        sim.tracer.subscribe(self._count_control)

    # ------------------------------------------------------------------
    def _count_control(self, entry) -> None:
        # Registrations and location updates are MHRP's control plane.
        if entry.category in ("mhrp.register", "mhrp.update") and entry.detail.get(
            "event"
        ) in ("send", "sent"):
            self.note_control()

    # ------------------------------------------------------------------
    def move_to_cell(self, index: int) -> None:
        self.mobile.attach(self.topo.cells[index])

    def move_home(self) -> None:
        self.mobile.attach_home(self.topo.home_lan)

    # ------------------------------------------------------------------
    def snapshot_state(self) -> None:
        """Record per-node and global protocol state into the stats."""
        sizes = [len(self.home_roles.home_agent.database)]
        for roles in self.cell_roles:
            sizes.append(len(roles.foreign_agent.visitors))
            sizes.append(len(roles.cache_agent.cache))
        self.stats.max_node_state = max(
            self.stats.max_node_state, max(sizes) if sizes else 0
        )
        self.stats.global_state = 0  # MHRP has no global structure
