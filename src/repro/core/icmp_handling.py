"""Returned ICMP error handling (paper Section 4.5).

When a tunneled packet hits an error, the router that detects it returns
an ICMP error to the packet's current IP *source* — which, inside a
tunnel, is the most recent tunnel head, not the original sender.  MHRP
makes the error "travel back to the sender along the same set of tunnels
that the original packet followed": each tunnel head reverses exactly the
changes it made to the packet quoted inside the error, then resends the
error to the *previous* head (found by popping the last entry of the
MHRP header's previous-source list).  The head that originally built the
header reverses the encapsulation itself, so the original sender finally
receives an error quoting its own unmodified packet.

Each head along the way may also process the error locally — a
"destination unreachable" usually means the path to the *cached* foreign
agent broke, so the head deletes its cache entry (the next packet then
takes a different path).

If the error quotes too little of the packet (less than the full MHRP
header plus 8 bytes), "little can be done ... beyond deleting its cache
entry" — the handler does exactly that.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cache_agent import CacheAgent
from repro.core.encapsulation import MHRPPayload
from repro.ip.address import IPAddress
from repro.ip.icmp import ICMPError, TYPE_DEST_UNREACHABLE
from repro.ip.node import IPNode
from repro.ip.packet import IPPacket
from repro.ip.protocols import MHRP as PROTO_MHRP


class TunnelErrorHandler:
    """Per-node reverse-tunneling of returned ICMP errors.

    One instance per node (see :meth:`attach`); it inspects every inbound
    ICMP error whose quoted packet is MHRP-encapsulated.
    """

    _ATTR = "_mhrp_tunnel_error_handler"

    def __init__(
        self,
        node: IPNode,
        cache_agent: Optional[CacheAgent] = None,
        delete_cache_on_unreachable: bool = True,
    ) -> None:
        self.node = node
        self.cache_agent = cache_agent
        self.delete_cache_on_unreachable = delete_cache_on_unreachable
        self.errors_reversed = 0
        self.errors_unparseable = 0
        node.on_icmp_error(self._on_error)

    @classmethod
    def attach(
        cls, node: IPNode, cache_agent: Optional[CacheAgent] = None
    ) -> "TunnelErrorHandler":
        """The node's handler, created on first use (idempotent)."""
        handler = getattr(node, cls._ATTR, None)
        if handler is None:
            handler = cls(node, cache_agent=cache_agent)
            setattr(node, cls._ATTR, handler)
        elif cache_agent is not None and handler.cache_agent is None:
            handler.cache_agent = cache_agent
        return handler

    # ------------------------------------------------------------------
    def _on_error(self, packet: IPPacket, error: ICMPError) -> None:
        quoted = error.quoted
        if quoted is None or quoted.protocol != PROTO_MHRP:
            return
        payload = quoted.payload
        if not isinstance(payload, MHRPPayload):
            return
        header = payload.header
        mobile_host = header.mobile_host
        if (
            self.delete_cache_on_unreachable
            and error.icmp_type == TYPE_DEST_UNREACHABLE
            and self.cache_agent is not None
        ):
            # Section 4.5: the unreachable node is likely a router on the
            # path to the *cached* location, not the mobile host itself.
            self.cache_agent.cache.delete(mobile_host)
        if not error.quote_covers_mhrp(header.byte_length):
            # Too little of the packet came back to reverse anything.
            self.errors_unparseable += 1
            self.node.sim.trace(
                "mhrp.tunnel",
                self.node.name,
                event="error-unparseable",
                mobile_host=str(mobile_host),
            )
            return
        if not header.previous_sources:
            # We built this header as the original sender: reverse our
            # own encapsulation and let local listeners (transport) see
            # an error about the original packet.
            self._reverse_encapsulation(quoted, original_sender=quoted.src)
            self.errors_reversed += 1
            self._deliver_locally(error)
            return
        popped = header.previous_sources.pop()
        if not header.previous_sources:
            # ``popped`` is the original sender; we were the agent that
            # built the header.  Full reversal, then send the error on to
            # the sender.
            self._reverse_encapsulation(quoted, original_sender=popped)
        else:
            # We were a re-tunneling hop: restore the source we replaced
            # and the destination the packet had when it reached us.
            quoted.src = popped
            quoted.dst = self._own_address(packet)
        self.errors_reversed += 1
        self.node.sim.trace(
            "mhrp.tunnel",
            self.node.name,
            event="error-reversed",
            to=str(popped),
            mobile_host=str(mobile_host),
        )
        resend = ICMPError(
            icmp_type=error.icmp_type,
            code=error.code,
            quoted=quoted,
            quote_full=error.quote_full,
            max_quote=error.max_quote,
        )
        self.node.send_icmp(popped, resend)

    # ------------------------------------------------------------------
    @staticmethod
    def _reverse_encapsulation(quoted: IPPacket, original_sender: IPAddress) -> None:
        payload = quoted.payload
        assert isinstance(payload, MHRPPayload)
        header = payload.header
        quoted.src = original_sender
        quoted.dst = header.mobile_host
        quoted.protocol = header.orig_protocol
        quoted.payload = payload.inner

    def _own_address(self, error_packet: IPPacket) -> IPAddress:
        """The address this node used as tunnel head (where the error was
        addressed)."""
        if self.node.has_address(error_packet.dst):
            return error_packet.dst
        return self.node.primary_address

    def _deliver_locally(self, error: ICMPError) -> None:
        """Re-run local error listeners now that the quote is reversed."""
        for listener in list(self.node._error_listeners):
            if listener is not self._on_error:
                listener_packet = IPPacket(
                    src=self.node.primary_address,
                    dst=self.node.primary_address,
                    protocol=1,
                    payload=error,
                )
                listener(listener_packet, error)
