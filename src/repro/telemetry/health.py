"""The protocol-health hub: streaming metrics for a running simulation.

:class:`ProtocolHealth` is fed from two channels:

- **direct hooks** — the dataplane pipeline and the mobility roles call
  the ``packet_*`` / ``cache_lookup`` / ``mh_moved`` /
  ``registration_complete`` / ``tunnel_delivery`` methods through
  ``sim.telemetry``, which is ``None`` unless a hub is attached, so a
  disabled simulation pays one attribute load per call site (the same
  discipline as :meth:`Tracer.active <repro.netsim.trace.Tracer.active>`).
  These work even when tracing is disabled or restricted.
- **the tracer stream** — a ``Tracer.subscribe`` listener consumes the
  MHRP control-plane events (``mhrp.tunnel``, ``mhrp.loop``) already
  emitted for tests, turning them into tunnel-chain lengths and
  loop-dissolution times.  Listeners see every recorded entry even
  under a ring-buffer bound, so memory stays bounded on long runs.

What the hub measures (the quantities Sections 5 and 7 of the paper
argue about, and the ones the handover-performance literature
evaluates):

- end-to-end **latency** per delivered data packet;
- **hop count** and **path stretch** — actual hops over the current
  shortest path between origin and delivery node (requires ``nodes``
  at :meth:`attach` so the hub can BFS the topology);
- **tunnel-chain length** (tunnel operations per delivered packet) and
  the **previous-source-list length** observed at delivery;
- handoff **blackout**: last data delivery to a mobile host before a
  move → first data delivery after it;
- **registration latency** (connect sent → connect acknowledged);
- **loop-dissolution time** (first re-tunnel → ``mhrp.loop`` dissolve);
- cache hit/miss ratio, plus sent/forwarded/delivered/dropped counts
  and a per-second delivery time series.

Control traffic — MHRP tunnels in flight, registration messages,
location updates, agent discovery, ICMP errors — is excluded from the
data-packet distributions and counted separately.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

from repro.ip.icmp import ICMPError, LocationUpdate, RouterAdvertisement, RouterSolicitation
from repro.ip.packet import IPPacket
from repro.ip.protocols import MHRP as PROTO_MHRP
from repro.ip.protocols import MOBILE_CONTROL
from repro.netsim.trace import TraceEntry
from repro.telemetry.instruments import Counter, Histogram, TimeSeries
from repro.telemetry.journeys import JourneyIndex

#: ``mhrp.tunnel`` events that put (or keep) a packet inside a tunnel.
ENCAP_EVENTS = frozenset({
    "sender-encapsulate",
    "agent-encapsulate",
    "home-intercept",
    "home-retunnel",
    "fa-retunnel",
})

#: ICMP payload types that are control traffic, not application data.
_CONTROL_PAYLOADS = (LocationUpdate, RouterAdvertisement, RouterSolicitation, ICMPError)


class _Flight:
    """Per-packet in-flight record, created at origination."""

    __slots__ = ("t_sent", "origin", "forwards", "tunnels", "first_retunnel",
                 "endpoint_hops", "last_endpoint")

    def __init__(self, t_sent: float, origin: str) -> None:
        self.t_sent = t_sent
        self.origin = origin
        self.forwards = 0
        self.tunnels = 0
        self.first_retunnel: Optional[float] = None
        # Tunnel-endpoint deliveries (an agent receiving an MHRP packet
        # retransmits it on one more link that never passes forward()).
        self.endpoint_hops = 0
        self.last_endpoint: Optional[str] = None


class ProtocolHealth:
    """Streaming protocol-health telemetry for one simulator.

    Typical use::

        hub = sim.attach(ProtocolHealth(), nodes=all_nodes)
        ... run the scenario ...
        print(hub.render("my scenario"))
        summary = hub.summary()          # flat dict for sweeps / JSON

    ``nodes`` enables path-stretch measurement (the hub BFSes the
    node/medium graph for shortest paths, re-deriving it after every
    mobile-host move).  Without it every other metric still works.
    """

    def __init__(
        self,
        max_inflight: int = 65536,
        max_completed_journeys: Optional[int] = 4096,
        journey_index: bool = True,
        delivery_bin: float = 1.0,
    ) -> None:
        self.max_inflight = max_inflight
        # Distributions.
        self.latency = Histogram()
        self.hop_count = Histogram()
        self.stretch = Histogram()
        self.tunnel_chain = Histogram()
        self.prev_sources = Histogram()
        self.blackout = Histogram()
        self.registration_latency = Histogram()
        self.loop_dissolution = Histogram()
        # Counters.
        self.sent = Counter()
        self.forwarded = Counter()
        self.delivered = Counter()
        self.control_delivered = Counter()
        self.dropped: Dict[str, int] = {}
        self.dropped_total = Counter()
        self.cache_hits = Counter()
        self.cache_misses = Counter()
        self.moves = Counter()
        self.registrations = Counter()
        self.loops_dissolved = Counter()
        self.deliveries_per_bin = TimeSeries(bin_width=delivery_bin)
        # Streaming state.
        self._inflight: "OrderedDict[int, _Flight]" = OrderedDict()
        self.inflight_evicted = 0
        self._last_delivery: Dict[str, float] = {}
        self._pending_blackout: Dict[str, float] = {}
        self.index: Optional[JourneyIndex] = (
            JourneyIndex(max_completed=max_completed_journeys) if journey_index else None
        )
        self.sim = None
        self._nodes: Optional[list] = None
        self._dist_cache: Dict[Tuple[str, str], Optional[int]] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    #: Role attribute this instrument occupies on the simulator.
    instrument_role = "telemetry"

    def attach(self, sim, nodes: Optional[list] = None, subscribe_trace: bool = True) -> "ProtocolHealth":
        """Install this hub on ``sim`` (as ``sim.telemetry``) and, by
        default, subscribe to its tracer for the control-plane stream.

        Thin shim over :meth:`Simulator.attach
        <repro.netsim.simulator.Simulator.attach>`, kept for callers that
        read more naturally instrument-first.
        """
        sim.attach(self, nodes=nodes, subscribe_trace=subscribe_trace)
        return self

    def bind(self, sim, nodes: Optional[list] = None, subscribe_trace: bool = True) -> None:
        """Instrument-registry hook: wire listeners into ``sim``."""
        self.sim = sim
        if nodes is not None:
            self._nodes = list(nodes)
        self._subscribed = subscribe_trace
        if subscribe_trace:
            sim.tracer.subscribe(self._on_trace)
            if self.index is not None:
                self.index.attach(sim.tracer, replay=True)

    def unbind(self, sim) -> None:
        """Instrument-registry hook: withdraw the tracer listeners."""
        if getattr(self, "_subscribed", False):
            sim.tracer.unsubscribe(self._on_trace)
            if self.index is not None:
                sim.tracer.unsubscribe(self.index.observe)
        self._subscribed = False
        self.sim = None

    # ------------------------------------------------------------------
    # Direct dataplane hooks (called through sim.telemetry)
    # ------------------------------------------------------------------
    def packet_sent(self, t: float, node: str, packet: IPPacket) -> None:
        self.sent.inc()
        self._inflight[packet.uid] = _Flight(t, node)
        while len(self._inflight) > self.max_inflight:
            self._inflight.popitem(last=False)
            self.inflight_evicted += 1

    def packet_forwarded(self, t: float, node: str, packet: IPPacket) -> None:
        self.forwarded.inc()
        flight = self._inflight.get(packet.uid)
        if flight is not None:
            flight.forwards += 1

    def packet_delivered(self, t: float, node: str, packet: IPPacket) -> None:
        proto = packet.protocol
        if proto == PROTO_MHRP:
            # A tunnel endpoint: the agent will decapsulate (or
            # re-tunnel) and push the packet out on another link, a hop
            # forward() never sees — unless the endpoint is the mobile
            # host itself, which delivers to itself in place.
            flight = self._inflight.get(packet.uid)
            if flight is not None:
                flight.endpoint_hops += 1
                flight.last_endpoint = node
            return
        if proto == MOBILE_CONTROL:
            # Registration machinery: pure control, journey over.
            self._inflight.pop(packet.uid, None)
            return
        if isinstance(packet.payload, _CONTROL_PAYLOADS):
            # Location updates, agent discovery, ICMP errors: control.
            self.control_delivered.inc()
            self._inflight.pop(packet.uid, None)
            return
        self.delivered.inc()
        self.deliveries_per_bin.record(t)
        pending = self._pending_blackout.pop(node, None)
        if pending is not None:
            self.blackout.record(t - pending)
        self._last_delivery[node] = t
        flight = self._inflight.pop(packet.uid, None)
        if flight is None:
            return
        self.latency.record(t - flight.t_sent)
        hops = flight.forwards + 1 + flight.endpoint_hops
        if flight.last_endpoint == node:
            hops -= 1  # self-delivery at the final endpoint: no extra link
        self.hop_count.record(hops)
        self.tunnel_chain.record(flight.tunnels)
        if self._nodes is not None and flight.origin != node:
            shortest = self._shortest_hops(flight.origin, node)
            if shortest:
                self.stretch.record(hops / shortest)

    def packet_dropped(self, t: float, node: str, packet: IPPacket, reason: str) -> None:
        self.dropped_total.inc()
        self.dropped[reason] = self.dropped.get(reason, 0) + 1
        self._inflight.pop(packet.uid, None)

    # ------------------------------------------------------------------
    # Direct agent hooks
    # ------------------------------------------------------------------
    def cache_lookup(self, node: str, hit: bool) -> None:
        (self.cache_hits if hit else self.cache_misses).inc()

    def mh_moved(self, t: float, node: str) -> None:
        self.moves.inc()
        self._dist_cache.clear()  # topology changed: stretch baselines too
        last = self._last_delivery.get(node)
        if last is not None:
            # Keep the earliest unresolved marker if the host moves
            # again before any delivery lands.
            self._pending_blackout.setdefault(node, last)

    def registration_complete(self, t: float, node: str, agent, latency: float) -> None:
        self.registrations.inc()
        self.registration_latency.record(latency)

    def tunnel_delivery(self, t: float, node: str, mobile_host, n_previous_sources: int) -> None:
        self.prev_sources.record(n_previous_sources)

    # ------------------------------------------------------------------
    # Tracer listener (control-plane stream)
    # ------------------------------------------------------------------
    def _on_trace(self, entry: TraceEntry) -> None:
        category = entry.category
        if category == "mhrp.tunnel":
            detail = entry.detail
            uid = detail.get("uid")
            if uid is None:
                return
            flight = self._inflight.get(uid)
            if flight is None:
                return
            event = detail.get("event")
            if event in ENCAP_EVENTS:
                flight.tunnels += 1
                if event == "fa-retunnel" and flight.first_retunnel is None:
                    flight.first_retunnel = entry.time
        elif category == "mhrp.loop" and entry.detail.get("event") == "dissolve":
            self.loops_dissolved.inc()
            uid = entry.detail.get("uid")
            flight = self._inflight.get(uid) if uid is not None else None
            if flight is not None:
                started = (
                    flight.first_retunnel
                    if flight.first_retunnel is not None
                    else flight.t_sent
                )
                self.loop_dissolution.record(entry.time - started)

    # ------------------------------------------------------------------
    # Shortest-path baseline for stretch
    # ------------------------------------------------------------------
    def _adjacency(self) -> Dict[str, set]:
        """Node-name adjacency derived from shared media, as wired now."""
        by_medium: Dict[int, List[str]] = {}
        for node in self._nodes or ():
            for iface in node.interfaces.values():
                medium = getattr(iface, "medium", None)
                if medium is not None:
                    by_medium.setdefault(id(medium), []).append(node.name)
        adjacency: Dict[str, set] = {}
        for names in by_medium.values():
            for name in names:
                peers = adjacency.setdefault(name, set())
                peers.update(n for n in names if n != name)
        return adjacency

    def _shortest_hops(self, origin: str, dest: str) -> Optional[int]:
        """Minimum link hops from ``origin`` to ``dest`` on the current
        topology (memoized until the next mobile-host move)."""
        key = (origin, dest)
        if key in self._dist_cache:
            return self._dist_cache[key]
        adjacency = self._adjacency()
        distance: Optional[int] = None
        if origin in adjacency:
            seen = {origin}
            frontier = deque([(origin, 0)])
            while frontier:
                name, d = frontier.popleft()
                if name == dest:
                    distance = d
                    break
                for peer in adjacency.get(name, ()):
                    if peer not in seen:
                        seen.add(peer)
                        frontier.append((peer, d + 1))
        self._dist_cache[key] = distance
        return distance

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Flat, deterministic metric dict (sweep- and JSON-friendly).

        Latencies are reported in milliseconds; every float is rounded
        to 9 decimals so the JSON form is stable enough to commit as a
        CI golden summary.
        """
        out: Dict[str, object] = {
            "packets_sent": self.sent.value,
            "packets_forwarded": self.forwarded.value,
            "packets_delivered": self.delivered.value,
            "packets_control_delivered": self.control_delivered.value,
            "packets_dropped": self.dropped_total.value,
            "moves": self.moves.value,
            "registrations": self.registrations.value,
            "loops_dissolved": self.loops_dissolved.value,
            "cache_hits": self.cache_hits.value,
            "cache_misses": self.cache_misses.value,
            "cache_hit_ratio": _round(
                self.cache_hits.value / (self.cache_hits.value + self.cache_misses.value)
            ) if (self.cache_hits.value + self.cache_misses.value) else 0.0,
            "delivery_peak_per_bin": _round(self.deliveries_per_bin.peak()),
        }
        for reason in sorted(self.dropped):
            out[f"dropped[{reason}]"] = self.dropped[reason]
        for name, hist, scale in (
            ("latency_ms", self.latency, 1000.0),
            ("stretch", self.stretch, 1.0),
            ("hops", self.hop_count, 1.0),
            ("tunnel_chain", self.tunnel_chain, 1.0),
            ("prev_sources", self.prev_sources, 1.0),
            ("blackout_ms", self.blackout, 1000.0),
            ("registration_ms", self.registration_latency, 1000.0),
            ("loop_dissolution_ms", self.loop_dissolution, 1000.0),
        ):
            values = hist.summary(scale=scale)
            out[f"{name}_n"] = values["n"]
            for stat in ("mean", "p50", "p95", "p99", "max"):
                out[f"{name}_{stat}"] = _round(values[stat])
        return out

    def render(self, title: str = "protocol health") -> str:
        """The health panel: one row per distribution, counters below."""
        from repro.metrics.report import Table, fmt_float

        table = Table(title, ["metric", "n", "mean", "p50", "p95", "p99", "max"])
        for label, hist, scale in (
            ("end-to-end latency (ms)", self.latency, 1000.0),
            ("path stretch (vs shortest)", self.stretch, 1.0),
            ("hop count", self.hop_count, 1.0),
            ("tunnel-chain length", self.tunnel_chain, 1.0),
            ("prev-source list @ delivery", self.prev_sources, 1.0),
            ("handoff blackout (ms)", self.blackout, 1000.0),
            ("registration latency (ms)", self.registration_latency, 1000.0),
            ("loop dissolution (ms)", self.loop_dissolution, 1000.0),
        ):
            if hist.count == 0:
                table.add_row(label, 0, "-", "-", "-", "-", "-")
                continue
            values = hist.summary(scale=scale)
            table.add_row(
                label,
                values["n"],
                fmt_float(values["mean"], 3),
                fmt_float(values["p50"], 3),
                fmt_float(values["p95"], 3),
                fmt_float(values["p99"], 3),
                fmt_float(values["max"], 3),
            )
        lookups = self.cache_hits.value + self.cache_misses.value
        ratio = f"{self.cache_hits.value / lookups:.0%}" if lookups else "-"
        drops = ", ".join(f"{k}={v}" for k, v in sorted(self.dropped.items())) or "none"
        lines = [
            table.render(),
            (
                f"packets: {self.sent.value} sent, {self.forwarded.value} forwarded, "
                f"{self.delivered.value} delivered (+{self.control_delivered.value} control), "
                f"{self.dropped_total.value} dropped ({drops})"
            ),
            (
                f"mobility: {self.moves.value} moves, {self.registrations.value} "
                f"registrations, {self.loops_dissolved.value} loops dissolved; "
                f"cache hit ratio {ratio} ({self.cache_hits.value}/{lookups})"
            ),
        ]
        if self.index is not None:
            lines.append(
                f"journeys: {len(self.index)} retained "
                f"({len(self.index.in_flight())} in flight, {self.index.evicted} evicted)"
            )
        return "\n".join(lines)


def _round(value: float, digits: int = 9) -> float:
    return round(float(value), digits)


# ----------------------------------------------------------------------
# Merging (the partitioned backend: one summary per partition)
# ----------------------------------------------------------------------
#: Count-valued summary keys that add exactly across partitions.
_MERGE_COUNT_KEYS = (
    "packets_sent",
    "packets_forwarded",
    "packets_delivered",
    "packets_control_delivered",
    "packets_dropped",
    "moves",
    "registrations",
    "loops_dissolved",
    "cache_hits",
    "cache_misses",
)

#: Distribution prefixes produced by :meth:`ProtocolHealth.summary`.
_MERGE_DIST_PREFIXES = (
    "latency_ms",
    "stretch",
    "hops",
    "tunnel_chain",
    "prev_sources",
    "blackout_ms",
    "registration_ms",
    "loop_dissolution_ms",
)


def merge_health_summaries(summaries) -> Dict[str, object]:
    """Combine per-partition :meth:`ProtocolHealth.summary` dicts into
    one fleet-wide view.

    Counters — including the per-reason ``dropped[...]`` keys — add
    exactly, and the cache hit ratio is recomputed from the merged
    counts.  Distribution statistics cannot be reconstructed from
    summaries alone: ``*_n`` adds and ``*_max`` takes the maximum
    (both exact), while mean and percentiles are n-weighted averages
    of the per-partition values — an approximation, flagged here so
    nobody gates on a merged p99.  The exact per-partition summaries
    stay available on ``PartitionedResult.results``.
    """
    summaries = [s for s in summaries if s]
    if not summaries:
        return {}
    out: Dict[str, object] = {}
    count_keys = list(_MERGE_COUNT_KEYS) + sorted(
        {k for s in summaries for k in s if k.startswith("dropped[")}
    )
    for key in count_keys:
        out[key] = sum(int(s.get(key, 0)) for s in summaries)
    lookups = out["cache_hits"] + out["cache_misses"]
    out["cache_hit_ratio"] = (
        _round(out["cache_hits"] / lookups) if lookups else 0.0
    )
    # Peak deliveries per bin: the max of per-partition peaks (a lower
    # bound on the true global peak; bins are not aligned across
    # partitions, so summing would overstate it).
    out["delivery_peak_per_bin"] = _round(
        max(float(s.get("delivery_peak_per_bin", 0.0)) for s in summaries)
    )
    for prefix in _MERGE_DIST_PREFIXES:
        weights = [int(s.get(f"{prefix}_n", 0)) for s in summaries]
        total = sum(weights)
        out[f"{prefix}_n"] = total
        for stat in ("mean", "p50", "p95", "p99"):
            out[f"{prefix}_{stat}"] = (
                _round(
                    sum(
                        float(s.get(f"{prefix}_{stat}", 0.0)) * n
                        for s, n in zip(summaries, weights)
                    )
                    / total
                )
                if total
                else 0.0
            )
        out[f"{prefix}_max"] = (
            _round(max(float(s.get(f"{prefix}_max", 0.0)) for s in summaries))
            if total
            else 0.0
        )
    return out
