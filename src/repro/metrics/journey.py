"""Per-packet journey reconstruction from the trace.

Because MHRP rewrites packets in place, a logical packet keeps its uid
across every tunneling transform; the tracer records that uid on every
forward, delivery, drop, and tunnel event.  :func:`journey_of` stitches
those into a :class:`Journey` — the sequence of nodes the packet
visited, the tunnel operations applied to it, and how it ended — which
tests and benches use to assert on *paths*, not just endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.netsim.simulator import Simulator
from repro.netsim.trace import TraceEntry


@dataclass
class JourneyStep:
    """One observed event in a packet's life."""

    time: float
    node: str
    kind: str           # "forward" | "deliver" | "drop" | tunnel event name
    detail: dict = field(default_factory=dict)


@dataclass
class Journey:
    """Everything the trace knows about one logical packet."""

    uid: int
    steps: List[JourneyStep] = field(default_factory=list)

    @property
    def nodes_visited(self) -> List[str]:
        """Nodes in visit order (consecutive duplicates collapsed)."""
        out: List[str] = []
        for step in self.steps:
            if not out or out[-1] != step.node:
                out.append(step.node)
        return out

    @property
    def hops(self) -> int:
        """Router hops (forward events) plus the originating hop."""
        return sum(1 for s in self.steps if s.kind == "forward") + 1

    @property
    def tunnel_events(self) -> List[JourneyStep]:
        return [s for s in self.steps if s.kind.startswith("mhrp:")]

    @property
    def was_tunneled(self) -> bool:
        return bool(self.tunnel_events)

    @property
    def dropped(self) -> bool:
        return any(s.kind == "drop" for s in self.steps)

    @property
    def drop_reason(self) -> Optional[str]:
        for step in self.steps:
            if step.kind == "drop":
                return step.detail.get("reason")
        return None

    @property
    def delivered_at(self) -> Optional[str]:
        """The last node that locally delivered the packet, if any."""
        for step in reversed(self.steps):
            if step.kind == "deliver":
                return step.node
        return None

    def detoured_through(self, node: str) -> bool:
        return node in self.nodes_visited

    def __repr__(self) -> str:
        path = " -> ".join(self.nodes_visited)
        end = self.drop_reason or (f"delivered@{self.delivered_at}" if self.delivered_at else "?")
        return f"<Journey #{self.uid} {path} ({end})>"


_KIND_BY_CATEGORY = {
    "ip.send": "send",
    "ip.forward": "forward",
    "ip.deliver": "deliver",
    "ip.drop": "drop",
}


def journey_of(sim: Simulator, uid: int) -> Journey:
    """Reconstruct the journey of packet ``uid`` from the trace.

    The tracer must have recorded the ``ip.*`` and ``mhrp.tunnel``
    categories (the default unless restricted).
    """
    journey = Journey(uid=uid)
    for entry in sim.tracer.entries:
        if entry.detail.get("uid") != uid:
            continue
        kind = _KIND_BY_CATEGORY.get(entry.category)
        if kind is None:
            if entry.category == "mhrp.tunnel":
                kind = f"mhrp:{entry.detail.get('event', '?')}"
            else:
                continue
        journey.steps.append(JourneyStep(
            time=entry.time, node=entry.node, kind=kind, detail=dict(entry.detail)
        ))
    journey.steps.sort(key=lambda s: s.time)
    return journey


def journeys_matching(sim: Simulator, predicate) -> List[Journey]:
    """All journeys whose uid appears in the trace and that satisfy
    ``predicate(journey)``."""
    uids = []
    seen = set()
    for entry in sim.tracer.entries:
        uid = entry.detail.get("uid")
        if uid is not None and uid not in seen:
            seen.add(uid)
            uids.append(uid)
    out = []
    for uid in uids:
        journey = journey_of(sim, uid)
        if predicate(journey):
            out.append(journey)
    return out
