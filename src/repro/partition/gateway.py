"""Border gateways: where packets leave and enter a partition.

Each partition's campus owns the ``{10+i}.0.0.0/8`` supernet (see
:mod:`repro.workloads.hierarchy`), so classification is by first octet.
The gateway is a real :class:`~repro.ip.node.Router` on the campus
backbone: the campus home router routes every *other* campus's supernet
at it, and a transit hook on its dataplane intercepts anything bound
off-campus — the packet is pickled and handed to the partition runtime
for export instead of being forwarded.  Using an ordinary router (and
not monkeypatching ``forward``) means originated, transited *and*
re-tunneled packets all funnel through the same interception point,
because they all reach the gateway via normal routing.

Inbound, the engine delivers the pickled packet at its cross-partition
arrival time and the runtime calls :meth:`BorderGateway.inject`, which
re-enters the local campus through
:meth:`~repro.ip.node.Node.forward_injected` — the forward/route stage
directly, deliberately *skipping* the transit hooks so an injected
packet can never bounce straight back out through its own entry wound.
"""

from __future__ import annotations

from repro.ip.address import IPNetwork
from repro.ip.dataplane import CONSUMED
from repro.ip.router import Router
from repro.workloads.hierarchy import campus_of_address_value

#: Backbone host number reserved for the border gateway (campus routers
#: use 1, 2 and 10..159; see ``build_campus``'s address plan).
GATEWAY_HOST = 250


class BorderGateway:
    """One campus's connection to the rest of the partitioned world."""

    def __init__(
        self,
        runtime,
        campus: int,
        backbone,
        backbone_net: IPNetwork,
        n_campuses: int,
    ) -> None:
        self.runtime = runtime
        self.campus = campus
        self.n_campuses = n_campuses
        self.router = Router(runtime.sim, f"c{campus}.GW")
        self.router.add_interface(
            "bb", backbone_net.host(GATEWAY_HOST), backbone_net, medium=backbone
        )
        # Everything campus-internal goes back via the home router, which
        # knows every local prefix.
        self.router.routing_table.set_default(backbone_net.host(1), "bb")
        self.router.dataplane.register(
            "transit", self._transit, name="partition-border"
        )

    # -- outbound ------------------------------------------------------
    def _transit(self, packet, iface):
        """Transit hook: export off-campus packets, pass local ones."""
        dst_campus = campus_of_address_value(packet.dst.value)
        if dst_campus == self.campus or not 0 <= dst_campus < self.n_campuses:
            return None  # local (or not in the plan): forward normally
        self.runtime.export_packet(dst_campus, packet)
        return CONSUMED

    # -- inbound -------------------------------------------------------
    def inject(self, packet) -> None:
        """Re-enter the campus with a packet from another partition."""
        self.router.forward_injected(packet)
