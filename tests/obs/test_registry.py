"""MetricsRegistry: get-or-create semantics, Prometheus exposition,
and the flat JSON snapshot."""

import json

import pytest

from repro.obs.registry import MetricsRegistry


class TestSeries:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", "total requests", route="/metrics")
        b = registry.counter("requests", route="/metrics")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_label_sets_create_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", node="A")
        b = registry.counter("requests", node="B")
        assert a is not b
        assert len(registry) == 2

    def test_kind_clash_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(4)
        gauge.set(7)
        assert gauge.value == 7
        hist = registry.histogram("lat", backend="live")
        for v in (1.0, 2.0, 3.0):
            hist.record(v)
        assert hist.count == 3


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("events", "events seen", category="mhrp.tunnel").inc(5)
        registry.gauge("drift", "clock drift").set(0.25)
        hist = registry.histogram("stage", "stage timing", stage="timer")
        for v in (0.001, 0.002, 0.004):
            hist.record(v)
        return registry

    def test_render_has_help_type_and_samples(self):
        text = self._registry().render_prometheus()
        assert "# HELP repro_events events seen" in text
        assert "# TYPE repro_events counter" in text
        assert 'repro_events{category="mhrp.tunnel"} 5' in text
        assert "# TYPE repro_drift gauge" in text
        assert "repro_drift 0.25" in text

    def test_histogram_renders_as_summary(self):
        text = self._registry().render_prometheus()
        assert "# TYPE repro_stage summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.95"' in text
        assert 'repro_stage_count{stage="timer"} 3' in text
        assert 'repro_stage_sum{stage="timer"}' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", label='quo"te\nline\\slash').inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        # Exactly one non-comment sample line, and it stays one line.
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(samples) == 1

    def test_exposition_ends_with_newline(self):
        assert self._registry().render_prometheus().endswith("\n")


class TestSnapshot:
    def test_snapshot_is_json_safe_and_keyed_by_series(self):
        registry = MetricsRegistry()
        registry.counter("events", category="a").inc(2)
        registry.gauge("drift").set(1.5)
        registry.histogram("stage", stage="t").record(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"]["events{category=a}"] == 2
        assert snapshot["gauges"]["drift"]["value"] == 1.5
        assert snapshot["histograms"]["stage{stage=t}"]["n"] == 1
