"""Property-based tests for the transport layer under adverse networks."""

from hypothesis import given, settings, strategies as st

from repro.ip import Host, IPNetwork
from repro.link import LAN
from repro.netsim import Simulator


def build_pair(seed, loss):
    sim = Simulator(seed=seed)
    lan = LAN(sim, "lan", latency=0.002, loss_rate=loss)
    net = IPNetwork("10.0.0.0/24")
    a, b = Host(sim, "A"), Host(sim, "B")
    a.add_interface("eth0", net.host(1), net, medium=lan)
    b.add_interface("eth0", net.host(2), net, medium=lan)
    return sim, a, b, net


class TestTCPUnderLoss:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss=st.floats(min_value=0.0, max_value=0.25),
        size=st.integers(min_value=1, max_value=9_000),
    )
    def test_stream_is_exactly_once_in_order(self, seed, loss, size):
        """Whatever the loss pattern, TCP delivers the exact byte stream
        (no loss, duplication, or reordering visible to the app)."""
        sim, a, b, net = build_pair(seed, loss)
        blob = bytes(i % 256 for i in range(size))
        accepted = []
        b.tcp.listen(80, accepted.append)
        conn = a.tcp.connect(net.host(2), 80)
        conn.send(blob)
        sim.run(until=400.0)
        assert accepted, "handshake never completed"
        assert bytes(accepted[0].received) == blob

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), loss=st.floats(0.0, 0.2))
    def test_bidirectional_integrity(self, seed, loss):
        sim, a, b, net = build_pair(seed, loss)
        upload = b"u" * 3000
        download = b"d" * 3000
        accepted = []

        def serve(conn):
            accepted.append(conn)
            conn.send(download)

        b.tcp.listen(80, serve)
        client = a.tcp.connect(net.host(2), 80)
        client.send(upload)
        sim.run(until=400.0)
        assert bytes(accepted[0].received) == upload
        assert bytes(client.received) == download


class TestUDPUnderLoss:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), loss=st.floats(0.0, 0.5))
    def test_udp_never_duplicates_or_corrupts(self, seed, loss):
        """UDP may lose datagrams but never invents or corrupts them."""
        sim, a, b, net = build_pair(seed, loss)
        server = b.udp.bind(9)
        client = a.udp.bind()
        payloads = [bytes([i]) * 10 for i in range(30)]
        # Pre-resolve ARP so loss statistics apply to data only.
        a.arp["eth0"].learn(net.host(2), b.interfaces["eth0"].hw_address)
        for payload in payloads:
            client.send_to(payload, net.host(2), 9)
        sim.run_until_idle()
        received = [data for data, _, _ in server.received]
        assert len(received) <= len(payloads)
        for datagram in received:
            assert datagram in payloads
        # No duplication: each payload value at most once.
        assert len(received) == len(set(received))
