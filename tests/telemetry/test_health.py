"""ProtocolHealth end-to-end: the Figure-1 walkthrough and the loop
laboratory must produce the distributions the paper argues about."""

import pytest

from repro.telemetry.cli import figure1_scenario, loop_scenario
from repro.telemetry.health import ProtocolHealth


@pytest.fixture(scope="module")
def figure1():
    return figure1_scenario(seed=42)


def test_figure1_latency_counts_every_data_delivery(figure1):
    sim, hub = figure1
    # 3 echo requests + 3 replies reach their destinations as data.
    assert hub.delivered.value == 6
    assert hub.latency.count == 6
    assert hub.latency.min > 0
    # Control traffic (updates, advertisements, registrations) is
    # counted separately, never in the latency distribution.
    assert hub.control_delivered.value > 0


def test_figure1_blackout_recorded_after_handoff(figure1):
    sim, hub = figure1
    # One handoff (net D -> net E) happens after M has received data,
    # so exactly one blackout interval resolves.
    assert hub.blackout.count == 1
    assert hub.blackout.min > 0
    # The last ping lands after the move, so nothing is left pending.
    assert not hub._pending_blackout


def test_figure1_stretch_at_least_one(figure1):
    sim, hub = figure1
    assert hub.stretch.count > 0
    assert hub.stretch.min >= 1.0  # actual hops can never beat shortest
    # Tunneling via the home agent must show up as stretch > 1 somewhere.
    assert hub.stretch.max > 1.0


def test_figure1_mobility_counters(figure1):
    sim, hub = figure1
    assert hub.moves.value == 3            # home, net D, net E
    assert hub.registrations.value == 2    # FA connects at D and E
    assert hub.registration_latency.count == 2
    assert hub.registration_latency.min > 0
    lookups = hub.cache_hits.value + hub.cache_misses.value
    assert lookups > 0
    assert hub.cache_hits.value > 0        # S's cache serves later pings


def test_figure1_tunnel_metrics(figure1):
    sim, hub = figure1
    assert hub.tunnel_chain.count == 6
    assert hub.tunnel_chain.max >= 1       # some deliveries were tunneled
    assert hub.prev_sources.count > 0      # FA observed previous-source lists


def test_figure1_summary_is_flat_and_deterministic(figure1):
    _, hub = figure1
    summary = hub.summary()
    assert all(isinstance(v, (int, float)) for v in summary.values())
    assert summary["packets_delivered"] == 6
    assert summary["latency_ms_p50"] > 0
    assert summary["blackout_ms_max"] > 0
    # Re-running the same seed reproduces the summary exactly.
    _, hub2 = figure1_scenario(seed=42)
    assert hub2.summary() == summary


def test_loop_dissolution_timed():
    sim, hub = loop_scenario(seed=3)
    assert hub.loops_dissolved.value >= 1
    assert hub.loop_dissolution.count >= 1
    assert hub.loop_dissolution.min > 0


def test_detached_simulator_pays_nothing():
    """Without a hub, sim.telemetry stays None and the walkthrough's
    behaviour is byte-identical to the pre-telemetry code path."""
    from tests.core.test_golden_trace import run_figure1_scenario

    sim = run_figure1_scenario()
    assert sim.telemetry is None


def test_attach_without_trace_subscription():
    """Dataplane-fed metrics work even when the tracer is disabled."""
    from repro.workloads.topology import build_figure1

    topo = build_figure1(seed=42)
    sim, s, m = topo.sim, topo.s, topo.m
    sim.tracer.enabled = False
    sim.tracer.clear()  # drop the build-time advertisement frames
    hub = ProtocolHealth(journey_index=False).attach(
        sim, nodes=[s, topo.r1, topo.r2, topo.r3, topo.r4, topo.r5, m],
        subscribe_trace=False,
    )
    m.attach_home(topo.net_b)
    sim.run(until=5.0)
    m.attach(topo.net_d)
    sim.run(until=12.0)
    s.ping(m.home_address)
    sim.run(until=16.0)
    assert hub.delivered.value == 2        # request + reply
    assert hub.latency.count == 2
    assert hub.moves.value == 2
    assert not sim.tracer.entries          # tracer really was off
    assert hub.index is None


def test_inflight_table_is_bounded():
    from repro.ip.packet import IPPacket
    from repro.ip.protocols import UDP

    hub = ProtocolHealth(max_inflight=10, journey_index=False)
    for i in range(25):
        hub.packet_sent(float(i), "A", IPPacket(src="10.0.0.1", dst="10.0.0.2",
                                                protocol=UDP))
    assert len(hub._inflight) == 10
    assert hub.inflight_evicted == 15
