"""Unit tests for experiment specs, cell hashing, and the result store."""

import dataclasses

import pytest

from repro.harness.spec import Cell, ExperimentSpec
from repro.harness.store import ResultStore


def _spec(**overrides):
    base = dict(
        name="t",
        cell_fn="tests.harness.cells:ok_cell",
        grid={"x": [1, 2], "factor": [2]},
        seeds=(0, 1),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_cells_expand_grid_times_seeds(self):
        cells = _spec().cells()
        assert len(cells) == 4  # 2 x values × 2 seeds
        assert [(c.params_dict["x"], c.seed) for c in cells] == [
            (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_union_grids_deduplicate(self):
        spec = _spec(grid=[{"x": [1, 2], "factor": [2]}, {"x": [2, 3], "factor": [2]}])
        cells = spec.cells()
        assert [c.params_dict["x"] for c in cells if c.seed == 0] == [1, 2, 3]

    def test_hash_independent_of_param_declaration_order(self):
        a = _spec(grid={"x": [1], "factor": [2]}).cells()[0]
        b = _spec(grid={"factor": [2], "x": [1]}).cells()[0]
        assert a.content_hash() == b.content_hash()

    def test_hash_changes_with_version_params_and_seed(self):
        cell = _spec().cells()[0]
        assert cell.content_hash() != _spec(version=2).cells()[0].content_hash()
        hashes = {c.content_hash() for c in _spec().cells()}
        assert len(hashes) == 4

    def test_quick_shape(self):
        spec = _spec(quick_grid={"x": [1], "factor": [2]}, quick_seeds=(0,))
        assert len(spec.cells(quick=True)) == 1
        assert len(spec.cells()) == 4

    def test_with_seeds(self):
        narrowed = _spec().with_seeds([7])
        assert [c.seed for c in narrowed.cells()] == [7, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(grid={"x": []})
        with pytest.raises(TypeError):
            _spec(grid={"x": [[1, 2]]})
        with pytest.raises(ValueError):
            _spec(seeds=())

    def test_label(self):
        cell = Cell("e", "m:f", 1, (("x", 1),), seed=9)
        assert cell.label == "e[x=1 seed=9]"


class TestStore:
    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path).load("nope") == {}

    def test_roundtrip_sorted_and_atomic(self, tmp_path):
        store = ResultStore(tmp_path)
        records = {
            "bb": {"hash": "bb", "status": "ok"},
            "aa": {"hash": "aa", "status": "ok"},
        }
        path = store.save("exp", records)
        text = path.read_text()
        assert text.index('"aa"') < text.index('"bb"')
        assert store.load("exp") == records

    def test_corrupt_lines_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save("exp", {"aa": {"hash": "aa"}})
        with open(path, "a") as handle:
            handle.write("{not json\n\n42\n")
        assert store.load("exp") == {"aa": {"hash": "aa"}}

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("exp", {"aa": {"hash": "aa"}})
        store.invalidate("exp")
        store.invalidate("exp")  # idempotent
        assert store.load("exp") == {}
