"""Tests for the per-node/per-stage counter report (``repro netstat``)."""

from repro.ip.packet import IPPacket
from repro.ip.protocols import UDP
from repro.metrics.netstat import (
    netstat_json,
    node_counters,
    render_netstat,
    stage_rows,
    totals,
)


def _run_flow(two_lans_one_router):
    sim, a, r, b, net_a, net_b = two_lans_one_router
    b.register_protocol(UDP, lambda p, i: None)
    a.send(IPPacket(src=net_a.host(1), dst=net_b.host(1), protocol=UDP))
    sim.run_until_idle()
    return a, r, b


def test_stage_rows_are_pipeline_ordered(two_lans_one_router):
    a, r, b = _run_flow(two_lans_one_router)
    rows = stage_rows(r)
    stages = [stage for stage, _, _ in rows]
    assert stages == sorted(
        stages, key=["ingress", "outbound", "hooks", "local-delivery",
                     "ttl-route", "arp-resolve", "egress", "*"].index
    )
    assert ("ttl-route", "forwarded", 1) in rows
    # Zero counters are omitted.
    assert all(value > 0 for _, _, value in rows)


def test_render_includes_every_active_node(two_lans_one_router):
    a, r, b = _run_flow(two_lans_one_router)
    text = render_netstat([a, r, b], title="flow")
    for node in (a, r, b):
        assert node.name in text
    assert "forwarded" in text and "delivered" in text


def test_render_empty_topology(two_lans_one_router):
    sim, a, r, b, net_a, net_b = two_lans_one_router
    assert "(no packets processed)" in render_netstat([r], title="idle")


def test_totals_sum_across_nodes(two_lans_one_router):
    a, r, b = _run_flow(two_lans_one_router)
    grand = totals([a, r, b])
    assert grand["delivered"] == 1
    assert grand["forwarded"] == 1
    assert grand["rx"] == sum(node_counters(n)["rx"] for n in (a, r, b))


def test_netstat_json_omits_zero_counters_and_idle_nodes(two_lans_one_router):
    import json

    a, r, b = _run_flow(two_lans_one_router)
    data = netstat_json([a, r, b])
    assert data[r.name]["forwarded"] == 1
    assert all(v > 0 for counters in data.values() for v in counters.values())
    json.dumps(data)  # must be JSON-serializable as-is
    # An idle node is skipped by default...
    from repro.ip.host import Host

    sim = two_lans_one_router[0]
    idle = Host(sim, "idle-host")
    assert "idle-host" not in netstat_json([a, idle])
    # ...and appears as an empty dict with include_idle.
    assert netstat_json([a, idle], include_idle=True)["idle-host"] == {}


def test_render_netstat_include_idle_lists_idle_nodes(two_lans_one_router):
    sim, a, r, b, net_a, net_b = two_lans_one_router
    text = render_netstat([r], title="idle", include_idle=True)
    assert r.name in text
    assert "(idle)" in text
