"""The streaming journey index: equivalence with the legacy post-hoc
reconstruction on the golden Figure-1 scenario, plus eviction bounds."""

from repro.metrics.journey import journey_of, journeys_matching
from repro.netsim.trace import TraceEntry
from repro.telemetry.journeys import JourneyIndex

from tests.core.test_golden_trace import run_figure1_scenario


def _steps_as_tuples(journey):
    return [(s.time, s.node, s.kind, s.detail) for s in journey.steps]


_JOURNEY_CATEGORIES = {"ip.send", "ip.forward", "ip.deliver", "ip.drop", "mhrp.tunnel"}


def _all_uids(sim):
    """uids with at least one journey-relevant event, first-seen order
    (link.tx/link.rx frames also carry uids but contribute no steps)."""
    seen, uids = set(), []
    for entry in sim.tracer.entries:
        uid = entry.detail.get("uid")
        if (
            uid is not None
            and uid not in seen
            and entry.category in _JOURNEY_CATEGORIES
        ):
            seen.add(uid)
            uids.append(uid)
    return uids


def test_live_index_matches_post_hoc_journey_of_on_figure1():
    """Attach the index as a live listener *before* the scenario runs;
    every journey must equal what the post-hoc wrapper reconstructs."""
    from repro.workloads.topology import build_figure1

    topo = build_figure1(seed=42)
    sim, s, m = topo.sim, topo.s, topo.m
    live = JourneyIndex().attach(sim.tracer)
    m.attach_home(topo.net_b)
    sim.run(until=5.0)
    m.attach(topo.net_d)
    sim.run(until=12.0)
    s.ping(m.home_address)
    sim.run(until=16.0)
    m.attach(topo.net_e)
    sim.run(until=24.0)
    s.ping(m.home_address)
    sim.run(until=28.0)

    uids = _all_uids(sim)
    assert uids, "scenario produced no uid-stamped trace entries"
    assert sorted(live.uids()) == sorted(uids)
    for uid in uids:
        assert _steps_as_tuples(live.journey(uid)) == _steps_as_tuples(
            journey_of(sim, uid)
        ), f"live index diverges from post-hoc reconstruction for uid {uid}"


def test_wrappers_match_legacy_semantics_on_golden_scenario():
    """journey_of / journeys_matching (now single-pass over the index)
    keep the original behaviour on the golden-trace scenario."""
    sim = run_figure1_scenario()
    index = JourneyIndex.from_entries(sim.tracer.entries)
    uids = _all_uids(sim)

    # First-seen order is preserved by journeys_matching.
    everything = journeys_matching(sim, lambda j: True)
    assert [j.uid for j in everything] == uids == index.uids()

    for uid in uids:
        journey = journey_of(sim, uid)
        assert journey.uid == uid
        # Steps come out time-ordered (trace order), like the rescan did.
        times = [s.time for s in journey.steps]
        assert times == sorted(times)

    tunneled = journeys_matching(sim, lambda j: j.was_tunneled)
    assert tunneled, "Figure-1 must tunnel at least one packet"
    assert all(j.was_tunneled for j in tunneled)
    delivered_at_m = journeys_matching(sim, lambda j: j.delivered_at == "M")
    assert delivered_at_m, "packets must reach the mobile host"

    # Unknown uid: an empty journey, not an exception (legacy contract).
    ghost = journey_of(sim, 10**9)
    assert ghost.uid == 10**9 and ghost.steps == []


def _entry(t, category, node, **detail):
    return TraceEntry(time=t, category=category, node=node, detail=detail)


def test_eviction_bounds_completed_journeys():
    index = JourneyIndex(max_completed=5)
    for uid in range(20):
        index.observe(_entry(uid + 0.0, "ip.send", "A", uid=uid))
        index.observe(_entry(uid + 0.5, "ip.deliver", "B", uid=uid))
    assert len(index) == 5
    assert index.evicted == 15
    # The newest completed journeys survive.
    assert index.uids() == list(range(15, 20))


def test_in_flight_journeys_are_never_evicted():
    index = JourneyIndex(max_completed=2)
    for uid in range(10):
        index.observe(_entry(uid + 0.0, "ip.send", "A", uid=uid))  # never completes
    for uid in range(100, 110):
        index.observe(_entry(uid + 0.0, "ip.send", "A", uid=uid))
        index.observe(_entry(uid + 0.5, "ip.drop", "R", uid=uid, reason="no-route"))
    assert len(index.in_flight()) == 10
    assert sorted(j.uid for j in index.in_flight()) == list(range(10))
    assert len(index) == 12  # 10 in flight + max_completed


def test_delivery_reopens_journey_on_further_events():
    """An MHRP tunnel-endpoint delivery is not the end of the logical
    packet: later events must re-open the journey."""
    index = JourneyIndex(max_completed=1)
    index.observe(_entry(0.0, "ip.send", "S", uid=7))
    index.observe(_entry(0.2, "ip.deliver", "FA", uid=7))   # tunnel endpoint
    assert index.is_complete(7)
    index.observe(_entry(0.3, "mhrp.tunnel", "FA", uid=7, event="fa-deliver"))
    assert not index.is_complete(7)
    index.observe(_entry(0.4, "ip.deliver", "M", uid=7))    # the real delivery
    assert index.is_complete(7)
    assert [s.kind for s in index.journey(7).steps] == [
        "send", "deliver", "mhrp:fa-deliver", "deliver"
    ]


def test_max_completed_validation():
    import pytest

    with pytest.raises(ValueError):
        JourneyIndex(max_completed=0)


def test_entries_without_uid_are_ignored():
    index = JourneyIndex()
    index.observe(_entry(0.0, "mhrp.update", "R", event="sent"))
    index.observe(_entry(0.1, "arp", "R"))
    assert len(index) == 0
    assert index.entries_seen == 2
